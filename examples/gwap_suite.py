#!/usr/bin/env python
"""Tour of all six games: one match of each, on one shared world.

Shows how the three templates specialize into the concrete games the
paper surveys, and what each game's verified output looks like:

- ESP (output-agreement)        -> image labels
- Peekaboom (inversion)         -> object locations
- Verbosity (inversion)         -> common-sense facts
- TagATune (input-agreement)    -> music tags
- Matchin (pairwise preference) -> an image appeal ranking
- Squigl (trace agreement)      -> object outlines

Run:  python examples/gwap_suite.py
"""

from repro.corpus import (FactBase, ImageCorpus, MusicCorpus, Vocabulary)
from repro.corpus.objects import ObjectLayout
from repro.games import (EspGame, MatchinGame, PeekaboomGame, SquiglGame,
                         TagATuneGame, VerbosityGame)
from repro.players import PopulationConfig, build_population


def main() -> None:
    vocab = Vocabulary(size=800, categories=30, seed=5)
    corpus = ImageCorpus(vocab, size=60, seed=5)
    layout = ObjectLayout(corpus, objects_per_image=4, seed=5)
    facts = FactBase(vocab, seed=5)
    music = MusicCorpus(vocab, size=40, seed=5)
    alice, bob = build_population(2, PopulationConfig(
        skill_mean=0.85, coverage_mean=0.85), seed=5)

    print("== ESP Game (output-agreement) ==")
    esp = EspGame(corpus, seed=5)
    session = esp.play_session(alice, bob)
    print(f"  {session.successes}/{len(session.rounds)} rounds agreed")
    for item, labels in list(esp.good_labels().items())[:3]:
        print(f"  {item}: {', '.join(labels)}")

    print("\n== Peekaboom (inversion: locate objects) ==")
    peekaboom = PeekaboomGame(corpus, layout, round_time_limit_s=30.0,
                              seed=5)
    results = peekaboom.play_match(alice, bob, rounds=6)
    completed = [r for r in results if r.succeeded]
    print(f"  {len(completed)}/6 rounds completed")
    for result in completed[:2]:
        reveals = result.detail["reveals"]
        print(f"  located {result.detail['word']!r} in "
              f"{result.item.item_id} after {reveals} reveals")

    print("\n== Verbosity (inversion: collect facts) ==")
    verbosity = VerbosityGame(facts, round_time_limit_s=45.0,
                              secret_rank_limit=200, seed=5)
    verbosity.play_match(alice, bob, rounds=6)
    collected = verbosity.collected_facts()
    print(f"  {len(collected)} facts certified, accuracy "
          f"{verbosity.fact_accuracy():.2f}")
    for fact in collected[:3]:
        print(f"  {fact.subject} {fact.relation.value} {fact.obj}")

    print("\n== TagATune (input-agreement: tag music) ==")
    tagatune = TagATuneGame(music, seed=5)
    results = tagatune.play_match(alice, bob, rounds=8)
    agreed = sum(1 for r in results if r.succeeded)
    print(f"  {agreed}/8 same-or-different rounds judged correctly")
    for clip_id, tags in list(tagatune.verified_tags().items())[:3]:
        print(f"  {clip_id}: {', '.join(tags)}")

    print("\n== Matchin (pairwise preference) ==")
    matchin = MatchinGame(corpus, seed=5)
    matchin.play_match(alice, bob, rounds=80)
    print(f"  appeal-ranking Spearman correlation: "
          f"{matchin.ranking_correlation():.2f}")
    for image_id, rate in matchin.ranking()[:3]:
        print(f"  {image_id}: win rate {rate:.2f}")

    print("\n== Squigl (trace agreement) ==")
    squigl = SquiglGame(corpus, layout, seed=5)
    results = squigl.play_match(alice, bob, rounds=8)
    agreed = sum(1 for r in results if r.succeeded)
    print(f"  {agreed}/8 traces agreed, consensus quality (IoU) "
          f"{squigl.consensus_quality():.2f}")


if __name__ == "__main__":
    main()
