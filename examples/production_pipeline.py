#!/usr/bin/env python
"""End-to-end production pipeline: platform -> workforce -> dataset.

The flow a real deployment runs:

1. stand up the platform and post a labeling job (with gold tasks);
2. let a simulated workforce arrive over a working day and answer;
3. route low-confidence tasks back out for more answers;
4. silence flagged spammers, aggregate, and export the dataset with
   confidence intervals on its quality.

Run:  python examples/production_pipeline.py
"""

from repro.analytics import proportion_ci
from repro.corpus import ImageCorpus, Vocabulary
from repro.export import save_dataset
from repro.platform import Platform
from repro.players import PopulationConfig, build_population
from repro.players.adversarial import answer_stream
from repro.service import ApiServer, InProcessClient
from repro.sim import Workforce


def main() -> None:
    vocab = Vocabulary(size=800, categories=30, seed=21)
    corpus = ImageCorpus(vocab, size=40, seed=21)

    # 1. Platform and job (10% gold injection for player testing).
    platform = Platform(gold_rate=0.1, spam_detection=True, seed=21)
    client = InProcessClient(ApiServer(platform))
    job = client.create_job("label-images", redundancy=3)
    specs = [{"payload": {"image_id": image.image_id}}
             for image in corpus]
    # Gold tasks: the top tag of a few images is the known answer.
    for image in list(corpus)[:5]:
        specs.append({"payload": {"image_id": image.image_id},
                      "gold_answer": image.top_tags(1)[0]})
    client.add_tasks(job["job_id"], specs)
    client.start_job(job["job_id"])
    print(f"Posted {len(specs)} tasks (5 gold) at redundancy 3")

    # 2. A workforce with a 15% spammer share answers through the API.
    population = build_population(30, PopulationConfig(
        skill_mean=0.82, coverage_mean=0.8, spammer_frac=0.15),
        seed=21)

    def answer(model, payload, rng):
        image = corpus.image(payload["image_id"])
        answers = answer_stream(model, image.salience, vocab, rng, 1)
        return answers[0] if answers else "unknown"

    workforce = Workforce(client, population, answer,
                          arrival_rate_per_hour=260.0, seed=21)
    result = workforce.run(job["job_id"], duration_s=8 * 3600.0)
    print(f"Workforce: {result.answers} answers from "
          f"{result.workers_active} workers"
          + (f"; job complete at "
             f"{result.completed_at_s / 3600:.1f}h"
             if result.completed_at_s else ""))

    # 3. Adaptive redundancy: contested tasks go back out.
    contested = platform.low_confidence_tasks(job["job_id"],
                                              min_margin=0.34)
    if contested:
        platform.extend_redundancy(job["job_id"], contested, extra=2)
        print(f"Routing {len(contested)} low-confidence tasks for "
              "2 more answers each")
        workforce.run(job["job_id"], duration_s=4 * 3600.0)

    # 4. Quality controls and the final dataset.
    flagged = platform.flagged_workers()
    print(f"Spam detector flagged {len(flagged)} workers: {flagged}")

    results = platform.results(job["job_id"])
    correct = 0
    for task_id, vote in results.items():
        payload = platform.store.get_task(task_id).payload
        image = corpus.image(payload["image_id"])
        correct += image.is_relevant(vote.answer)
    interval = proportion_ci(correct, len(results))
    print(f"Final label accuracy: {interval.estimate:.3f} "
          f"(95% CI [{interval.low:.3f}, {interval.high:.3f}])")

    document = {
        "format": "repro-dataset", "version": 1,
        "kind": "image-labels",
        "records": [
            {"image_id": platform.store.get_task(t).payload["image_id"],
             "label": vote.answer,
             "confidence": vote.confidence}
            for t, vote in sorted(results.items())],
        "stats": {"accuracy": interval.estimate,
                  "ci_low": interval.low, "ci_high": interval.high},
    }
    out = "/tmp/repro_labels.json"
    save_dataset(document, out)
    print(f"Dataset written to {out} "
          f"({len(document['records'])} records)")


if __name__ == "__main__":
    main()
