#!/usr/bin/env python
"""Digitize a synthetic scanned book with the reCAPTCHA protocol.

Two simulated OCR engines read the book; their disagreements become the
unknown-word pool.  Simulated humans solving paired control/unknown
challenges vote the unknown words to resolution, and the script reports
the final transcription accuracy against the OCR baseline — the paper's
99%-vs-83.5% comparison.

Run:  python examples/recaptcha_pipeline.py
"""

import itertools

from repro.captcha import HumanReader, OcrEngine, ReCaptchaService
from repro.corpus import OcrCorpus
from repro.players import PopulationConfig, build_population


def main() -> None:
    print("Scanning the book (1,000 words, 30% damaged)...")
    corpus = OcrCorpus(size=1000, damaged_frac=0.3,
                       clean_legibility=0.99, damaged_legibility=0.85,
                       seed=42)
    engine_a = OcrEngine("ocr-a", strength=0.55, penalty=0.2, seed=1)
    engine_b = OcrEngine("ocr-b", strength=0.5, penalty=0.25, seed=2)

    service = ReCaptchaService(corpus, engine_a, engine_b, quorum=3.0,
                               seed=42)
    print(f"OCR engines agree on {service.control_pool_size} clean "
          f"words (control pool)")
    print(f"OCR engines disagree on {service.unknown_pool_size} words "
          f"(unknown pool)\n")

    population = build_population(50, PopulationConfig(
        skill_mean=0.88, skill_sd=0.06), seed=42)
    readers = [HumanReader(model, damage_recovery=0.95, seed=i)
               for i, model in enumerate(population)]
    cycle = itertools.cycle(readers)

    served = 0
    while service.unknown_pool_size > 0 and served < 40000:
        challenge = service.issue()
        reader = next(cycle)
        answers = tuple(reader.read(word) for word in challenge.words)
        service.submit(reader.reader_id, challenge.challenge_id,
                       answers)
        served += 1
        if served % 5000 == 0:
            print(f"  {served} challenges served, "
                  f"{service.digitization_progress():.0%} digitized")

    print(f"\nChallenges served:      {served}")
    print(f"Human pass rate:        {service.human_pass_rate():.3f}")
    print(f"Digitization progress:  "
          f"{service.digitization_progress():.1%}")
    print(f"reCAPTCHA accuracy:     "
          f"{service.resolution_accuracy():.3f}  (paper: 0.991)")
    print(f"Standard OCR accuracy:  "
          f"{service.ocr_baseline_accuracy():.3f}  (paper: 0.835)")

    resolved = service.resolved_words()
    sample = list(sorted(resolved.items()))[:5]
    print("\nSample resolutions (word id -> transcription, truth):")
    for word_id, text in sample:
        truth = corpus.word(word_id).truth
        marker = "ok " if text == truth else "MISS"
        print(f"  [{marker}] {word_id}: {text!r} (truth {truth!r})")


if __name__ == "__main__":
    main()
