#!/usr/bin/env python
"""Quality control under attack: spammers and colluders in the crowd.

Runs an ESP campaign whose population is 25% adversarial, then shows the
paper's defense stack working:

1. repetition (promotion threshold) keeps promoted labels precise;
2. answer-statistics spam detection flags the item-blind players;
3. pairwise-agreement analysis flags the colluding pair;
4. reputation-weighted voting overrides a spammed task on the platform.

Run:  python examples/adversarial_quality.py
"""

from repro.aggregation import MajorityVote
from repro.corpus import ImageCorpus, Vocabulary
from repro.games import EspGame
from repro.players import PopulationConfig, build_population
from repro.players.base import Behavior
from repro.quality import CollusionDetector, SpamDetector
from repro import rng as _rng


def main() -> None:
    vocab = Vocabulary(size=800, categories=30, seed=13)
    corpus = ImageCorpus(vocab, size=80, seed=13)
    population = build_population(40, PopulationConfig(
        skill_mean=0.8, coverage_mean=0.75,
        spammer_frac=0.15, colluder_frac=0.1), seed=13)
    adversaries = {p.player_id: p.behavior.value
                   for p in population if p.is_adversarial}
    print(f"Population: {len(population)} players, "
          f"{len(adversaries)} adversarial")

    # Short rounds, as in the real game: a pair either matches quickly
    # or times out, so chance collisions don't mask collusion.
    game = EspGame(corpus, promotion_threshold=2, seed=13,
                   round_time_limit_s=20.0)
    spam = SpamDetector(min_answers=20)
    # Collusion shows as *repeated* co-play with anomalous agreement; a
    # single lucky session (15 rounds) must not trigger it.
    collusion = CollusionDetector(min_rounds=30, margin=0.2)

    rng = _rng.make_rng(13)
    # Colluders occasionally manage to pair up; random matching makes
    # it rare, but we simulate enough sessions that it happens.
    for _ in range(150):
        a, b = rng.sample(population, 2)
        session = game.play_session(a, b)
        agreed_rounds = session.successes
        for round_result in session.rounds:
            for key, model in (("guesses_a", a), ("guesses_b", b)):
                for guess in round_result.detail.get(key, []):
                    spam.record_answer(model.player_id, guess)
            collusion.record_round(a.player_id, b.player_id,
                                   round_result.succeeded)

    print(f"\nPromoted-label precision: {game.label_precision():.3f} "
          "(repetition mechanism)")

    flagged = spam.flagged()
    true_spammers = {p for p, b in adversaries.items()
                     if b in ("spammer", "random_bot")}
    print(f"\nSpam detector flagged {len(flagged)} players:")
    for player_id in flagged:
        verdict = spam.judge(player_id)
        truth = adversaries.get(player_id, "honest")
        print(f"  {player_id}: score {verdict.score:.2f} "
              f"(actually: {truth})")
    caught = set(flagged) & true_spammers
    if true_spammers:
        print(f"Recall on true spammers: "
              f"{len(caught)}/{len(true_spammers)}")

    # Under random matching the colluding pair almost never meets —
    # that is the first defense.  Simulate the actual attack: the pair
    # times their entries to get matched repeatedly.
    rings = {}
    for player in population:
        if player.behavior is Behavior.COLLUDER:
            rings.setdefault(player.collusion_key, []).append(player)
    ring = next((pair for pair in rings.values() if len(pair) == 2),
                None)
    if ring is not None:
        for _ in range(10):
            session = game.play_session(ring[0], ring[1])
            for round_result in session.rounds:
                collusion.record_round(ring[0].player_id,
                                       ring[1].player_id,
                                       round_result.succeeded)

    suspicious = collusion.suspicious_pairs()
    print(f"\nCollusion detector flagged {len(suspicious)} pairs:")
    for stats in suspicious[:5]:
        pair = " & ".join(sorted(stats.pair))
        print(f"  {pair}: {stats.agreement_rate:.2f} agreement over "
              f"{stats.rounds} rounds")

    # Reputation-weighted voting on a poisoned task.
    weights = {p: (0.05 if p in set(flagged) else 1.0)
               for p in adversaries}
    vote = MajorityVote(weights=weights)
    answers = ([(p, "junk-label") for p in sorted(true_spammers)][:3]
               + [("honest-1", "real-label"),
                  ("honest-2", "real-label")])
    result = vote.vote("poisoned-task", answers)
    print(f"\nWeighted vote on a spammed task -> {result.answer!r} "
          f"(confidence {result.confidence:.2f})")


if __name__ == "__main__":
    main()
