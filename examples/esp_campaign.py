#!/usr/bin/env python
"""A full ESP Game campaign: arrivals, matchmaking, metrics.

Simulates a day of traffic against an image corpus — Poisson arrivals,
random pairing, engagement-limited players — then reports the paper's
GWAP metrics (throughput, ALP, expected contribution), label quality,
the cumulative-label growth series and the coverage curve.

Run:  python examples/esp_campaign.py
"""

from repro.analytics import (coverage_curve, cumulative_counts,
                             gwap_metrics, label_precision_recall)
from repro.corpus import ImageCorpus, Vocabulary
from repro.games import EspGame
from repro.players import (EngagementModel, PopulationConfig,
                           build_population)
from repro.sim import Campaign, esp_session_runner

HOURS = 8.0


def main() -> None:
    vocab = Vocabulary(size=1000, categories=40, seed=7)
    corpus = ImageCorpus(vocab, size=200, seed=7)
    game = EspGame(corpus, promotion_threshold=2, seed=7)

    population = build_population(80, PopulationConfig(
        skill_mean=0.75, coverage_mean=0.7, lazy_frac=0.1), seed=7)
    engagement = EngagementModel(alp_scale_s=1.5 * 3600.0)

    campaign = Campaign(population, esp_session_runner(game),
                        arrival_rate_per_hour=180.0,
                        engagement=engagement, seed=7)
    print(f"Simulating {HOURS:.0f} hours of campaign time...")
    result = campaign.run(HOURS * 3600.0)

    metrics = gwap_metrics("ESP", result, population, engagement)
    print(f"\nSessions:            {metrics.sessions}")
    print(f"Human hours played:  {metrics.human_hours:.1f}")
    print(f"Throughput:          "
          f"{metrics.throughput_per_hour:.1f} labels/human-hour")
    print(f"Avg lifetime play:   {metrics.alp_hours:.2f} h")
    print(f"Expected contribution per recruit: "
          f"{metrics.expected_contribution:.0f} labels")

    promoted = {item: list(labels)
                for item, labels in game.good_labels().items()}
    if promoted:
        pr = label_precision_recall(promoted, corpus)
        print(f"\nPromoted labels:     {pr.labels} "
              f"(precision {pr.precision:.3f}, "
              f"salience recall {pr.recall:.3f})")

    stamps = [c.timestamp for c in result.verified_contributions]
    growth = cumulative_counts(stamps, bucket_s=3600.0)
    print("\nLabel growth (cumulative verified labels):")
    for end, count in growth:
        bar = "#" * int(count / max(growth.final, 1) * 40)
        print(f"  {int(end // 3600):2d}h {int(count):6d} {bar}")

    curve = coverage_curve(result.contributions, len(corpus),
                           bucket_s=3600.0, min_outputs=1)
    print("\nCoverage (fraction of images with >= 1 verified label):")
    for end, fraction in curve:
        bar = "#" * int(fraction * 40)
        print(f"  {int(end // 3600):2d}h {fraction:5.2f} {bar}")


if __name__ == "__main__":
    main()
