#!/usr/bin/env python
"""Quickstart: label a synthetic image corpus with the ESP Game.

Builds a tiny world, plays a handful of two-player sessions with
simulated humans, and prints the verified labels with their measured
precision against ground truth.

Run:  python examples/quickstart.py
"""

from repro.corpus import ImageCorpus, Vocabulary
from repro.games import EspGame
from repro.players import build_population
from repro import rng as _rng


def main() -> None:
    # 1. A synthetic world: a Zipfian vocabulary and images whose true
    #    tag distributions are known (so we can score ourselves).
    vocab = Vocabulary(size=600, categories=25, seed=1)
    corpus = ImageCorpus(vocab, size=40, seed=1)

    # 2. The game and a small crowd of simulated players.
    game = EspGame(corpus, promotion_threshold=2, seed=1)
    players = build_population(12, seed=1)

    # 3. Random matching: play 30 two-player sessions.
    rng = _rng.make_rng(1)
    for _ in range(30):
        a, b = rng.sample(players, 2)
        game.play_session(a, b)

    # 4. The output: labels promoted by repeated independent agreement.
    print("Promoted labels (first 8 images):")
    for item, labels in list(sorted(game.good_labels().items()))[:8]:
        print(f"  {item}: {', '.join(labels)}")

    print(f"\nRounds played:        {game.rounds_played}")
    print(f"Verified agreements:  "
          f"{sum(len(v) for v in game.raw_labels().values())}")
    print(f"Promoted labels:      "
          f"{sum(len(v) for v in game.good_labels().values())}")
    print(f"Label precision:      {game.label_precision():.3f} "
          "(vs ground truth)")
    print("\nTop players:")
    for player_id, points in game.scorekeeper.leaderboard(top=3):
        level = game.scorekeeper.level(player_id)
        print(f"  {player_id}: {points} points ({level})")


if __name__ == "__main__":
    main()
