#!/usr/bin/env python
"""Shareable artifacts: export a world, reload it, verify determinism.

A released experiment should not depend on the generator staying
byte-identical across library versions.  This example builds a world,
saves it to JSON, reloads it, and shows that a seeded campaign on the
reloaded world reproduces the original's labels exactly — then exports
the collected dataset.

Run:  python examples/shareable_world.py
"""

import os
import tempfile

from repro.corpus import ImageCorpus, Vocabulary, load_world, save_world
from repro.export import export_image_labels, save_dataset
from repro.games import EspGame
from repro.players import PopulationConfig, build_population
from repro import rng as _rng


def run_campaign(corpus, population, seed):
    game = EspGame(corpus, promotion_threshold=2, seed=seed)
    r = _rng.make_rng(seed)
    for _ in range(25):
        a, b = r.sample(population, 2)
        game.play_session(a, b)
    return game


def main() -> None:
    vocab = Vocabulary(size=700, categories=25, seed=11)
    corpus = ImageCorpus(vocab, size=50, seed=11)
    population = build_population(16, PopulationConfig(
        skill_mean=0.8, coverage_mean=0.8), seed=11)

    world_path = os.path.join(tempfile.gettempdir(),
                              "repro_world.json")
    save_world(world_path, vocabulary=vocab, images=corpus)
    size_kb = os.path.getsize(world_path) / 1024
    print(f"World saved to {world_path} ({size_kb:.0f} KiB)")

    world = load_world(world_path)
    print(f"Reloaded: {len(world.vocabulary)} words, "
          f"{len(world.images)} images")

    original = run_campaign(corpus, population, seed=42)
    restored = run_campaign(world.images, population, seed=42)
    same = original.good_labels() == restored.good_labels()
    print(f"Identical labels from original vs reloaded world: {same}")
    assert same, "world round-trip must preserve campaign determinism"

    dataset_path = os.path.join(tempfile.gettempdir(),
                                "repro_esp_labels.json")
    document = export_image_labels(original)
    save_dataset(document, dataset_path)
    print(f"Dataset: {document['stats']['labels']} labels at "
          f"precision {document['stats']['precision']:.3f} -> "
          f"{dataset_path}")


if __name__ == "__main__":
    main()
