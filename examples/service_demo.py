#!/usr/bin/env python
"""Run the crowdsourcing platform as a real HTTP service.

Starts the stdlib HTTP server on a free loopback port, creates a
labeling job through the REST API, drives simulated workers through the
fetch-task/submit-answer loop over real sockets, and prints the
aggregated results and leaderboard.

Run:  python examples/service_demo.py
"""

from repro.corpus import ImageCorpus, Vocabulary
from repro.platform import Platform
from repro.players import build_population
from repro.players.adversarial import answer_stream
from repro.service import ApiServer, HttpClient, serve_in_thread
from repro import rng as _rng


def main() -> None:
    platform = Platform(gold_rate=0.0, seed=3)
    server, _thread, base_url = serve_in_thread(ApiServer(platform))
    print(f"Platform serving at {base_url}")

    try:
        client = HttpClient(base_url)
        print(f"Health check: {client.health()}")

        # A labeling job over a small image corpus.
        vocab = Vocabulary(size=400, categories=20, seed=3)
        corpus = ImageCorpus(vocab, size=15, seed=3)
        job = client.create_job("label-images", redundancy=3)
        client.add_tasks(job["job_id"], [
            {"payload": {"image_id": image.image_id}}
            for image in corpus])
        client.start_job(job["job_id"])
        print(f"Created {job['job_id']} with {len(corpus)} tasks "
              "(redundancy 3)")

        # Simulated workers answer over HTTP.
        workers = build_population(6, seed=3, id_prefix="worker")
        rng = _rng.make_rng(3)
        for model in workers:
            client.register_worker(model.player_id,
                                   display_name=model.player_id)
            while True:
                task = client.next_task(job["job_id"], model.player_id)
                if task is None:
                    break
                image = corpus.image(task["payload"]["image_id"])
                answers = answer_stream(model, image.salience, vocab,
                                        rng, k=1)
                label = answers[0] if answers else "unknown"
                client.submit_answer(task["task_id"], model.player_id,
                                     label)

        progress = client.get_job(job["job_id"])["progress"]
        print(f"Progress: {progress['answers']} answers, "
              f"{progress['complete_frac']:.0%} of tasks complete")

        results = client.results(job["job_id"])
        correct = 0
        for task_id, result in sorted(results.items()):
            task_payload = platform.store.get_task(task_id).payload
            image = corpus.image(task_payload["image_id"])
            relevant = image.is_relevant(result["answer"])
            correct += relevant
            marker = "ok " if relevant else "MISS"
            print(f"  [{marker}] {task_payload['image_id']} -> "
                  f"{result['answer']!r} "
                  f"(confidence {result['confidence']:.2f})")
        print(f"Majority answers relevant to image: "
              f"{correct}/{len(results)}")

        print("\nLeaderboard:")
        for entry in client.leaderboard(k=5):
            print(f"  {entry['account_id']}: {entry['points']} points")
    finally:
        server.shutdown()
        print("\nServer stopped.")


if __name__ == "__main__":
    main()
