"""Population factory: mixed crowds of simulated players.

The campaigns in the benchmarks draw their players from a
:class:`PopulationConfig` describing the behavior mix (honest fraction,
spammer fraction, ...) and the skill/coverage/speed distributions of the
honest core.  Colluders are created in pairs sharing a collusion key,
mirroring the real threat model (two friends coordinating answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import rng as _rng
from repro.errors import ConfigError
from repro.players.base import Behavior, PlayerModel


@dataclass(frozen=True)
class PopulationConfig:
    """Mix and distribution parameters for a simulated crowd.

    Fractions must sum to at most 1; the remainder is honest players.

    Attributes:
        spammer_frac / random_bot_frac / lazy_frac / colluder_frac:
            behavior mix.
        skill_mean / skill_sd: Gaussian (clipped to [0.05, 0.98]) skill
            of honest players.
        coverage_mean / coverage_sd: vocabulary coverage distribution.
        speed_mean / speed_sd: answers-per-10s distribution.
        diligence_mean / diligence_sd: answer-budget distribution.
    """

    spammer_frac: float = 0.0
    random_bot_frac: float = 0.0
    lazy_frac: float = 0.0
    colluder_frac: float = 0.0
    skill_mean: float = 0.7
    skill_sd: float = 0.15
    coverage_mean: float = 0.6
    coverage_sd: float = 0.15
    speed_mean: float = 3.0
    speed_sd: float = 0.8
    diligence_mean: float = 0.8
    diligence_sd: float = 0.15

    def __post_init__(self) -> None:
        total = (self.spammer_frac + self.random_bot_frac
                 + self.lazy_frac + self.colluder_frac)
        for name in ("spammer_frac", "random_bot_frac", "lazy_frac",
                     "colluder_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0,1], got {value}")
        if total > 1.0 + 1e-9:
            raise ConfigError(
                f"behavior fractions sum to {total:.3f} > 1")

    @property
    def honest_frac(self) -> float:
        return 1.0 - (self.spammer_frac + self.random_bot_frac
                      + self.lazy_frac + self.colluder_frac)


def _behavior_counts(config: PopulationConfig, n: int) -> Dict[Behavior,
                                                               int]:
    counts = {
        Behavior.SPAMMER: int(round(config.spammer_frac * n)),
        Behavior.RANDOM_BOT: int(round(config.random_bot_frac * n)),
        Behavior.LAZY: int(round(config.lazy_frac * n)),
        Behavior.COLLUDER: int(round(config.colluder_frac * n)),
    }
    # Colluders come in pairs.
    if counts[Behavior.COLLUDER] % 2:
        counts[Behavior.COLLUDER] += (
            -1 if counts[Behavior.COLLUDER] > 1 else 1)
    adversarial = sum(counts.values())
    if adversarial > n:
        counts[Behavior.SPAMMER] = max(
            0, counts[Behavior.SPAMMER] - (adversarial - n))
        adversarial = sum(counts.values())
    counts[Behavior.HONEST] = n - adversarial
    return counts


def build_population(n: int, config: PopulationConfig = PopulationConfig(),
                     seed: _rng.SeedLike = 0,
                     id_prefix: str = "player") -> List[PlayerModel]:
    """Build ``n`` players matching ``config``.

    Honest-core attribute distributions also apply to lazy players
    (they are honest, just brief) and, with degraded skill, to
    adversaries (whose skill is ignored by perception anyway).

    Returns players in a deterministic shuffled order.
    """
    if n <= 0:
        raise ConfigError(f"population size must be >= 1, got {n}")
    rng = _rng.make_rng(seed)
    counts = _behavior_counts(config, n)
    players: List[PlayerModel] = []
    collusion_ring = 0
    index = 0
    for behavior, count in counts.items():
        for member in range(count):
            key: Optional[str] = None
            if behavior is Behavior.COLLUDER:
                key = f"ring-{collusion_ring // 2}"
                collusion_ring += 1
            players.append(PlayerModel(
                player_id=f"{id_prefix}-{index:05d}",
                skill=_rng.bounded_gauss(rng, config.skill_mean,
                                         config.skill_sd, 0.05, 0.98),
                vocab_coverage=_rng.bounded_gauss(
                    rng, config.coverage_mean, config.coverage_sd,
                    0.1, 0.98),
                speed=_rng.bounded_gauss(rng, config.speed_mean,
                                         config.speed_sd, 0.5, 8.0),
                diligence=_rng.bounded_gauss(
                    rng, config.diligence_mean, config.diligence_sd,
                    0.05, 1.0),
                behavior=behavior,
                collusion_key=key))
            index += 1
    rng.shuffle(players)
    return players
