"""The player cognitive model.

A :class:`PlayerModel` captures everything about a simulated human that
the paper's metrics are sensitive to:

- **skill** — how well perception tracks ground-truth salience (low skill
  adds noise and near-miss labels);
- **vocabulary coverage** — which words the player can produce at all
  (agreement in output-agreement games requires *shared* vocabulary, so
  coverage drives the agreement-vs-skill figure);
- **speed** — typing/thinking rate, which drives throughput;
- **diligence** — how many answers the player bothers to enter per round;
- **behavior** — honest or one of the adversarial modes.

Word knowledge is *deterministic*: ``knows(word)`` hashes (player id,
word) against a frequency-dependent coverage curve, so knowledge is
stable across rounds without storing per-player dictionaries.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.corpus.vocab import Word
from repro.errors import ConfigError


class Behavior(enum.Enum):
    """Player behavior archetypes used across the library."""

    HONEST = "honest"
    SPAMMER = "spammer"        # types globally frequent words, ignores item
    RANDOM_BOT = "random_bot"  # types uniform random vocabulary words
    LAZY = "lazy"              # honest but enters very few answers
    COLLUDER = "colluder"      # types pre-agreed code words


def _unit_hash(*parts: str) -> float:
    """Stable hash of strings into [0, 1)."""
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class PlayerModel:
    """A simulated human.

    Attributes:
        player_id: unique id.
        skill: 0..1, fidelity of perception to ground truth.
        vocab_coverage: 0..1, fraction of the vocabulary the player could
            produce at the median word frequency.
        speed: answers per 10 seconds the player can sustain (≥ 0.5).
        diligence: 0..1, propensity to keep entering answers in a round.
        behavior: archetype controlling honest vs adversarial play.
        collusion_key: shared secret for colluder pairs (same key ⇒ same
            code words).
    """

    player_id: str
    skill: float = 0.7
    vocab_coverage: float = 0.6
    speed: float = 3.0
    diligence: float = 0.8
    behavior: Behavior = Behavior.HONEST
    collusion_key: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("skill", "vocab_coverage", "diligence"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{name} must be in [0,1], got {value}")
        if self.speed < 0.5:
            raise ConfigError(f"speed must be >= 0.5, got {self.speed}")
        if (self.behavior is Behavior.COLLUDER
                and not self.collusion_key):
            raise ConfigError(
                f"colluder {self.player_id!r} needs a collusion_key")

    def knows(self, word: Word) -> bool:
        """Whether this player can produce ``word``.

        Knowledge probability rises with word frequency: everyone knows
        the very frequent words, coverage of rare words scales with
        ``vocab_coverage``.  The decision is a stable hash, not a draw.
        """
        # Map frequency rank into a familiarity boost: rank 1 -> ~1.0,
        # median rank -> vocab_coverage, deep tail -> lower.
        rank_frac = word.rank / max(1, word.rank + 50)
        known_prob = self.vocab_coverage ** rank_frac
        return _unit_hash(self.player_id, word.text) < known_prob

    def knowledge_seed(self, label: str) -> int:
        """A stable per-player integer seed for derived streams."""
        digest = hashlib.sha256(
            f"{self.player_id}\x1f{label}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def effective_skill(self) -> float:
        """Skill as used by perception (adversaries don't perceive)."""
        if self.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            return 0.0
        return self.skill

    @property
    def is_adversarial(self) -> bool:
        return self.behavior is not Behavior.HONEST

    def answers_per_round(self, round_time_s: float) -> int:
        """Budget of answers this player enters in one round.

        Speed gives the physical cap; diligence scales how much of it the
        player actually uses; lazy players stop after one answer.
        """
        if self.behavior is Behavior.LAZY:
            return 1
        cap = self.speed * round_time_s / 10.0
        return max(1, int(round(cap * (0.3 + 0.7 * self.diligence))))
