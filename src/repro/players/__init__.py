"""Simulated human players.

The reproduction's substitute for live web players (see DESIGN.md):
a stochastic cognitive model with the knobs the paper's results depend on.

- :mod:`repro.players.base` — :class:`PlayerModel`: identity, skill,
  vocabulary coverage, speed, diligence, behavior type.  Word knowledge is
  a deterministic pseudo-random function of (player, word), so two models
  of the same player always know the same words.
- :mod:`repro.players.perception` — how a player turns an item's
  ground-truth salience into an ordered stream of things to type.
- :mod:`repro.players.timing` — response-time model (first-keystroke
  latency plus inter-answer gaps, faster for higher speed).
- :mod:`repro.players.adversarial` — spammer / random-bot / lazy /
  colluder behaviors.
- :mod:`repro.players.engagement` — average-lifetime-play model: how many
  hours a player sinks into a game over their lifetime.
- :mod:`repro.players.population` — mixed-population factory.
"""

from repro.players.base import Behavior, PlayerModel
from repro.players.perception import perceive_tags, perception_weights
from repro.players.timing import ResponseTimer
from repro.players.engagement import EngagementModel, LifetimeStats
from repro.players.population import PopulationConfig, build_population

__all__ = [
    "Behavior", "PlayerModel",
    "perceive_tags", "perception_weights",
    "ResponseTimer",
    "EngagementModel", "LifetimeStats",
    "PopulationConfig", "build_population",
]
