"""Engagement: the average-lifetime-play (ALP) model.

The paper's *expected contribution* metric is throughput × ALP: a game
that is fun keeps players for many hours, multiplying its useful output.
Real ALP distributions are heavy-tailed (a minority of devoted players
contribute most hours — the ESP Game had players exceeding 50 h/week).

:class:`EngagementModel` draws a per-player lifetime budget of play time
from a lognormal, carves it into sessions, and exposes the enjoyment knob
(`alp_scale`) the T1 benchmark sweeps to mirror the ESP ≫ Verbosity ≫
Peekaboom ALP ordering reported in the GWAP table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import rng as _rng
from repro.errors import ConfigError
from repro.players.base import PlayerModel


@dataclass(frozen=True)
class LifetimeStats:
    """A player's engagement draw.

    Attributes:
        total_play_s: lifetime seconds of play the player will sink in.
        sessions: how many distinct sessions that time is split into.
        session_lengths_s: per-session durations summing to total_play_s.
    """

    total_play_s: float
    sessions: int
    session_lengths_s: tuple

    def __post_init__(self) -> None:
        if self.total_play_s < 0:
            raise ConfigError("total_play_s must be >= 0")


class EngagementModel:
    """Draws heavy-tailed lifetime play budgets.

    Args:
        alp_scale_s: median lifetime play in seconds (the enjoyment knob;
            ESP-like games have a large one, chore-like games small).
        sigma: lognormal shape (1.0 gives a realistic heavy tail).
        session_s: nominal session length the lifetime is carved into.
    """

    def __init__(self, alp_scale_s: float = 3600.0, sigma: float = 1.0,
                 session_s: float = 150.0) -> None:
        if alp_scale_s <= 0:
            raise ConfigError(
                f"alp_scale_s must be > 0, got {alp_scale_s}")
        if sigma <= 0:
            raise ConfigError(f"sigma must be > 0, got {sigma}")
        if session_s <= 0:
            raise ConfigError(f"session_s must be > 0, got {session_s}")
        self.alp_scale_s = alp_scale_s
        self.sigma = sigma
        self.session_s = session_s

    def draw(self, model: PlayerModel, rng=None) -> LifetimeStats:
        """Draw lifetime stats for one player (stable per player id).

        The draw is seeded from the player id so the same player always
        has the same lifetime, independent of campaign order.
        """
        if rng is None:
            rng = _rng.make_rng(model.knowledge_seed("engagement"))
        mu = math.log(self.alp_scale_s)
        total = math.exp(rng.gauss(mu, self.sigma))
        # Diligent players play slightly longer sessions.
        nominal = self.session_s * (0.7 + 0.6 * model.diligence)
        sessions = max(1, int(round(total / nominal)))
        lengths = []
        remaining = total
        for index in range(sessions):
            if index == sessions - 1:
                lengths.append(remaining)
                break
            length = max(30.0, min(remaining,
                                   nominal * rng.uniform(0.6, 1.4)))
            lengths.append(length)
            remaining -= length
        return LifetimeStats(total_play_s=total, sessions=len(lengths),
                             session_lengths_s=tuple(lengths))

    def average_lifetime_play_s(self, models, rng=None) -> float:
        """Empirical mean lifetime play over a population."""
        draws = [self.draw(m, rng) for m in models]
        if not draws:
            return 0.0
        return sum(d.total_play_s for d in draws) / len(draws)
