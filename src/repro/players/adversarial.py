"""Behavior dispatch: one entry point for honest and adversarial answers.

Games should not branch on behavior types themselves; they call
:func:`answer_stream` and get whatever the player's archetype would type.
Honest and lazy players perceive the item (:func:`perceive_tags`);
spammers, random bots and colluders are item-blind (:func:`spam_tags`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.corpus.vocab import Vocabulary
from repro.players.base import Behavior, PlayerModel
from repro.players.perception import perceive_tags, spam_tags

_ITEM_BLIND = (Behavior.SPAMMER, Behavior.RANDOM_BOT, Behavior.COLLUDER)


def answer_stream(model: PlayerModel, salience: Dict[str, float],
                  vocabulary: Vocabulary, rng, k: int,
                  exclude: frozenset = frozenset()) -> List[str]:
    """Ordered answers the player types for an item with this salience.

    Args:
        model: the player (any behavior).
        salience: the item's ground-truth tag distribution.
        vocabulary: shared vocabulary.
        rng: per-round random stream.
        k: maximum answers.
        exclude: taboo words (enforced by the UI for everyone).
    """
    if model.behavior in _ITEM_BLIND:
        return spam_tags(model, vocabulary, rng, k, exclude)
    return perceive_tags(model, salience, vocabulary, rng, k, exclude)


def is_item_blind(model: PlayerModel) -> bool:
    """Whether this player's answers carry no item information."""
    return model.behavior in _ITEM_BLIND
