"""Response-time model.

Throughput — the paper's headline GWAP metric — is answers per unit time,
so timing matters as much as correctness.  The model is simple and
defensible: a first-answer latency (reading/orienting) plus lognormal-ish
inter-answer gaps, both scaled down by the player's speed.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigError
from repro.players.base import PlayerModel


class ResponseTimer:
    """Generates answer timestamps for one player.

    Args:
        model: the player whose speed scales all times.
        first_latency_s: mean orienting time before the first answer.
        gap_mean_s: mean gap between answers at speed 3.0.
    """

    def __init__(self, model: PlayerModel, first_latency_s: float = 3.0,
                 gap_mean_s: float = 3.5) -> None:
        if first_latency_s <= 0 or gap_mean_s <= 0:
            raise ConfigError("latency and gap means must be > 0")
        self.model = model
        self.first_latency_s = first_latency_s
        self.gap_mean_s = gap_mean_s

    def _speed_scale(self) -> float:
        # speed 3.0 is the reference; faster players shrink times.
        return 3.0 / self.model.speed

    def _lognormal(self, rng, mean: float) -> float:
        # lognormal with sigma 0.5, median scaled to the requested mean.
        mu = math.log(mean) - 0.125
        return math.exp(rng.gauss(mu, 0.5))

    def first_latency(self, rng) -> float:
        """Seconds before the first answer of a round."""
        return self._lognormal(rng, self.first_latency_s *
                               self._speed_scale())

    def gap(self, rng) -> float:
        """Seconds between consecutive answers."""
        return self._lognormal(rng, self.gap_mean_s * self._speed_scale())

    def schedule(self, rng, count: int,
                 limit_s: float = float("inf")) -> List[float]:
        """Timestamps for up to ``count`` answers within ``limit_s``.

        Returns strictly increasing times; stops early at the limit.
        """
        if count <= 0:
            return []
        times: List[float] = []
        clock = self.first_latency(rng)
        while len(times) < count and clock <= limit_s:
            times.append(clock)
            clock += self.gap(rng)
        return times
