"""Perception: turning ground-truth salience into what a player types.

Given an item's salience distribution over words, an honest player's
candidate answers are sampled without replacement with weights

    salience ** (1 / temperature)  for known words,

where the temperature falls with skill: a highly skilled player's order
closely tracks true salience, a low-skill player's is noisier.  A
skill-dependent fraction of answers is replaced by *near misses* — words
from the same category that are not actually salient in the item — which
is what caps label precision below 1.0 exactly as in the real ESP data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import rng as _rng
from repro.corpus.vocab import Vocabulary
from repro.players.base import Behavior, PlayerModel


def perception_weights(model: PlayerModel, salience: Dict[str, float],
                       vocabulary: Vocabulary
                       ) -> List[Tuple[str, float]]:
    """Sampling weights over the item's tags for this player.

    Unknown words get weight zero (the player cannot produce them);
    known words get salience sharpened/flattened by skill.
    """
    skill = model.effective_skill()
    # temperature 0.6 (sharp) at skill 1 .. 2.5 (flat) at skill 0.
    temperature = 2.5 - 1.9 * skill
    weighted: List[Tuple[str, float]] = []
    # Canonical order: determinism must not depend on dict insertion
    # order (a deserialized corpus may store the same salience with
    # different key order).
    for text, value in sorted(salience.items()):
        try:
            word = vocabulary.word(text)
        except Exception:
            continue
        if not model.knows(word):
            continue
        weighted.append((text, value ** (1.0 / temperature)))
    return weighted


def _near_miss(model: PlayerModel, salience: Dict[str, float],
               vocabulary: Vocabulary, rng) -> Optional[str]:
    """A plausible-but-wrong label: same category as a salient tag."""
    texts = sorted(salience)
    if not texts:
        return None
    anchor_text = rng.choice(texts)
    try:
        anchor = vocabulary.word(anchor_text)
    except Exception:
        return None
    candidates = [w for w in vocabulary.related(anchor, limit=12)
                  if w.text not in salience and model.knows(w)]
    if not candidates:
        return None
    return rng.choice(candidates).text


def perceive_tags(model: PlayerModel, salience: Dict[str, float],
                  vocabulary: Vocabulary, rng, k: int,
                  exclude: frozenset = frozenset()) -> List[str]:
    """Ordered answers the player would type for this item.

    Args:
        model: the player.
        salience: the item's ground-truth tag distribution.
        vocabulary: shared vocabulary (for knowledge and near misses).
        rng: random stream for this round.
        k: maximum answers.
        exclude: words the player will not type (taboo list; honest
            players respect it).

    Returns:
        Up to ``k`` distinct words, most-likely-first, with occasional
        near-miss substitutions for lower-skill players.
    """
    if k <= 0:
        return []
    weighted = [(t, w) for t, w in
                perception_weights(model, salience, vocabulary)
                if t not in exclude]
    items = [t for t, _ in weighted]
    weights = [w for _, w in weighted]
    ordered = _rng.weighted_sample_without_replacement(
        rng, items, weights, k)
    # Low-skill players substitute near misses.
    error_rate = 0.25 * (1.0 - model.effective_skill())
    out: List[str] = []
    seen = set(exclude)
    for text in ordered:
        if rng.random() < error_rate:
            miss = _near_miss(model, salience, vocabulary, rng)
            if miss is not None and miss not in seen:
                out.append(miss)
                seen.add(miss)
                continue
        if text not in seen:
            out.append(text)
            seen.add(text)
    return out[:k]


def spam_tags(model: PlayerModel, vocabulary: Vocabulary, rng,
              k: int, exclude: frozenset = frozenset()) -> List[str]:
    """Answers from an item-blind adversary.

    Spammers type globally frequent words (maximizing accidental
    agreement); random bots type uniformly random words; colluders type
    their pre-agreed code words.  Adversaries ignore the taboo list only
    if the UI would allow it — we model the UI as enforcing taboo, so
    ``exclude`` is still honored.
    """
    if k <= 0:
        return []
    if model.behavior is Behavior.COLLUDER:
        code_rng = _rng.make_rng(f"collusion:{model.collusion_key}")
        code_words = [w.text for w in vocabulary.sample(code_rng, k + 4,
                                                        by_frequency=False)]
        return [w for w in code_words if w not in exclude][:k]
    if model.behavior is Behavior.SPAMMER:
        top = [w.text for w in vocabulary.words[:max(20, 3 * k)]]
        picks = [t for t in top if t not in exclude]
        rng.shuffle(picks)
        # Spammers favor the very top words: re-sort a biased prefix.
        picks.sort(key=lambda t: vocabulary.word(t).rank)
        return picks[:k]
    # RANDOM_BOT and any other item-blind fallback.
    words = vocabulary.sample(rng, k + 4, by_frequency=False)
    return [w.text for w in words if w.text not in exclude][:k]
