"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``campaign`` — run a simulated ESP campaign and print GWAP metrics.
- ``digitize`` — run the reCAPTCHA pipeline over a synthetic book.
- ``serve``    — start the platform's HTTP service (``--data-dir``
  makes it durable: recover on boot, WAL every mutation, checkpoint
  on shutdown).  ``--cluster N`` starts N shard-owning worker
  processes behind a consistent-hash router instead; dead nodes are
  respawned and recover from their own WALs.
- ``suite``    — play one match of every game and summarize outputs.
- ``metrics``  — pretty-print a ``/metrics`` snapshot from a running
  service.
- ``trace``    — pull the flight recorder from a running service:
  pretty-print recent trace trees, or ``--jsonl`` for the raw dump
  (byte-identical to ``GET /debug/traces?format=jsonl``).
- ``top``      — live ops dashboard for a running service: per-game
  paper metrics, SLO burn rates, active alerts and slow verbs,
  refreshed in place; ``--once --json`` prints the raw dashboard
  document (byte-identical to ``GET /dashboard``).
- ``fsck``     — check a durability directory: per-record CRC,
  sequence-gap and orphan-reference diagnostics; silent and exit 0
  when clean, one line per issue and exit 1 on corruption.
  ``--cluster-dir`` checks every ``node-*`` directory under a
  cluster root instead.

Each command is a thin wrapper over the public API; see the examples/
directory for richer, commented versions of the same flows.
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Human-computation platform (DAC 2009 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", help="run a simulated ESP campaign")
    campaign.add_argument("--hours", type=float, default=4.0,
                          help="campaign duration in hours")
    campaign.add_argument("--players", type=int, default=60,
                          help="population size")
    campaign.add_argument("--rate", type=float, default=160.0,
                          help="visits per hour")
    campaign.add_argument("--images", type=int, default=150,
                          help="corpus size")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--report", action="store_true",
                          help="print the full campaign report")

    digitize = sub.add_parser(
        "digitize", help="run the reCAPTCHA digitization pipeline")
    digitize.add_argument("--words", type=int, default=600,
                          help="scanned book size")
    digitize.add_argument("--readers", type=int, default=40,
                          help="human reader pool size")
    digitize.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="start the platform HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--data-dir", default=None,
                       help="durability directory: recover state from "
                            "it on boot and write-ahead-log every "
                            "mutation (default: in-memory only)")
    serve.add_argument("--checkpoint-every", type=int, default=512,
                       help="WAL records between checkpoint rotations")
    serve.add_argument("--sample-rate", type=float, default=1.0,
                       help="trace head-sampling rate in [0,1] "
                            "(0 disables tracing entirely; errored "
                            "requests are still tail-promoted when "
                            "rate > 0)")
    serve.add_argument("--slow-threshold", type=float, default=0.5,
                       help="seconds above which a request enters the "
                            "flight recorder's slow-request log")
    serve.add_argument("--workers", type=int, default=1,
                       help="event-loop workers; each binds its own "
                            "SO_REUSEPORT listener so the kernel "
                            "load-balances accepted connections")
    serve.add_argument("--keep-alive", type=float, default=30.0,
                       dest="keep_alive",
                       help="idle keep-alive connection timeout in "
                            "seconds")
    serve.add_argument("--hot-cache", type=float, default=0.05,
                       dest="hot_cache",
                       help="TTL in seconds for pre-serialized "
                            "/healthz, /metrics and /dashboard "
                            "responses (0 disables)")
    serve.add_argument("--cluster", type=int, default=0,
                       metavar="N",
                       help="serve N shard-owning worker processes "
                            "behind a consistent-hash router "
                            "(requires --data-dir; node i persists "
                            "to <data-dir>/node-0i)")
    serve.add_argument("--no-fsync", action="store_true",
                       help="cluster nodes skip per-commit fsync "
                            "(faster, loses the acked-durable "
                            "guarantee under power loss)")
    serve.add_argument("--profile", action="store_true",
                       help="run the wall-clock sampling profiler "
                            "and serve it at GET /debug/profile "
                            "(with --cluster: one profiler per node, "
                            "merged at the router)")

    suite = sub.add_parser(
        "suite", help="play one match of every game")
    suite.add_argument("--seed", type=int, default=0)

    play = sub.add_parser(
        "play", help="solve CAPTCHA challenges interactively")
    play.add_argument("--rounds", type=int, default=5)
    play.add_argument("--seed", type=int, default=None)

    metrics = sub.add_parser(
        "metrics",
        help="pretty-print a /metrics snapshot from a running service")
    metrics.add_argument("--url", default="http://127.0.0.1:8080",
                         help="base URL of the service")
    metrics.add_argument("--format",
                         choices=("table", "json", "prom"),
                         default="table",
                         help="table (default), raw json, or "
                              "prometheus text")

    trace = sub.add_parser(
        "trace",
        help="pull recent traces from a running service's flight "
             "recorder")
    trace.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the service")
    trace.add_argument("--jsonl", action="store_true",
                       help="raw JSONL dump (one trace per line), "
                            "byte-identical to "
                            "GET /debug/traces?format=jsonl")
    trace.add_argument("--limit", type=int, default=None,
                       help="only the newest N traces")
    trace.add_argument("--cluster", action="store_true",
                       help="require the cluster-merged view: fail "
                            "loudly unless --url points at a router "
                            "whose /debug/traces stitches every "
                            "node's spans (never silently dump a "
                            "single process's recorder)")

    top = sub.add_parser(
        "top",
        help="live dashboard: paper metrics, SLOs and alerts from a "
             "running service")
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="base URL of the service")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--json", action="store_true",
                     help="with --once: print the raw dashboard "
                          "JSON, byte-identical to GET /dashboard")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds")
    top.add_argument("--frames", type=int, default=None,
                     help="stop after N refreshes (default: forever)")
    top.add_argument("--node", type=int, default=None,
                     help="cluster drill-down: render node N's own "
                          "dashboard through the router instead of "
                          "the cluster rollup frame")

    fsck = sub.add_parser(
        "fsck", help="check a durability directory for corruption")
    fsck.add_argument("--dir", default=None,
                      help="the durability data directory to check")
    fsck.add_argument("--cluster-dir", default=None,
                      dest="cluster_dir",
                      help="a cluster root: check every node-* "
                           "durability directory under it")
    fsck.add_argument("--verbose", action="store_true",
                      help="print a summary even when clean")
    return parser


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analytics import gwap_metrics
    from repro.corpus import ImageCorpus, Vocabulary
    from repro.games import EspGame
    from repro.players import EngagementModel, build_population
    from repro.sim import Campaign, esp_session_runner

    vocab = Vocabulary(size=1000, seed=args.seed)
    corpus = ImageCorpus(vocab, size=args.images, seed=args.seed)
    game = EspGame(corpus, seed=args.seed)
    population = build_population(args.players, seed=args.seed)
    engagement = EngagementModel(alp_scale_s=1.5 * 3600.0)
    campaign = Campaign(population, esp_session_runner(game),
                        arrival_rate_per_hour=args.rate,
                        engagement=engagement, seed=args.seed)
    result = campaign.run(args.hours * 3600.0)
    if args.report:
        from repro.analytics.report import campaign_report
        print(campaign_report("ESP", result, population, engagement,
                              corpus=corpus, game=game))
        return 0
    metrics = gwap_metrics("ESP", result, population, engagement)
    print(f"sessions:              {metrics.sessions}")
    print(f"human hours:           {metrics.human_hours:.1f}")
    print(f"throughput:            "
          f"{metrics.throughput_per_hour:.1f} labels/human-hour")
    print(f"avg lifetime play:     {metrics.alp_hours:.2f} h")
    print(f"expected contribution: {metrics.expected_contribution:.0f}")
    print(f"promoted labels:       "
          f"{sum(len(v) for v in game.good_labels().values())}")
    print(f"label precision:       {game.label_precision():.3f}")
    return 0


def _cmd_digitize(args: argparse.Namespace) -> int:
    from repro.captcha import HumanReader, OcrEngine, ReCaptchaService
    from repro.corpus import OcrCorpus
    from repro.players import PopulationConfig, build_population

    corpus = OcrCorpus(size=args.words, damaged_frac=0.3,
                       clean_legibility=0.99, damaged_legibility=0.85,
                       seed=args.seed)
    service = ReCaptchaService(
        corpus,
        OcrEngine("ocr-a", strength=0.55, penalty=0.2, seed=args.seed),
        OcrEngine("ocr-b", strength=0.5, penalty=0.25,
                  seed=args.seed + 1),
        quorum=3.0, seed=args.seed)
    population = build_population(args.readers, PopulationConfig(
        skill_mean=0.88, skill_sd=0.06), seed=args.seed)
    readers = itertools.cycle(
        HumanReader(model, damage_recovery=0.95, seed=i)
        for i, model in enumerate(population))
    served = 0
    while service.unknown_pool_size > 0 and served < 50000:
        challenge = service.issue()
        reader = next(readers)
        answers = tuple(reader.read(word) for word in challenge.words)
        service.submit(reader.reader_id, challenge.challenge_id,
                       answers)
        served += 1
    print(f"challenges served:     {served}")
    print(f"digitization progress: "
          f"{service.digitization_progress():.1%}")
    print(f"reCAPTCHA accuracy:    "
          f"{service.resolution_accuracy():.3f}")
    print(f"OCR baseline accuracy: "
          f"{service.ocr_baseline_accuracy():.3f}")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import Cluster

    if not args.data_dir:
        print("--cluster requires --data-dir (each node persists to "
              "its own subdirectory)", file=sys.stderr)
        return 2
    cluster = Cluster(args.cluster, args.data_dir, host=args.host,
                      router_port=args.port, seed=args.seed,
                      checkpoint_every=args.checkpoint_every,
                      fsync=not args.no_fsync,
                      sample_rate=args.sample_rate,
                      profile=args.profile)
    cluster.start()
    try:
        cluster.wait_healthy()
        print(f"cluster of {args.cluster} nodes serving on "
              f"{cluster.base_url} (root {args.data_dir}, "
              "Ctrl-C to stop)")
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        cluster.shutdown()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.recorder import FlightRecorder
    from repro.obs.tracing import Tracer
    from repro.platform import Platform
    from repro.service import ApiServer
    from repro.service.http import AsyncHttpServer

    if args.cluster:
        return _cmd_serve_cluster(args)

    # One tracer spans the whole stack (API + platform + WAL), so a
    # request's trace nests every layer it touched.
    tracer = Tracer(sample_rate=args.sample_rate,
                    recorder=FlightRecorder(
                        slow_threshold_s=args.slow_threshold))
    if args.data_dir:
        platform = Platform.recover(
            args.data_dir, checkpoint_every=args.checkpoint_every,
            seed=args.seed, tracer=tracer)
        print(f"recovered from {args.data_dir} "
              f"(seq {platform.durability.seq})")
    else:
        platform = Platform(seed=args.seed, tracer=tracer)
    profiler = None
    if args.profile:
        from repro.obs.profiler import SamplingProfiler
        profiler = SamplingProfiler().start()
    api = ApiServer(platform, tracer=tracer, profiler=profiler)
    server = AsyncHttpServer(
        api, host=args.host, port=args.port,
        workers=max(1, args.workers),
        keep_alive_timeout_s=args.keep_alive,
        hot_cache_ttl_s=args.hot_cache)
    server.start()
    print(f"serving on {server.base_url} "
          f"({server.n_workers} worker"
          f"{'s'[:server.n_workers != 1]}, Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        # Drain in-flight keep-alive connections first so their
        # mutations land in the WAL before the checkpoint flush.
        server.shutdown()
        api.shutdown()
        if profiler is not None:
            profiler.stop()
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    import runpy
    from pathlib import Path

    # The suite example is the canonical tour; reuse it directly when
    # available, otherwise run a minimal inline version.
    example = (Path(__file__).resolve().parent.parent.parent
               / "examples" / "gwap_suite.py")
    if example.exists():
        runpy.run_path(str(example), run_name="__main__")
        return 0
    from repro.corpus import ImageCorpus, Vocabulary
    from repro.games import EspGame
    from repro.players import build_population
    vocab = Vocabulary(size=600, seed=args.seed)
    corpus = ImageCorpus(vocab, size=40, seed=args.seed)
    game = EspGame(corpus, seed=args.seed)
    players = build_population(2, seed=args.seed)
    session = game.play_session(players[0], players[1])
    print(f"ESP: {session.successes}/{len(session.rounds)} rounds "
          "agreed")
    return 0


def _cmd_play(args: argparse.Namespace) -> int:
    from repro.corpus import OcrCorpus
    from repro.play import InteractiveCaptcha

    corpus = OcrCorpus(size=200, damaged_frac=0.0,
                       seed=args.seed if args.seed is not None else 0)
    session = InteractiveCaptcha(corpus, rounds=args.rounds,
                                 seed=args.seed)
    summary = session.play()
    return 0 if summary.solved > 0 else 1


def _format_metric_rows(name: str, metric: dict) -> list:
    """Rows (name, labels, value) for one metric's series."""
    rows = []
    for series in metric.get("series", []):
        labels = ",".join(f"{k}={v}" for k, v
                          in sorted(series.get("labels", {}).items()))
        if metric["kind"] == "histogram":
            if not series.get("count"):
                value = "count=0"
            else:
                value = (f"count={series['count']} "
                         f"mean={series['mean']:.6f} "
                         f"p50={series['p50']:.6f} "
                         f"p95={series['p95']:.6f} "
                         f"p99={series['p99']:.6f}")
        else:
            number = series.get("value", 0.0)
            value = (f"{number:g}" if isinstance(number, float)
                     else str(number))
        rows.append((name, metric["kind"], labels, value))
    return rows


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    from urllib import error as urlerror
    from urllib import request as urlrequest

    base = args.url.rstrip("/")
    path = "/metrics"
    if args.format == "prom":
        path += "?format=prometheus"
    try:
        with urlrequest.urlopen(base + path, timeout=10.0) as response:
            raw = response.read().decode("utf-8")
    except (urlerror.URLError, OSError) as exc:
        print(f"cannot reach {base}{path}: {exc}", file=sys.stderr)
        return 1
    if args.format == "prom":
        print(raw, end="")
        return 0
    snapshot = json.loads(raw)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, metric in sorted(snapshot.get("metrics", {}).items()):
        rows.extend(_format_metric_rows(name, metric))
    if not rows:
        print("no metrics recorded yet")
        return 0
    widths = [max(len(row[col]) for row in rows)
              for col in range(3)]
    for name, kind, labels, value in rows:
        print(f"{name.ljust(widths[0])}  {kind.ljust(widths[1])}  "
              f"{labels.ljust(widths[2])}  {value}")
    return 0


def _print_span_tree(span: dict, depth: int = 0) -> None:
    indent = "  " * depth
    status = span.get("status", "ok")
    mark = "" if status == "ok" else f" [{status.upper()}]"
    duration_ms = span.get("duration_s", 0.0) * 1000.0
    attrs = span.get("attributes") or {}
    extra = ("  " + " ".join(f"{k}={v}" for k, v
                             in sorted(attrs.items()))
             if attrs else "")
    print(f"{indent}{span.get('name', '?')}  "
          f"{duration_ms:.3f}ms{mark}{extra}")
    for child in span.get("children", []):
        _print_span_tree(child, depth + 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from urllib import error as urlerror
    from urllib import request as urlrequest

    base = args.url.rstrip("/")
    suffix = "" if args.limit is None else f"&limit={args.limit}"
    if args.cluster:
        # Merge-or-fail: probe the JSON view first and demand the
        # router's merged marker, so a --url pointed at a single node
        # (or an old router) can never pass off one process's
        # recorder as the cluster trace set.
        probe = "/debug/traces?" + suffix.lstrip("&")
        probe = probe.rstrip("?")
        try:
            with urlrequest.urlopen(base + probe,
                                    timeout=10.0) as response:
                doc = json.loads(response.read().decode("utf-8"))
        except (urlerror.URLError, OSError) as exc:
            print(f"cannot reach {base}{probe}: {exc}",
                  file=sys.stderr)
            return 1
        if not (doc.get("cluster") or {}).get("merged"):
            print(f"{base} did not return a cluster-merged trace "
                  "set: point --url at the cluster router (or drop "
                  "--cluster for a single process's recorder)",
                  file=sys.stderr)
            return 1
    path = "/debug/traces?format=jsonl" + suffix
    try:
        with urlrequest.urlopen(base + path, timeout=10.0) as response:
            raw = response.read().decode("utf-8")
    except (urlerror.URLError, OSError) as exc:
        print(f"cannot reach {base}{path}: {exc}", file=sys.stderr)
        return 1
    if args.jsonl:
        # Verbatim: what the endpoint sent is what we print, so piped
        # output is byte-identical to fetching the URL directly.
        sys.stdout.write(raw)
        return 0
    records = [json.loads(line) for line in raw.splitlines() if line]
    if not records:
        print("no traces recorded (is sampling enabled?)")
        return 0
    for record in records:
        status = record.get("status", "ok")
        mark = "" if status == "ok" else f"  [{status.upper()}]"
        sources = record.get("sources")
        origin = f"  [{','.join(sources)}]" if sources else ""
        print(f"trace {record.get('trace_id', '?')}  "
              f"{record.get('duration_s', 0.0) * 1000.0:.3f}ms"
              f"{mark}{origin}")
        # Single-process records carry one ``root``; cluster-stitched
        # records carry ``roots`` (orphaned fragments stay roots).
        roots = record.get("roots")
        if roots is None:
            roots = [record["root"]] if record.get("root") else []
        for root in roots:
            _print_span_tree(root, depth=1)
        print()
    return 0


def _slo_lines(slo: dict) -> list:
    """SLO burn table + active alerts, shared by the single-node and
    cluster frames (the router's live engine emits the same shape)."""
    lines = ["SLOs"]
    for name, state in sorted(slo.get("slos", {}).items()):
        burn = state.get("burn", {})
        burns = " ".join(f"{rule}={value:.2f}"
                         for rule, value in sorted(burn.items()))
        marker = state.get("state", "ok")
        if marker == "firing":
            marker = f"FIRING({state.get('severity')})"
        lines.append(f"  {name:<16} {marker:<14} objective="
                     f"{state.get('objective'):g} burn[{burns}]")
    active = slo.get("active_alerts", [])
    if active:
        lines.append("")
        lines.append("Active alerts")
        for alert in active:
            lines.append(f"  {alert['severity'].upper():<7} "
                         f"{alert['slo']}/{alert['rule']} "
                         f"burn={alert['burn_short']:.2f}")
    return lines


def _render_cluster_dashboard(doc: dict) -> str:
    """One terminal frame of a *router's* dashboard document:
    cluster totals, the cluster SLO burn table, one health row per
    node, and the federated per-verb latency rollup (GK sketches
    merged across nodes).  ``repro top --node I`` drills into one
    node's full single-process frame."""
    cluster = doc.get("cluster", {})
    lines = [
        f"repro top — cluster of {cluster.get('n_nodes', 0)} "
        f"({cluster.get('healthy_nodes', 0)} healthy)  "
        f"requests={cluster.get('requests', 0)} "
        f"errors={cluster.get('errors', 0)}",
    ]
    slo = doc.get("slo")
    if slo:
        lines.append("")
        lines.extend(_slo_lines(slo))
    lines.append("")
    lines.append(f"  {'node':<10} {'health':<10} {'wal seq':>8} "
                 f"{'ckpt age':>9} {'shard':>7} {'requests':>9}")
    for name, node in sorted(doc.get("nodes", {}).items()):
        health = "up" if node.get("healthy") else "DOWN"
        age = node.get("last_checkpoint_age_s")
        age_text = f"{age:.1f}s" if isinstance(age, (int, float)) \
            else "-"
        shard = node.get("shard_range")
        shard_text = (f"{shard[0]}/{shard[1]}"
                      if isinstance(shard, list) and len(shard) == 2
                      else "-")
        service = node.get("service") or {}
        lines.append(
            f"  {name:<10} {health:<10} "
            f"{node.get('wal_seq') if node.get('wal_seq') is not None else '-':>8} "
            f"{age_text:>9} {shard_text:>7} "
            f"{service.get('requests', '-'):>9}")
        error = node.get("error")
        if error:
            lines.append(f"      {error}")
    verbs = (doc.get("latency") or {}).get("verbs") or {}
    if verbs:
        lines.append("")
        lines.append("Cluster verb latency (merged sketches)")
        for route, summary in sorted(verbs.items()):
            if not summary.get("count"):
                continue
            lines.append(
                f"  {route:<32} "
                f"p50={summary.get('p50', 0.0) * 1000.0:8.3f}ms "
                f"p95={summary.get('p95', 0.0) * 1000.0:8.3f}ms "
                f"p99={summary.get('p99', 0.0) * 1000.0:8.3f}ms "
                f"n={summary.get('count', 0)}")
        lines.append("  (drill down with --node I)")
    return "\n".join(lines)


def _render_dashboard(doc: dict) -> str:
    """One terminal frame of the dashboard document."""
    if doc.get("role") == "router":
        return _render_cluster_dashboard(doc)
    lines = []
    service = doc.get("service", {})
    lines.append(f"repro top — requests={service.get('requests', 0)} "
                 f"errors={service.get('errors', 0)} "
                 f"at_s={doc.get('at_s', 0.0):.1f}")
    lines.append("")
    lines.extend(_slo_lines(doc.get("slo", {})))
    games = doc.get("games", {})
    if games:
        lines.append("")
        lines.append(f"  {'game':<12} {'thr/h':>8} {'ALP(h)':>8} "
                     f"{'exp.contrib':>12} {'coverage':>9} "
                     f"{'agree':>6} {'gold':>6}")
        for game, gdoc in sorted(games.items()):
            life = gdoc.get("lifetime", {})
            lines.append(
                f"  {game:<12} {life.get('throughput', 0.0):>8.1f} "
                f"{life.get('alp_hours', 0.0):>8.2f} "
                f"{life.get('expected_contribution', 0.0):>12.1f} "
                f"{life.get('coverage', 0.0):>9.1%} "
                f"{life.get('agreement_rate', 0.0):>6.2f} "
                f"{life.get('gold_accuracy', 0.0):>6.2f}")
    slow = doc.get("latency", {}).get("slow_verbs", [])
    if slow:
        lines.append("")
        lines.append("Slow verbs (p99)")
        for verb in slow:
            p99_ms = (verb.get("p99_s") or 0.0) * 1000.0
            max_ms = (verb.get("max_s") or 0.0) * 1000.0
            trace = verb.get("trace_id") or "-"
            lines.append(f"  {verb['route']:<32} "
                         f"p99={p99_ms:8.3f}ms max={max_ms:8.3f}ms "
                         f"n={verb.get('count', 0):<7} "
                         f"trace={trace}")
    recent = doc.get("anomalies", {}).get("recent", [])
    if recent:
        lines.append("")
        lines.append("Recent anomalies")
        for record in recent[-5:]:
            z = record.get("z")
            z_text = f"{z:+.1f}" if z is not None else "inf"
            lines.append(f"  {record['signal']:<16} "
                         f"z={z_text} value={record['value']:g} "
                         f"at_s={record['at_s']:.1f}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time as _time
    from urllib import error as urlerror
    from urllib import request as urlrequest

    base = args.url.rstrip("/")
    path = "/dashboard"
    if args.node is not None:
        path += f"?node={args.node}"

    def fetch() -> "tuple[str, dict]":
        with urlrequest.urlopen(base + path, timeout=10.0) as response:
            raw = response.read().decode("utf-8")
        return raw, json.loads(raw)

    if args.once:
        try:
            raw, doc = fetch()
        except (urlerror.URLError, OSError) as exc:
            print(f"cannot reach {base}{path}: {exc}",
                  file=sys.stderr)
            return 1
        if args.json:
            # Verbatim: what the endpoint sent is what we print, so
            # piped output is byte-identical to fetching the URL.
            sys.stdout.write(raw)
            return 0
        print(_render_dashboard(doc))
        return 0
    frames = 0
    try:
        while args.frames is None or frames < args.frames:
            try:
                _, doc = fetch()
            except (urlerror.URLError, OSError) as exc:
                print(f"cannot reach {base}{path}: {exc}",
                      file=sys.stderr)
                return 1
            # Clear and home, then draw the frame in place.
            sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(_render_dashboard(doc) + "\n")
            sys.stdout.flush()
            frames += 1
            if args.frames is None or frames < args.frames:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.durability import cluster_fsck, fsck

    if bool(args.dir) == bool(args.cluster_dir):
        print("fsck needs exactly one of --dir or --cluster-dir",
              file=sys.stderr)
        return 2
    if args.cluster_dir:
        reports = cluster_fsck(args.cluster_dir)
        if not reports:
            print(f"{args.cluster_dir}: no node-* directories found",
                  file=sys.stderr)
            return 2
        clean = True
        for index in sorted(reports):
            report = reports[index]
            clean = clean and report.ok
            for line in report.lines():
                print(f"node-{index:02d}: {line}")
            if args.verbose:
                print(f"node-{index:02d}: {report.summary()}",
                      file=sys.stderr)
        return 0 if clean else 1
    report = fsck(args.dir)
    for line in report.lines():
        print(line)
    if args.verbose:
        print(report.summary(), file=sys.stderr)
        for line in report.batch_lines():
            print(line, file=sys.stderr)
    return 0 if report.ok else 1


_COMMANDS = {
    "campaign": _cmd_campaign,
    "digitize": _cmd_digitize,
    "serve": _cmd_serve,
    "suite": _cmd_suite,
    "play": _cmd_play,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "fsck": _cmd_fsck,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
