"""Crowdsourcing economics: what the answers cost.

The paper's motivating arithmetic: people collectively spend billions of
hours playing games — effort a GWAP channels for free — whereas a paid
platform pays per answer (plus a platform fee).  This module prices a
campaign either way:

- :class:`CostModel` — per-answer payment, platform fee, and the fixed
  infrastructure rate both approaches pay.
- :class:`CostReport` — totals plus the per-verified-unit cost that the
  A4 ablation compares across approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass(frozen=True)
class CostModel:
    """Pricing of a crowdsourcing approach.

    Attributes:
        payment_per_answer: wage per accepted answer (0 for GWAPs —
            play is its own compensation).
        platform_fee_rate: marketplace fee as a fraction of payments
            (e.g. MTurk's 20%).
        infra_per_human_hour: hosting/serving cost per human-hour of
            activity (both approaches pay this).
    """

    payment_per_answer: float = 0.0
    platform_fee_rate: float = 0.0
    infra_per_human_hour: float = 0.01

    def __post_init__(self) -> None:
        if self.payment_per_answer < 0:
            raise PlatformError(
                "payment_per_answer must be >= 0, got "
                f"{self.payment_per_answer}")
        if not 0.0 <= self.platform_fee_rate <= 1.0:
            raise PlatformError(
                "platform_fee_rate must be in [0,1], got "
                f"{self.platform_fee_rate}")
        if self.infra_per_human_hour < 0:
            raise PlatformError(
                "infra_per_human_hour must be >= 0, got "
                f"{self.infra_per_human_hour}")

    def price(self, answers: int, human_hours: float,
              verified_units: int) -> "CostReport":
        """Price a campaign that produced these quantities."""
        if answers < 0 or human_hours < 0 or verified_units < 0:
            raise PlatformError("campaign quantities must be >= 0")
        payments = answers * self.payment_per_answer
        fees = payments * self.platform_fee_rate
        infra = human_hours * self.infra_per_human_hour
        return CostReport(answers=answers, human_hours=human_hours,
                          verified_units=verified_units,
                          payments=payments, fees=fees, infra=infra)


@dataclass(frozen=True)
class CostReport:
    """Priced campaign output."""

    answers: int
    human_hours: float
    verified_units: int
    payments: float
    fees: float
    infra: float

    @property
    def total(self) -> float:
        return self.payments + self.fees + self.infra

    @property
    def cost_per_verified_unit(self) -> float:
        """Total cost divided by verified output (inf with none)."""
        if self.verified_units == 0:
            return float("inf")
        return self.total / self.verified_units


# Reference models for the A4 comparison.
GWAP_COST = CostModel(payment_per_answer=0.0, platform_fee_rate=0.0,
                      infra_per_human_hour=0.01)
PAID_CROWD_COST = CostModel(payment_per_answer=0.01,
                            platform_fee_rate=0.2,
                            infra_per_human_hour=0.01)


@dataclass
class BudgetTracker:
    """A spend cap for a paid job.

    Attributes:
        limit: maximum total spend.
        model: the pricing model charged per answer.
        spent: running total.
    """

    limit: float
    model: CostModel
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise PlatformError(f"limit must be > 0, got {self.limit}")

    @property
    def answer_cost(self) -> float:
        return (self.model.payment_per_answer
                * (1.0 + self.model.platform_fee_rate))

    def can_afford_answer(self) -> bool:
        """Whether one more answer fits the budget."""
        return self.spent + self.answer_cost <= self.limit + 1e-12

    def charge_answer(self) -> float:
        """Debit one answer; returns the remaining budget.

        Raises:
            PlatformError: when the budget is exhausted.
        """
        if not self.can_afford_answer():
            raise PlatformError(
                f"budget exhausted: spent {self.spent:.2f} of "
                f"{self.limit:.2f}")
        self.spent += self.answer_cost
        return self.remaining

    @property
    def remaining(self) -> float:
        return max(0.0, self.limit - self.spent)

    def affordable_answers(self) -> int:
        """How many more answers the budget covers."""
        if self.answer_cost == 0:
            return 10 ** 12
        return int(self.remaining / self.answer_cost + 1e-9)
