"""Crowdsourcing task platform substrate.

GWAPs are one interface to human computation; the overview situates them
within the broader pattern of platforms that queue tasks, assign them
redundantly to workers, and aggregate the answers (the role MTurk or
PyBossa plays in practice).  This package is that substrate:

- :mod:`repro.platform.store` — in-memory record stores with JSON
  round-tripping (flat :class:`~repro.platform.store.JsonStore` and the
  striped-lock :class:`~repro.platform.store.ShardedStore`).
- :mod:`repro.platform.sharding` — the process-stable key → shard hash
  and the :class:`~repro.platform.sharding.LockStripes` primitive.
- :mod:`repro.platform.jobs` — jobs (projects) and task records with a
  redundancy requirement and lifecycle.
- :mod:`repro.platform.accounts` — worker accounts.
- :mod:`repro.platform.scheduler` — task assignment policies
  (breadth-first, depth-first, random).
- :mod:`repro.platform.leaderboard` — points leaderboard.
- :mod:`repro.platform.facade` — :class:`~repro.platform.facade.Platform`,
  the high-level API the service layer and examples use.
"""

from repro.platform.sharding import (DEFAULT_SHARDS, LockStripes,
                                     shard_of)
from repro.platform.store import JsonStore, ShardedStore
from repro.platform.jobs import Job, JobStatus, TaskRecord, TaskState
from repro.platform.accounts import Account, AccountRegistry
from repro.platform.scheduler import AssignmentPolicy, TaskScheduler
from repro.platform.leaderboard import Leaderboard
from repro.platform.facade import Platform
from repro.platform.economics import (BudgetTracker, CostModel,
                                      CostReport, GWAP_COST,
                                      PAID_CROWD_COST)

__all__ = [
    "BudgetTracker", "CostModel", "CostReport",
    "GWAP_COST", "PAID_CROWD_COST",
    "DEFAULT_SHARDS", "LockStripes", "shard_of",
    "JsonStore", "ShardedStore",
    "Job", "JobStatus", "TaskRecord", "TaskState",
    "Account", "AccountRegistry",
    "AssignmentPolicy", "TaskScheduler",
    "Leaderboard",
    "Platform",
]
