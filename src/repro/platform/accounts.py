"""Worker accounts.

Minimal identity for the platform and service layers: an id, a display
name, cumulative points, and free-form attributes (the simulator stores
the behavior archetype here for post-hoc analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import AccountError


@dataclass
class Account:
    """A registered worker/player."""

    account_id: str
    display_name: str
    points: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def add_points(self, amount: int) -> int:
        """Add (possibly zero) points; returns the new total."""
        if amount < 0:
            raise AccountError(
                f"cannot add negative points ({amount})")
        self.points += amount
        return self.points

    def to_dict(self) -> Dict[str, Any]:
        return {"account_id": self.account_id,
                "display_name": self.display_name,
                "points": self.points, "attributes": self.attributes}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Account":
        return Account(account_id=raw["account_id"],
                       display_name=raw["display_name"],
                       points=raw.get("points", 0),
                       attributes=raw.get("attributes", {}))


class AccountRegistry:
    """Creates and looks up accounts with id uniqueness."""

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {}

    def register(self, account_id: str, display_name: Optional[str] = None,
                 **attributes: Any) -> Account:
        """Create an account; duplicate ids are an error."""
        if account_id in self._accounts:
            raise AccountError(f"account {account_id!r} already exists")
        account = Account(account_id=account_id,
                          display_name=display_name or account_id,
                          attributes=dict(attributes))
        self._accounts[account_id] = account
        return account

    def get(self, account_id: str) -> Account:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise AccountError(f"no account {account_id!r}") from None

    def ensure(self, account_id: str) -> Account:
        """Get or lazily create an account."""
        if account_id not in self._accounts:
            return self.register(account_id)
        return self._accounts[account_id]

    def adopt(self, account: Account) -> Account:
        """Install an existing account object (recovery path: the
        registry and the store must share one object so points accrue
        in both views)."""
        self._accounts[account.account_id] = account
        return account

    def __contains__(self, account_id: str) -> bool:
        return account_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def all(self) -> List[Account]:
        return [self._accounts[k] for k in sorted(self._accounts)]
