"""In-memory record stores with JSON persistence.

The platform's storage layer: three tables (jobs, tasks, accounts),
with full round-tripping to a JSON document so campaigns can be
checkpointed and resumed.

Two implementations share one interface and one document format:

- :class:`JsonStore` — flat dictionaries, no locking.  The original
  single-threaded substrate, kept as the baseline the concurrency and
  perf regression suites measure against.
- :class:`ShardedStore` — the same tables split into N shards by a
  process-stable key hash (:func:`repro.platform.sharding.shard_of`),
  each shard guarded by its own re-entrant lock.  Concurrent operations
  on different keys touch different shards and never contend; the
  document format is byte-identical to :class:`JsonStore`'s, so
  checkpoints written by either store (at any shard count) load into
  the other.

Accessor contract (both stores): ``jobs()``, ``tasks_for()`` and
``accounts()`` return **fresh snapshot lists** — callers may sort,
slice or clear them without perturbing store state, and a list taken
before a concurrent insert never mutates under iteration.  The records
*inside* the lists are the live objects (the platform mutates tasks in
place by design).

Copy-on-write read snapshots: both stores additionally support
**versioned job snapshots** (:class:`JobSnapshot`) behind a per-job
seqlock generalized to multiple writers.  Writers wrap each
job-mutating verb in :meth:`mutating` (a begin counter bumps at entry,
an end counter at exit — ``begin != end`` means a write is in flight);
readers call :meth:`snapshot_job` and get an *immutable copy* of the
job and its tasks without blocking on any write — the copy is memoized
per version epoch, so any number of readers between two writes share
one materialization, and writers never copy anything (true
copy-on-write: the first reader after a write pays for the copy).  A
snapshot is always a consistent prefix of the job's commit order: the
reader re-checks the begin counter after copying and discards any copy
that overlapped a writer.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import (JobNotFound, PlatformError, StoreCorruptError,
                          TaskNotFound)
from repro.platform.accounts import Account
from repro.platform.jobs import Job, TaskRecord
from repro.platform.sharding import DEFAULT_SHARDS, shard_of


def _load_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a store snapshot, raising
    :class:`~repro.errors.StoreCorruptError` on truncated or invalid
    JSON instead of leaking a raw ``json.JSONDecodeError``."""
    try:
        document = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreCorruptError(
            f"store file {Path(path).name!r} is not valid JSON "
            f"(truncated save?): {exc}") from exc
    if not isinstance(document, dict):
        raise StoreCorruptError(
            f"store file {Path(path).name!r} holds "
            f"{type(document).__name__}, expected an object")
    return document


@dataclass(frozen=True)
class JobSnapshot:
    """An immutable copy of one job and its tasks at a version epoch.

    ``job`` and every record in ``tasks`` are copies — mutating the
    live store never changes a snapshot already handed out, and
    mutating a snapshot never touches the store.  (Payload/meta dicts
    are shared by reference; the platform never mutates them after
    creation.)  ``version`` is the job's seqlock version the copy was
    taken at — always even.
    """

    version: int
    job: Job
    tasks: Tuple[TaskRecord, ...]


class _SnapshotSupport:
    """The per-job seqlock + memoized-snapshot machinery both store
    implementations mix in.

    Writers for the *same* job may overlap (the service serializes by
    task stripe, not by job — two answers to different tasks of one
    job commit concurrently), so the classic single-counter seqlock is
    not enough: a begin/end counter pair detects "any writer in
    flight" (``begin != end``) and "any writer entered during my
    copy" (begin moved).  Counter bumps take a tiny gate lock — two
    dict writes, no IO, never held across the mutation itself — while
    readers take no locks at all: single-key dict reads are
    GIL-atomic, and the re-check discards any torn copy.
    """

    def _init_snapshots(self) -> None:
        self._v_begin: Dict[str, int] = {}
        self._v_end: Dict[str, int] = {}
        self._version_gate = threading.Lock()
        self._snap_cache: Dict[str, JobSnapshot] = {}

    # Subclasses provide lock-free point reads for materialization.
    def _peek_job(self, job_id: str) -> Optional[Job]:
        raise NotImplementedError

    def _peek_task(self, task_id: str) -> Optional[TaskRecord]:
        raise NotImplementedError

    def _job_ids_unlocked(self) -> List[str]:
        raise NotImplementedError

    def job_version(self, job_id: str) -> int:
        """The job's current write-epoch counter (writes so far
        begun; informational — see :meth:`mutating`)."""
        return self._v_begin.get(job_id, 0)

    @contextmanager
    def mutating(self, job_id: str) -> Iterator[None]:
        """Mark a job-mutating verb's window.

        Must be held around *every* store mutation touching the job or
        its tasks (the platform facade does this).  Overlapping calls
        for the same job are fine — readers see "in flight" while any
        writer is inside.
        """
        gate = self._version_gate
        begin = self._v_begin
        with gate:
            begin[job_id] = begin.get(job_id, 0) + 1
        try:
            yield
        finally:
            end = self._v_end
            with gate:
                end[job_id] = end.get(job_id, 0) + 1

    def snapshot_job(self, job_id: str) -> JobSnapshot:
        """An immutable, consistent copy of the job and its tasks.

        Lock-free and non-blocking: if a writer is mid-verb a recent
        stable epoch's cached snapshot is served (a consistent prefix
        — never a torn state); only the very first reader of a job may
        briefly wait for an in-flight write to settle.  Successive
        snapshots of one job never go backwards (the cache is replaced
        only by newer versions).  Raises
        :class:`~repro.errors.JobNotFound` for unknown jobs.
        """
        begin = self._v_begin
        end = self._v_end
        cache = self._snap_cache
        while True:
            b1 = begin.get(job_id, 0)
            e1 = end.get(job_id, 0)
            cached = cache.get(job_id)
            if b1 != e1:
                # Writer(s) in flight (or raced the two reads).
                if cached is not None:
                    return cached
                time.sleep(0)  # nothing cached yet: wait it out
                continue
            if cached is not None and cached.version == b1:
                return cached
            job = self._peek_job(job_id)
            if job is None:
                raise JobNotFound(f"no job {job_id!r}")
            snapshot = self._materialize(job, b1)
            if begin.get(job_id, 0) == b1:
                # No writer entered during the copy, and none was
                # inside when it started (b1 == e1): it is consistent.
                with self._version_gate:
                    current = cache.get(job_id)
                    if (current is None
                            or current.version < snapshot.version):
                        cache[job_id] = snapshot
                return snapshot
            # Raced a writer: the copy may be torn — discard and retry.

    def snapshot_jobs(self) -> List[JobSnapshot]:
        """Per-job snapshots of every job, id-sorted.  Each entry is
        individually consistent; a job created mid-scan may or may not
        appear (monotone, like any listing)."""
        out = []
        for job_id in sorted(self._job_ids_unlocked()):
            try:
                out.append(self.snapshot_job(job_id))
            except JobNotFound:  # pragma: no cover - jobs never die
                continue
        return out

    def _materialize(self, job: Job, version: int) -> JobSnapshot:
        job_copy = Job.from_dict(job.to_dict())
        tasks = []
        for task_id in job_copy.task_ids:
            task = self._peek_task(task_id)
            if task is not None:
                tasks.append(TaskRecord.from_dict(task.to_dict()))
        return JobSnapshot(version=version, job=job_copy,
                           tasks=tuple(tasks))


class JsonStore(_SnapshotSupport):
    """Jobs, tasks and accounts with JSON (de)serialization.

    Deliberately simple and unlocked: the single-threaded baseline.
    Thread-safe deployments use :class:`ShardedStore`.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._tasks: Dict[str, TaskRecord] = {}
        self._accounts: Dict[str, Account] = {}
        self._init_snapshots()

    def _peek_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def _peek_task(self, task_id: str) -> Optional[TaskRecord]:
        return self._tasks.get(task_id)

    def _job_ids_unlocked(self) -> List[str]:
        return list(self._jobs)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def put_job(self, job: Job) -> None:
        self._jobs[job.job_id] = job

    def get_job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(f"no job {job_id!r}") from None

    def has_job(self, job_id: str) -> bool:
        return job_id in self._jobs

    def jobs(self) -> List[Job]:
        """All jobs, id-sorted, as a fresh snapshot list."""
        return [self._jobs[k] for k in sorted(self._jobs)]

    def job_count(self) -> int:
        return len(self._jobs)

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def put_task(self, task: TaskRecord) -> None:
        if task.job_id not in self._jobs:
            raise JobNotFound(
                f"task {task.task_id!r} references missing job "
                f"{task.job_id!r}")
        self._tasks[task.task_id] = task
        job = self._jobs[task.job_id]
        if task.task_id not in job.task_ids:
            job.task_ids.append(task.task_id)

    def get_task(self, task_id: str) -> TaskRecord:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskNotFound(f"no task {task_id!r}") from None

    def has_task(self, task_id: str) -> bool:
        return task_id in self._tasks

    def tasks_for(self, job_id: str) -> List[TaskRecord]:
        """A job's tasks, in creation order, as a fresh snapshot list.

        The membership list is copied before resolution, so a caller
        iterating the result races with concurrent ``put_task`` calls
        safely, and mutating the returned list never touches the job's
        own ``task_ids``.
        """
        job = self.get_job(job_id)
        member_ids = list(job.task_ids)
        return [self._tasks[task_id] for task_id in member_ids
                if task_id in self._tasks]

    def get_tasks(self, task_ids: List[str]) -> List[TaskRecord]:
        """Resolve many task ids at once, preserving order; unknown
        ids are silently skipped (same contract as ``tasks_for``)."""
        return [self._tasks[task_id] for task_id in task_ids
                if task_id in self._tasks]

    def task_count(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def put_account(self, account: Account) -> None:
        self._accounts[account.account_id] = account

    def get_account(self, account_id: str) -> Account:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise PlatformError(f"no account {account_id!r}") from None

    def has_account(self, account_id: str) -> bool:
        return account_id in self._accounts

    def accounts(self) -> List[Account]:
        """All accounts, id-sorted, as a fresh snapshot list."""
        return [self._accounts[k] for k in sorted(self._accounts)]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The whole store as one JSON-serializable document."""
        return {
            "jobs": [job.to_dict() for job in self.jobs()],
            "tasks": [task.to_dict()
                      for task in self._sorted_tasks()],
            "accounts": [account.to_dict()
                         for account in self.accounts()],
        }

    def _sorted_tasks(self) -> List[TaskRecord]:
        return [self._tasks[k] for k in sorted(self._tasks)]

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "JsonStore":
        """Rebuild a store from :meth:`to_document` output."""
        store = cls()
        _fill_from_document(store, document)
        return store

    def restarted(self) -> "JsonStore":
        """A type- and shape-preserving rebuild from the store's own
        checkpoint document — what a crash-restart does."""
        return type(self).from_document(self.to_document())

    def save(self, path: Union[str, Path]) -> None:
        """Write the store to a JSON file atomically (temp sibling,
        fsync, ``os.replace``) — a crash mid-save leaves the previous
        snapshot intact, never a truncated hybrid."""
        from repro.durability.wal import atomic_write_text
        atomic_write_text(
            path,
            json.dumps(self.to_document(), indent=2, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path]) -> "JsonStore":
        """Read a store back from :meth:`save` output.

        Raises :class:`~repro.errors.StoreCorruptError` (non-retryable)
        on truncated or invalid JSON.
        """
        return JsonStore.from_document(_load_document(path))


def _fill_from_document(store, document: Dict[str, Any]) -> None:
    """Populate any store implementation from a checkpoint document."""
    for raw in document.get("jobs", []):
        job = Job.from_dict(raw)
        job.task_ids = []
        store.put_job(job)
    for raw in document.get("tasks", []):
        store.put_task(TaskRecord.from_dict(raw))
    for raw in document.get("accounts", []):
        store.put_account(Account.from_dict(raw))


class ShardedStore(_SnapshotSupport):
    """The striped-lock store: N independently locked shards.

    Jobs, tasks and accounts each hash to a shard by their own id via
    :func:`~repro.platform.sharding.shard_of` — process-stable, so a
    checkpoint reloads onto the same shards in every process, and the
    document format is shard-count-agnostic (an 8-shard checkpoint
    loads cleanly into a 3-shard store).

    Each shard owns one :class:`threading.RLock`; single-key operations
    take exactly one shard lock, and whole-store scans take the shard
    locks one at a time in index order (the store-level lock-ordering
    rule).  Shard locks are leaf locks in the platform hierarchy: no
    other platform lock is ever acquired while one is held.

    Semantically identical to :class:`JsonStore` — same accessor
    contract, same sorted iteration orders, same document bytes — which
    is what the golden-trace determinism suite in
    ``tests/concurrency/`` asserts.

    Args:
        n_shards: shard count.
        registry: optional metrics registry.  When given, every shard
            lock acquisition feeds the ``store.shard_wait_s`` and
            ``store.shard_held_s`` histograms (labelled by shard).
            When omitted — the default, and the hot-path configuration
            — lock acquisition is the raw RLock with zero timing
            overhead.
    """

    def __init__(self, n_shards: int = DEFAULT_SHARDS,
                 registry=None) -> None:
        if n_shards < 1:
            raise PlatformError(
                f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._locks = [threading.RLock() for _ in range(n_shards)]
        self._jobs: List[Dict[str, Job]] = [
            {} for _ in range(n_shards)]
        self._tasks: List[Dict[str, TaskRecord]] = [
            {} for _ in range(n_shards)]
        self._accounts: List[Dict[str, Account]] = [
            {} for _ in range(n_shards)]
        if registry is not None:
            self._m_wait = registry.histogram(
                "store.shard_wait_s",
                "time waiting for a store shard lock, by shard")
            self._m_held = registry.histogram(
                "store.shard_held_s",
                "time holding a store shard lock, by shard")
            self._locked = self._timed_locked
        else:
            self._locked = self._plain_locked
        self._init_snapshots()

    def _peek_job(self, job_id: str) -> Optional[Job]:
        # Lock-free: single-key dict reads are GIL-atomic, and the
        # seqlock retry in snapshot_job covers any concurrent write.
        return self._jobs[self.shard_of(job_id)].get(job_id)

    def _peek_task(self, task_id: str) -> Optional[TaskRecord]:
        return self._tasks[self.shard_of(task_id)].get(task_id)

    def _job_ids_unlocked(self) -> List[str]:
        ids: List[str] = []
        for table in self._jobs:
            ids.extend(list(table))
        return ids

    def _plain_locked(self, shard: int):
        # The RLock is its own context manager: ``with`` on it costs
        # nothing beyond acquire/release.
        return self._locks[shard]

    @contextmanager
    def _timed_locked(self, shard: int):
        lock = self._locks[shard]
        wait_start = time.perf_counter()
        lock.acquire()
        acquired = time.perf_counter()
        self._m_wait.observe(acquired - wait_start,
                             shard=f"s{shard:02d}")
        try:
            yield
        finally:
            self._m_held.observe(time.perf_counter() - acquired,
                                 shard=f"s{shard:02d}")
            lock.release()

    def shard_of(self, key: str) -> int:
        """The shard index ``key`` lives on."""
        return shard_of(key, self.n_shards)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def put_job(self, job: Job) -> None:
        shard = self.shard_of(job.job_id)
        with self._locked(shard):
            self._jobs[shard][job.job_id] = job

    def get_job(self, job_id: str) -> Job:
        shard = self.shard_of(job_id)
        with self._locked(shard):
            try:
                return self._jobs[shard][job_id]
            except KeyError:
                raise JobNotFound(f"no job {job_id!r}") from None

    def has_job(self, job_id: str) -> bool:
        shard = self.shard_of(job_id)
        with self._locked(shard):
            return job_id in self._jobs[shard]

    def jobs(self) -> List[Job]:
        """All jobs, id-sorted, as a fresh snapshot list."""
        collected: List[Job] = []
        for shard in range(self.n_shards):
            with self._locked(shard):
                collected.extend(self._jobs[shard].values())
        return sorted(collected, key=lambda job: job.job_id)

    def job_count(self) -> int:
        return sum(len(table) for table in self._jobs)

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def put_task(self, task: TaskRecord) -> None:
        # Membership check and member-list append go to the job's
        # shard, the record itself to the task's shard.  Job-shard
        # first, never holding both at once, so there is no shard-lock
        # ordering to violate.
        job = self.get_job(task.job_id)  # raises JobNotFound
        shard = self.shard_of(task.task_id)
        with self._locked(shard):
            self._tasks[shard][task.task_id] = task
        job_shard = self.shard_of(task.job_id)
        with self._locked(job_shard):
            if task.task_id not in job.task_ids:
                job.task_ids.append(task.task_id)

    def get_task(self, task_id: str) -> TaskRecord:
        shard = self.shard_of(task_id)
        with self._locked(shard):
            try:
                return self._tasks[shard][task_id]
            except KeyError:
                raise TaskNotFound(f"no task {task_id!r}") from None

    def has_task(self, task_id: str) -> bool:
        shard = self.shard_of(task_id)
        with self._locked(shard):
            return task_id in self._tasks[shard]

    def tasks_for(self, job_id: str) -> List[TaskRecord]:
        """A job's tasks, in creation order, as a fresh snapshot list.

        Same copy semantics as :meth:`JsonStore.tasks_for`: the
        member-id list is snapshotted under the job's shard lock, then
        each record is resolved under its own shard lock.
        """
        job = self.get_job(job_id)
        job_shard = self.shard_of(job_id)
        with self._locked(job_shard):
            member_ids = list(job.task_ids)
        return self.get_tasks(member_ids)

    def get_tasks(self, task_ids: List[str]) -> List[TaskRecord]:
        """Resolve many task ids at once, preserving order; unknown
        ids are silently skipped (same contract as ``tasks_for``).

        Ids are grouped by shard so each involved shard lock is taken
        exactly once per call instead of once per id — the difference
        between O(ids) and O(shards) lock traffic on the scheduler's
        hot path.
        """
        by_shard: Dict[int, List[str]] = {}
        for task_id in task_ids:
            by_shard.setdefault(self.shard_of(task_id),
                                []).append(task_id)
        resolved: Dict[str, TaskRecord] = {}
        for shard, ids in by_shard.items():
            table = self._tasks[shard]
            with self._locked(shard):
                for task_id in ids:
                    task = table.get(task_id)
                    if task is not None:
                        resolved[task_id] = task
        return [resolved[task_id] for task_id in task_ids
                if task_id in resolved]

    def task_count(self) -> int:
        return sum(len(table) for table in self._tasks)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def put_account(self, account: Account) -> None:
        shard = self.shard_of(account.account_id)
        with self._locked(shard):
            self._accounts[shard][account.account_id] = account

    def get_account(self, account_id: str) -> Account:
        shard = self.shard_of(account_id)
        with self._locked(shard):
            try:
                return self._accounts[shard][account_id]
            except KeyError:
                raise PlatformError(
                    f"no account {account_id!r}") from None

    def has_account(self, account_id: str) -> bool:
        shard = self.shard_of(account_id)
        with self._locked(shard):
            return account_id in self._accounts[shard]

    def accounts(self) -> List[Account]:
        """All accounts, id-sorted, as a fresh snapshot list."""
        collected: List[Account] = []
        for shard in range(self.n_shards):
            with self._locked(shard):
                collected.extend(self._accounts[shard].values())
        return sorted(collected,
                      key=lambda account: account.account_id)

    # ------------------------------------------------------------------
    # Persistence — document bytes identical to JsonStore's
    # ------------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The whole store as one JSON-serializable document
        (byte-compatible with :meth:`JsonStore.to_document`)."""
        tasks: List[TaskRecord] = []
        for shard in range(self.n_shards):
            with self._locked(shard):
                tasks.extend(self._tasks[shard].values())
        tasks.sort(key=lambda task: task.task_id)
        return {
            "jobs": [job.to_dict() for job in self.jobs()],
            "tasks": [task.to_dict() for task in tasks],
            "accounts": [account.to_dict()
                         for account in self.accounts()],
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any],
                      n_shards: int = DEFAULT_SHARDS
                      ) -> "ShardedStore":
        """Rebuild from a checkpoint document written by *any* store
        implementation at *any* shard count."""
        store = cls(n_shards=n_shards)
        _fill_from_document(store, document)
        return store

    def restarted(self) -> "ShardedStore":
        """Crash-restart rebuild, preserving the shard count."""
        return type(self).from_document(self.to_document(),
                                        n_shards=self.n_shards)

    def save(self, path: Union[str, Path]) -> None:
        """Write the store to a JSON file (JsonStore-compatible),
        atomically — temp sibling, fsync, ``os.replace``."""
        from repro.durability.wal import atomic_write_text
        atomic_write_text(
            path,
            json.dumps(self.to_document(), indent=2, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path],
             n_shards: int = DEFAULT_SHARDS) -> "ShardedStore":
        """Read a store back from :meth:`save` (or
        :meth:`JsonStore.save`) output.

        Raises :class:`~repro.errors.StoreCorruptError` (non-retryable)
        on truncated or invalid JSON.
        """
        return ShardedStore.from_document(_load_document(path),
                                          n_shards=n_shards)
