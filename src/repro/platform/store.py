"""In-memory record store with JSON persistence.

The platform's storage layer: three tables (jobs, tasks, accounts) kept
in dictionaries, with full round-tripping to a JSON document so campaigns
can be checkpointed and resumed.  Deliberately simple — the substrate the
"Flask/Django service" band implies, without external dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import JobNotFound, PlatformError, TaskNotFound
from repro.platform.accounts import Account
from repro.platform.jobs import Job, TaskRecord


class JsonStore:
    """Jobs, tasks and accounts with JSON (de)serialization."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._tasks: Dict[str, TaskRecord] = {}
        self._accounts: Dict[str, Account] = {}

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def put_job(self, job: Job) -> None:
        self._jobs[job.job_id] = job

    def get_job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(f"no job {job_id!r}") from None

    def has_job(self, job_id: str) -> bool:
        return job_id in self._jobs

    def jobs(self) -> List[Job]:
        return [self._jobs[k] for k in sorted(self._jobs)]

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def put_task(self, task: TaskRecord) -> None:
        if task.job_id not in self._jobs:
            raise JobNotFound(
                f"task {task.task_id!r} references missing job "
                f"{task.job_id!r}")
        self._tasks[task.task_id] = task
        job = self._jobs[task.job_id]
        if task.task_id not in job.task_ids:
            job.task_ids.append(task.task_id)

    def get_task(self, task_id: str) -> TaskRecord:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskNotFound(f"no task {task_id!r}") from None

    def has_task(self, task_id: str) -> bool:
        return task_id in self._tasks

    def tasks_for(self, job_id: str) -> List[TaskRecord]:
        job = self.get_job(job_id)
        return [self._tasks[task_id] for task_id in job.task_ids
                if task_id in self._tasks]

    def task_count(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def put_account(self, account: Account) -> None:
        self._accounts[account.account_id] = account

    def get_account(self, account_id: str) -> Account:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise PlatformError(f"no account {account_id!r}") from None

    def has_account(self, account_id: str) -> bool:
        return account_id in self._accounts

    def accounts(self) -> List[Account]:
        return [self._accounts[k] for k in sorted(self._accounts)]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The whole store as one JSON-serializable document."""
        return {
            "jobs": [job.to_dict() for job in self.jobs()],
            "tasks": [self._tasks[k].to_dict()
                      for k in sorted(self._tasks)],
            "accounts": [account.to_dict()
                         for account in self.accounts()],
        }

    @staticmethod
    def from_document(document: Dict[str, Any]) -> "JsonStore":
        """Rebuild a store from :meth:`to_document` output."""
        store = JsonStore()
        for raw in document.get("jobs", []):
            job = Job.from_dict(raw)
            job.task_ids = []
            store.put_job(job)
        for raw in document.get("tasks", []):
            store.put_task(TaskRecord.from_dict(raw))
        for raw in document.get("accounts", []):
            store.put_account(Account.from_dict(raw))
        return store

    def save(self, path: Union[str, Path]) -> None:
        """Write the store to a JSON file."""
        Path(path).write_text(
            json.dumps(self.to_document(), indent=2, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path]) -> "JsonStore":
        """Read a store back from :meth:`save` output."""
        return JsonStore.from_document(
            json.loads(Path(path).read_text()))
