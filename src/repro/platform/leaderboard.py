"""Points leaderboard.

The overview lists leaderboards among the enjoyability mechanics (hourly,
daily and all-time boards in the ESP Game).  This one supports multiple
rolling windows over a timestamped score stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PlatformError


@dataclass(frozen=True)
class ScoreEntry:
    """One scoring event."""

    account_id: str
    points: int
    at_s: float


class Leaderboard:
    """Timestamped score stream with windowed rankings.

    Concurrency: the stream is **append-only** (one GIL-atomic list
    append per event, entries immutable), so readers need no lock —
    any read observes a consistent *prefix* of the scoring history.
    The service's ``GET /leaderboard`` route relies on this to run
    lock-free; writers are serialized by the platform's
    ``registry_lock`` as before.
    """

    def __init__(self) -> None:
        self._entries: List[ScoreEntry] = []

    def record(self, account_id: str, points: int, at_s: float) -> None:
        """Record a scoring event (points may be zero, not negative)."""
        if points < 0:
            raise PlatformError(
                f"points must be >= 0, got {points}")
        self._entries.append(ScoreEntry(account_id=account_id,
                                        points=points, at_s=at_s))

    def snapshot(self) -> List[ScoreEntry]:
        """A consistent prefix copy of the score stream, lock-free."""
        return self._entries[:]

    def __len__(self) -> int:
        return len(self._entries)

    def totals(self, since_s: float = float("-inf"),
               until_s: float = float("inf")) -> Dict[str, int]:
        """Per-account totals within a time window."""
        out: Dict[str, int] = {}
        for entry in self._entries:
            if since_s <= entry.at_s < until_s:
                out[entry.account_id] = (out.get(entry.account_id, 0)
                                         + entry.points)
        return out

    def top(self, k: int = 10, since_s: float = float("-inf"),
            until_s: float = float("inf")) -> List[Tuple[str, int]]:
        """Top ``k`` accounts in a window, points then id order."""
        totals = self.totals(since_s, until_s)
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def rank_of(self, account_id: str,
                since_s: float = float("-inf"),
                until_s: float = float("inf")) -> Optional[int]:
        """1-based rank of an account in a window (None if absent)."""
        ranked = self.top(k=len(self._entries) + 1, since_s=since_s,
                          until_s=until_s)
        for position, (candidate, _) in enumerate(ranked, start=1):
            if candidate == account_id:
                return position
        return None

    def hourly(self, now_s: float, k: int = 10) -> List[Tuple[str, int]]:
        """Last-hour board."""
        return self.top(k=k, since_s=now_s - 3600.0, until_s=now_s)

    def daily(self, now_s: float, k: int = 10) -> List[Tuple[str, int]]:
        """Last-24h board."""
        return self.top(k=k, since_s=now_s - 86400.0, until_s=now_s)

    def all_time(self, k: int = 10) -> List[Tuple[str, int]]:
        """All-time board."""
        return self.top(k=k)
