"""Task assignment policies.

Which pending task should a requesting worker get?  The classic choices:

- **breadth-first** — the least-answered task first, minimizing time to
  first coverage of the whole job (PyBossa's default).
- **depth-first** — the closest-to-complete task first, minimizing time
  to first *completed* tasks.
- **random** — uniform over eligible tasks (a baseline, and the fairest
  to adversarial workers trying to target specific items).

All policies exclude tasks the worker already answered and completed
tasks; gold tasks can be injected at a configured rate.

Concurrency: the scheduler keeps two kinds of internal state.

- The soft-lease table (``_reservations``) is guarded by a short
  internal lock so per-job stripes mutating leases for different jobs
  never corrupt it; worker disconnects sweep it under the same lock.
- The per-job completed-task index (``_done``) is a monotone,
  lock-free-read set: answers are never removed, so once a task is
  observed COMPLETED at a given redundancy it stays completed until
  the job's redundancy is raised (``invalidate_job``).  ``next_task``
  reads it without locking and skips completed tasks in O(1) instead
  of recomputing their state on every scan — the hot-path win the
  ``BENCH_service.json`` harness measures.  ``legacy_scan=True``
  restores the seed's full-rescan behavior for baseline benchmarking.

Lease serialization per job is the *caller's* job (the service layer
holds one stripe per job around ``next_task``/``clear_reservation``);
the internal lock only protects the table across jobs.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro import rng as _rng
from repro.errors import PlatformError, TaskNotFound
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.platform.jobs import Job, TaskRecord, TaskState


class AssignmentPolicy(enum.Enum):
    """Which pending task a requesting worker receives."""

    BREADTH_FIRST = "breadth_first"
    DEPTH_FIRST = "depth_first"
    RANDOM = "random"


class _JobIndex:
    """A per-job breadth-first assignment queue (fast path only).

    A lazy min-heap of ``(load, task_id)`` entries, where *load* is the
    task's distinct-answerer count plus its live lease count — exactly
    the key the legacy scan minimizes.  Entries go stale when loads
    move underneath them; a stale entry is refreshed at pop time
    against the live record, so the first *fresh* pop that passes the
    per-worker filters is identical to the legacy scan's ``min`` over
    the eligible set, at ~O(1) amortized instead of O(tasks) per
    assignment.

    Each index carries its own lock, a leaf in the platform hierarchy:
    nothing else is acquired while it is held except store shard locks
    (which are themselves internal to single store calls).
    """

    __slots__ = ("lock", "heap", "redundancy", "n_members",
                 "has_gold")

    def __init__(self, redundancy: int, n_members: int,
                 has_gold: bool,
                 entries: List[Tuple[int, str]]) -> None:
        self.lock = threading.Lock()
        self.redundancy = redundancy
        self.n_members = n_members
        self.has_gold = has_gold
        self.heap = entries
        heapq.heapify(self.heap)


class TaskScheduler:
    """Assigns pending tasks to workers under a policy.

    Args:
        store: the platform store (:class:`~repro.platform.store.JsonStore`
            or :class:`~repro.platform.store.ShardedStore`).
        policy: assignment policy.
        gold_rate: probability of serving an eligible gold task instead
            of a normal one (player testing).
        seed: RNG seed for RANDOM policy and gold injection.
        registry: metrics registry for the queue-depth gauge and
            assignment-latency histogram (the process default if
            omitted).
        faults: optional fault injector consulted at the
            ``scheduler.next_task`` site (None = no-op).
        legacy_scan: disable the completed-task index and rescan every
            task's state on every assignment, exactly as the seed did.
            Kept as the single-lock baseline for the perf regression
            harness; results are identical either way (the golden-trace
            suite proves it).
    """

    def __init__(self, store,
                 policy: AssignmentPolicy = AssignmentPolicy.BREADTH_FIRST,
                 gold_rate: float = 0.0,
                 seed: _rng.SeedLike = 0,
                 registry: Optional[MetricsRegistry] = None,
                 faults=None,
                 legacy_scan: bool = False) -> None:
        if not 0.0 <= gold_rate <= 1.0:
            raise PlatformError(
                f"gold_rate must be in [0,1], got {gold_rate}")
        self.store = store
        self.policy = policy
        self.gold_rate = gold_rate
        self.faults = faults
        self.legacy_scan = legacy_scan
        self._rng = _rng.make_rng(seed)
        self.registry = (registry if registry is not None
                         else default_registry())
        self._m_depth = self.registry.gauge(
            "scheduler.queue_depth",
            "eligible pending tasks seen at the last assignment, "
            "by job")
        self._m_latency = self.registry.histogram(
            "scheduler.assignment_latency_s",
            "time next_task spent choosing an assignment")
        self._m_assignments = self.registry.counter(
            "scheduler.assignments",
            "next_task outcomes, by served/empty")
        self._m_requeued = self.registry.counter(
            "scheduler.requeued_leases",
            "leases requeued from dead, crashed or expired sessions, "
            "by cause")
        self._m_heap_op = self.registry.histogram(
            "scheduler.heap_op_s",
            "assignment-queue operation latency, by op (pick/rebuild)")
        self._m_purge = self.registry.histogram(
            "scheduler.lease_purge_s",
            "time spent snapshotting and purging expired leases")
        # Soft leases: task -> {worker: lease expiry}.  A fetched task
        # counts toward redundancy until answered or until the lease
        # expires (abandoned workers must not stall the job forever).
        # The table spans jobs, so mutations take _res_lock; per-job
        # stripes above us serialize same-job mutations.
        self.lease_ttl_s = 300.0
        self._reservations: Dict[str, Dict[str, float]] = {}
        self._res_lock = threading.Lock()
        # Per-job completed-task index: job_id -> set of task ids
        # observed COMPLETED at _done_redundancy[job_id].  Reads are
        # lock-free (set membership under the GIL); writers only ever
        # add, and invalidate_job() swaps in a fresh set.
        self._done: Dict[str, Set[str]] = {}
        self._done_redundancy: Dict[str, int] = {}
        # Per-job breadth-first assignment queues (fast path).  The
        # map itself is guarded by _idx_lock (short get/set only);
        # each queue's internals by its own leaf lock.
        self._indices: Dict[str, _JobIndex] = {}
        self._idx_lock = threading.Lock()

    def _outstanding(self, task: TaskRecord,
                     excluding: Optional[str] = None) -> int:
        with self._res_lock:
            holders = dict(self._reservations.get(task.task_id, {}))
        now = time.monotonic()
        live = {worker for worker, expires in holders.items()
                if expires > now}
        return len(live - ({excluding} if excluding else set()))

    def _live_reservations(self) -> Dict[str, Set[str]]:
        """One consistent snapshot of live lease holders, task -> set
        of workers.  The fast path takes this once per assignment (one
        lock acquisition) instead of calling :meth:`_outstanding` per
        candidate task (a lock acquisition *and* a dict copy each);
        the answers are identical because the job's stripe serializes
        same-job lease churn for the duration of the assignment."""
        now = time.monotonic()
        with self._res_lock:
            return {task_id: {worker
                              for worker, expires in holders.items()
                              if expires > now}
                    for task_id, holders in
                    self._reservations.items()}

    def _snapshot_and_purge(self) -> Tuple[Dict[str, Set[str]],
                                           List[str]]:
        """Like :meth:`_live_reservations`, but expired leases are
        removed from the table while snapshotting.  Purging is
        semantically invisible (an expired lease never counted
        anywhere); it exists so lease expiry becomes an *event* the
        assignment queues can observe — the returned purged task ids
        get fresh heap entries pushed, keeping queue order exact.
        Expired leases are counted into ``scheduler.requeued_leases``
        (cause="expired") and the sweep itself is timed."""
        started = time.perf_counter()
        now = time.monotonic()
        purged: List[str] = []
        expired = 0
        snapshot: Dict[str, Set[str]] = {}
        with self._res_lock:
            for task_id in list(self._reservations):
                holders = self._reservations[task_id]
                live = {worker for worker, expires in holders.items()
                        if expires > now}
                if len(live) != len(holders):
                    purged.append(task_id)
                    expired += len(holders) - len(live)
                    if live:
                        self._reservations[task_id] = {
                            worker: holders[worker]
                            for worker in live}
                    else:
                        self._reservations.pop(task_id)
                if live:
                    snapshot[task_id] = live
        if expired:
            self._m_requeued.inc(expired, cause="expired")
        self._m_purge.observe(time.perf_counter() - started)
        return snapshot, purged

    @staticmethod
    def _snapshot_outstanding(snapshot: Dict[str, Set[str]],
                              task: TaskRecord,
                              excluding: Optional[str] = None) -> int:
        live = snapshot.get(task.task_id)
        if not live:
            return 0
        if excluding is not None and excluding in live:
            return len(live) - 1
        return len(live)

    def clear_reservation(self, task_id: str, worker_id: str) -> None:
        """Release a worker's lease (called when their answer lands)."""
        with self._res_lock:
            holders = self._reservations.get(task_id)
            if holders is not None:
                holders.pop(worker_id, None)
                if not holders:
                    self._reservations.pop(task_id, None)

    def release_worker(self, worker_id: str) -> int:
        """Requeue every lease ``worker_id`` holds (dead session).

        The graceful-degradation half of soft leases: instead of
        waiting ``lease_ttl_s`` for an abandoned task to become
        eligible again, a reported disconnect frees it immediately.
        Returns the number of leases released.
        """
        released = 0
        dropped: List[str] = []
        with self._res_lock:
            for task_id in list(self._reservations):
                holders = self._reservations[task_id]
                if worker_id in holders:
                    holders.pop(worker_id)
                    released += 1
                    dropped.append(task_id)
                    if not holders:
                        self._reservations.pop(task_id, None)
        for task_id in dropped:
            # Loads just decreased: re-key the assignment queues.
            self._push_fresh(task_id)
        if released:
            self._m_requeued.inc(released, cause="disconnect")
        return released

    def drop_all_reservations(self) -> int:
        """Forget every lease (a crash-restart lost them all).
        Returns the number dropped."""
        with self._res_lock:
            dropped = sum(len(holders)
                          for holders in self._reservations.values())
            self._reservations.clear()
        # A crash-restart also swapped the store's records out from
        # under the queues: rebuild everything lazily.
        with self._idx_lock:
            self._indices.clear()
        if dropped:
            self._m_requeued.inc(dropped, cause="crash")
        return dropped

    def invalidate_job(self, job_id: str) -> None:
        """Drop the completed-task index and assignment queue for a
        job.

        Called when the job's redundancy changes (adaptive-redundancy
        extensions reopen previously completed tasks); both are
        rebuilt lazily on the next assignment."""
        self._done.pop(job_id, None)
        self._done_redundancy.pop(job_id, None)
        with self._idx_lock:
            self._indices.pop(job_id, None)

    def _push_fresh(self, task_id: str) -> None:
        """Re-key a task in its job's assignment queue after its load
        *decreased* (lease released or expired).  Stale-low entries
        self-correct at pop time, but a stale-high entry would pop too
        late and break the breadth-first order — so every decrease
        pushes a fresh entry here."""
        try:
            task = self.store.get_task(task_id)
        except TaskNotFound:
            return
        with self._idx_lock:
            index = self._indices.get(task.job_id)
        if index is None:
            return
        load = len(task.workers()) + self._outstanding(task)
        with index.lock:
            heapq.heappush(index.heap, (load, task_id))

    def _index_for(self, job: Job,
                   snapshot: Dict[str, Set[str]]
                   ) -> Optional[_JobIndex]:
        """The job's assignment queue, (re)built when stale; None when
        the job holds gold tasks (gold eligibility gates an RNG draw,
        so those jobs keep the scan path for draw-sequence parity)."""
        job_id = job.job_id
        with self._idx_lock:
            index = self._indices.get(job_id)
        if (index is not None
                and index.redundancy == job.redundancy
                and index.n_members == len(job.task_ids)):
            return None if index.has_gold else index
        started = time.perf_counter()
        tasks = self.store.tasks_for(job_id)
        entries = []
        has_gold = False
        done = self._done_set(job)
        for task in tasks:
            if task.is_gold:
                has_gold = True
            if task.state(job.redundancy) is TaskState.COMPLETED:
                done.add(task.task_id)
                continue
            entries.append((len(task.workers())
                            + len(snapshot.get(task.task_id, ())),
                            task.task_id))
        index = _JobIndex(job.redundancy, len(job.task_ids),
                          has_gold, entries)
        with self._idx_lock:
            self._indices[job_id] = index
        self._m_heap_op.observe(time.perf_counter() - started,
                                op="rebuild")
        return None if has_gold else index

    def _indexed_pick(self, index: _JobIndex, job: Job,
                      worker_id: str,
                      snapshot: Dict[str, Set[str]]
                      ) -> Optional[TaskRecord]:
        """Pop the queue until the first fresh, eligible task — the
        same task the legacy scan's ``min`` would return."""
        started = time.perf_counter()
        redundancy = job.redundancy
        done = self._done_set(job)
        parked: List[Tuple[int, str]] = []
        chosen: Optional[TaskRecord] = None
        with index.lock:
            heap = index.heap
            while heap:
                load, task_id = heapq.heappop(heap)
                try:
                    task = self.store.get_task(task_id)
                except TaskNotFound:
                    continue
                live = snapshot.get(task_id, ())
                answered = len(task.workers())
                current = answered + len(live)
                if current != load:
                    heapq.heappush(heap, (current, task_id))
                    continue
                if answered >= redundancy:
                    # Completed: permanently out of the queue (a
                    # redundancy raise rebuilds the whole index).
                    done.add(task_id)
                    continue
                if task.answered_by(worker_id):
                    parked.append((load, task_id))
                    continue
                outstanding = len(live) - (1 if worker_id in live
                                           else 0)
                if answered + outstanding >= redundancy:
                    parked.append((load, task_id))
                    continue
                chosen = task
                # Account for the lease the caller is about to take.
                heapq.heappush(heap, (current + 1, task_id))
                break
            for entry in parked:
                heapq.heappush(heap, entry)
        self._m_heap_op.observe(time.perf_counter() - started,
                                op="pick")
        return chosen

    def _done_set(self, job: Job) -> Set[str]:
        """The job's completed-task index, reset on redundancy change."""
        job_id = job.job_id
        if self._done_redundancy.get(job_id) != job.redundancy:
            self._done[job_id] = set()
            self._done_redundancy[job_id] = job.redundancy
        return self._done[job_id]

    def eligible_tasks(self, job: Job, worker_id: str,
                       include_gold: bool = True,
                       respect_reservations: bool = True
                       ) -> List[TaskRecord]:
        """Pending tasks this worker may still answer.

        Fast path (``legacy_scan=False``): ids already in the job's
        completed index are dropped *before* any record is fetched
        (the store never even resolves them), the survivors are
        resolved in one shard-grouped batch, and live leases come from
        a single snapshot.  The legacy path re-fetches and re-derives
        everything per call, exactly as the seed did; both paths
        produce the same list in the same order (creation order), so
        downstream RNG draws are identical — the golden-trace suite
        holds each to the other.
        """
        done = None if self.legacy_scan else self._done_set(job)
        if done is None:
            candidates = self.store.tasks_for(job.job_id)
            res = None
        else:
            pending_ids = [task_id for task_id in list(job.task_ids)
                           if task_id not in done]
            candidates = self.store.get_tasks(pending_ids)
            res = (self._live_reservations()
                   if respect_reservations else None)
        out = []
        for task in candidates:
            if task.state(job.redundancy) is TaskState.COMPLETED:
                if done is not None:
                    done.add(task.task_id)
                continue
            if task.answered_by(worker_id):
                continue
            if task.is_gold and not include_gold:
                continue
            if respect_reservations and not task.is_gold:
                outstanding = (
                    self._snapshot_outstanding(res, task,
                                               excluding=worker_id)
                    if res is not None
                    else self._outstanding(task, excluding=worker_id))
                if len(task.workers()) + outstanding >= job.redundancy:
                    continue
            out.append(task)
        return out

    def next_task(self, job_id: str,
                  worker_id: str) -> Optional[TaskRecord]:
        """The next task for this worker, or None when none are left.

        Handing a task out leases it to the worker for
        ``lease_ttl_s``; the lease is released when the answer arrives
        or expires if the worker abandons the task, so stragglers never
        stall the job permanently.
        """
        started = time.perf_counter()
        if self.faults is not None:
            self.faults.sleep_latency("scheduler.next_task")
        job = self.store.get_job(job_id)
        task: Optional[TaskRecord] = None
        indexed = False
        if (not self.legacy_scan
                and self.policy is AssignmentPolicy.BREADTH_FIRST):
            snapshot, purged = self._snapshot_and_purge()
            for task_id in purged:
                self._push_fresh(task_id)
            index = self._index_for(job, snapshot)
            if index is not None:
                indexed = True
                task = self._indexed_pick(index, job, worker_id,
                                          snapshot)
                # Queue length stands in for the legacy eligible
                # count: pending entries, not filtered per worker.
                self._m_depth.set(len(index.heap), job=job_id)
        if not indexed:
            eligible = self.eligible_tasks(job, worker_id)
            self._m_depth.set(len(eligible), job=job_id)
            if eligible:
                task = self._pick(eligible,
                                  res=None if self.legacy_scan
                                  else self._live_reservations())
        if task is None:
            self._m_latency.observe(time.perf_counter() - started)
            self._m_assignments.inc(outcome="empty")
            return None
        with self._res_lock:
            self._reservations.setdefault(
                task.task_id, {})[worker_id] = (
                    time.monotonic() + self.lease_ttl_s)
        self._m_latency.observe(time.perf_counter() - started)
        self._m_assignments.inc(outcome="served")
        return task

    def _pick(self, eligible: List[TaskRecord],
              res: Optional[Dict[str, Set[str]]] = None) -> TaskRecord:
        golds = [t for t in eligible if t.is_gold]
        if golds and self._rng.random() < self.gold_rate:
            return golds[self._rng.randrange(len(golds))]
        normal = [t for t in eligible if not t.is_gold] or eligible
        if self.policy is AssignmentPolicy.RANDOM:
            return normal[self._rng.randrange(len(normal))]
        if self.policy is AssignmentPolicy.BREADTH_FIRST:
            def load(t: TaskRecord) -> int:
                return (self._snapshot_outstanding(res, t)
                        if res is not None else self._outstanding(t))
            return min(normal,
                       key=lambda t: (len(t.workers()) + load(t),
                                      t.task_id))
        if self.policy is AssignmentPolicy.DEPTH_FIRST:
            return max(normal,
                       key=lambda t: (len(t.workers()), ),
                       default=None) or normal[0]
        raise PlatformError(f"unknown policy: {self.policy!r}")

    def progress(self, job_id: str) -> dict:
        """Completion statistics for a job."""
        job = self.store.get_job(job_id)
        tasks = self.store.tasks_for(job_id)
        completed = sum(1 for t in tasks
                        if t.state(job.redundancy)
                        is TaskState.COMPLETED)
        answers = sum(len(t.answers) for t in tasks)
        return {"tasks": len(tasks), "completed": completed,
                "answers": answers,
                "complete_frac": completed / len(tasks) if tasks else 1.0}
