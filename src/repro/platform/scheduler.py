"""Task assignment policies.

Which pending task should a requesting worker get?  The classic choices:

- **breadth-first** — the least-answered task first, minimizing time to
  first coverage of the whole job (PyBossa's default).
- **depth-first** — the closest-to-complete task first, minimizing time
  to first *completed* tasks.
- **random** — uniform over eligible tasks (a baseline, and the fairest
  to adversarial workers trying to target specific items).

All policies exclude tasks the worker already answered and completed
tasks; gold tasks can be injected at a configured rate.
"""

from __future__ import annotations

import enum
import time
from typing import Dict, List, Optional, Tuple

from repro import rng as _rng
from repro.errors import PlatformError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.platform.jobs import Job, TaskRecord, TaskState
from repro.platform.store import JsonStore


class AssignmentPolicy(enum.Enum):
    """Which pending task a requesting worker receives."""

    BREADTH_FIRST = "breadth_first"
    DEPTH_FIRST = "depth_first"
    RANDOM = "random"


class TaskScheduler:
    """Assigns pending tasks to workers under a policy.

    Args:
        store: the platform store.
        policy: assignment policy.
        gold_rate: probability of serving an eligible gold task instead
            of a normal one (player testing).
        seed: RNG seed for RANDOM policy and gold injection.
        registry: metrics registry for the queue-depth gauge and
            assignment-latency histogram (the process default if
            omitted).
        faults: optional fault injector consulted at the
            ``scheduler.next_task`` site (None = no-op).
    """

    def __init__(self, store: JsonStore,
                 policy: AssignmentPolicy = AssignmentPolicy.BREADTH_FIRST,
                 gold_rate: float = 0.0,
                 seed: _rng.SeedLike = 0,
                 registry: Optional[MetricsRegistry] = None,
                 faults=None) -> None:
        if not 0.0 <= gold_rate <= 1.0:
            raise PlatformError(
                f"gold_rate must be in [0,1], got {gold_rate}")
        self.store = store
        self.policy = policy
        self.gold_rate = gold_rate
        self.faults = faults
        self._rng = _rng.make_rng(seed)
        self.registry = (registry if registry is not None
                         else default_registry())
        self._m_depth = self.registry.gauge(
            "scheduler.queue_depth",
            "eligible pending tasks seen at the last assignment, "
            "by job")
        self._m_latency = self.registry.histogram(
            "scheduler.assignment_latency_s",
            "time next_task spent choosing an assignment")
        self._m_assignments = self.registry.counter(
            "scheduler.assignments",
            "next_task outcomes, by served/empty")
        self._m_requeued = self.registry.counter(
            "scheduler.requeued_leases",
            "leases requeued from dead or crashed sessions, by cause")
        # Soft leases: task -> {worker: lease expiry}.  A fetched task
        # counts toward redundancy until answered or until the lease
        # expires (abandoned workers must not stall the job forever).
        self.lease_ttl_s = 300.0
        self._reservations: Dict[str, Dict[str, float]] = {}

    def _outstanding(self, task: TaskRecord,
                     excluding: Optional[str] = None) -> int:
        holders = self._reservations.get(task.task_id, {})
        now = time.monotonic()
        live = {worker for worker, expires in holders.items()
                if expires > now}
        return len(live - ({excluding} if excluding else set()))

    def clear_reservation(self, task_id: str, worker_id: str) -> None:
        """Release a worker's lease (called when their answer lands)."""
        holders = self._reservations.get(task_id)
        if holders is not None:
            holders.pop(worker_id, None)
            if not holders:
                self._reservations.pop(task_id, None)

    def release_worker(self, worker_id: str) -> int:
        """Requeue every lease ``worker_id`` holds (dead session).

        The graceful-degradation half of soft leases: instead of
        waiting ``lease_ttl_s`` for an abandoned task to become
        eligible again, a reported disconnect frees it immediately.
        Returns the number of leases released.
        """
        released = 0
        for task_id in list(self._reservations):
            holders = self._reservations[task_id]
            if worker_id in holders:
                holders.pop(worker_id)
                released += 1
                if not holders:
                    self._reservations.pop(task_id, None)
        if released:
            self._m_requeued.inc(released, cause="disconnect")
        return released

    def drop_all_reservations(self) -> int:
        """Forget every lease (a crash-restart lost them all).
        Returns the number dropped."""
        dropped = sum(len(holders)
                      for holders in self._reservations.values())
        self._reservations.clear()
        if dropped:
            self._m_requeued.inc(dropped, cause="crash")
        return dropped

    def eligible_tasks(self, job: Job, worker_id: str,
                       include_gold: bool = True,
                       respect_reservations: bool = True
                       ) -> List[TaskRecord]:
        """Pending tasks this worker may still answer."""
        out = []
        for task in self.store.tasks_for(job.job_id):
            if task.state(job.redundancy) is TaskState.COMPLETED:
                continue
            if task.answered_by(worker_id):
                continue
            if task.is_gold and not include_gold:
                continue
            if respect_reservations and not task.is_gold:
                committed = (len(task.workers())
                             + self._outstanding(task,
                                                 excluding=worker_id))
                if committed >= job.redundancy:
                    continue
            out.append(task)
        return out

    def next_task(self, job_id: str,
                  worker_id: str) -> Optional[TaskRecord]:
        """The next task for this worker, or None when none are left.

        Handing a task out leases it to the worker for
        ``lease_ttl_s``; the lease is released when the answer arrives
        or expires if the worker abandons the task, so stragglers never
        stall the job permanently.
        """
        started = time.perf_counter()
        if self.faults is not None:
            self.faults.sleep_latency("scheduler.next_task")
        job = self.store.get_job(job_id)
        eligible = self.eligible_tasks(job, worker_id)
        self._m_depth.set(len(eligible), job=job_id)
        if not eligible:
            self._m_latency.observe(time.perf_counter() - started)
            self._m_assignments.inc(outcome="empty")
            return None
        task = self._pick(eligible)
        self._reservations.setdefault(task.task_id, {})[worker_id] = (
            time.monotonic() + self.lease_ttl_s)
        self._m_latency.observe(time.perf_counter() - started)
        self._m_assignments.inc(outcome="served")
        return task

    def _pick(self, eligible: List[TaskRecord]) -> TaskRecord:
        golds = [t for t in eligible if t.is_gold]
        if golds and self._rng.random() < self.gold_rate:
            return golds[self._rng.randrange(len(golds))]
        normal = [t for t in eligible if not t.is_gold] or eligible
        if self.policy is AssignmentPolicy.RANDOM:
            return normal[self._rng.randrange(len(normal))]
        if self.policy is AssignmentPolicy.BREADTH_FIRST:
            return min(normal,
                       key=lambda t: (len(t.workers())
                                      + self._outstanding(t),
                                      t.task_id))
        if self.policy is AssignmentPolicy.DEPTH_FIRST:
            return max(normal,
                       key=lambda t: (len(t.workers()), ),
                       default=None) or normal[0]
        raise PlatformError(f"unknown policy: {self.policy!r}")

    def progress(self, job_id: str) -> dict:
        """Completion statistics for a job."""
        job = self.store.get_job(job_id)
        tasks = self.store.tasks_for(job_id)
        completed = sum(1 for t in tasks
                        if t.state(job.redundancy)
                        is TaskState.COMPLETED)
        answers = sum(len(t.answers) for t in tasks)
        return {"tasks": len(tasks), "completed": completed,
                "answers": answers,
                "complete_frac": completed / len(tasks) if tasks else 1.0}
