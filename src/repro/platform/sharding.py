"""Deterministic sharding primitives: key hashing and lock stripes.

The platform's concurrency story is built on two small pieces:

- :func:`shard_of` — a process-stable key → shard hash.  Python's
  builtin ``hash()`` is randomized per process (``PYTHONHASHSEED``), so
  the shard map is derived from BLAKE2b instead: the same key lands on
  the same shard in every process, forever.  That stability is what lets
  a checkpoint written by an 8-shard store be reloaded into a 3-shard
  store (or vice versa) without moving a single record's identity.
- :class:`LockStripes` — a fixed array of re-entrant locks addressed by
  the same hash.  Two operations on the same key always contend on the
  same stripe; operations on different keys almost never do.

Lock-ordering rules (see ``docs/architecture.md`` for the full
hierarchy): when several stripes must be held at once, they are always
acquired in ascending stripe-index order, which makes stripe deadlock
impossible by construction.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterable, Iterator, List

from repro.errors import PlatformError

#: Default shard count for stores and lock stripes.  A small power of
#: two: enough to make cross-job contention rare, few enough that
#: whole-store scans (list jobs, persistence) stay cheap.
DEFAULT_SHARDS = 8


@lru_cache(maxsize=1 << 16)
def _key_digest(key: str) -> int:
    # The digest is a pure function of the key alone (the modulus is
    # applied by the caller), so one cache serves every shard count.
    # lru_cache is thread-safe, and the hot path re-hashes the same few
    # thousand job/task ids constantly.
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(),
        "big")


def shard_of(key: str, n_shards: int) -> int:
    """Deterministic shard index for ``key`` in ``[0, n_shards)``.

    Stable across processes and Python versions: the index is the
    BLAKE2b-64 digest of the UTF-8 key, reduced modulo ``n_shards``.
    Uniformity is inherited from the hash — over realistic id
    populations every shard receives its fair share (see the property
    tests in ``tests/test_platform_sharding.py``).
    """
    if n_shards < 1:
        raise PlatformError(
            f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return 0
    return _key_digest(key) % n_shards


class LockStripes:
    """A fixed array of re-entrant locks addressed by key hash.

    The striped replacement for one global mutex: operations keyed by
    the same id (a job and all its tasks) serialize on one stripe,
    while unrelated keys proceed on other stripes in parallel.

    Args:
        n_stripes: number of stripes.  More stripes = less false
            contention, at the cost of a longer acquire-all sweep.
    """

    def __init__(self, n_stripes: int = 16) -> None:
        if n_stripes < 1:
            raise PlatformError(
                f"n_stripes must be >= 1, got {n_stripes}")
        self._stripes: List[threading.RLock] = [
            threading.RLock() for _ in range(n_stripes)]

    def __len__(self) -> int:
        return len(self._stripes)

    def index_of(self, key: str) -> int:
        """The stripe index ``key`` hashes to."""
        return shard_of(key, len(self._stripes))

    def for_key(self, key: str) -> threading.RLock:
        """The stripe lock guarding ``key``."""
        return self._stripes[self.index_of(key)]

    def for_index(self, index: int) -> threading.RLock:
        return self._stripes[index]

    @contextmanager
    def holding(self, keys: Iterable[str]) -> Iterator[None]:
        """Hold every stripe the given keys hash to.

        Stripes are de-duplicated and acquired in ascending index
        order — the lock-ordering rule that makes multi-stripe
        operations deadlock-free.
        """
        indices = sorted({self.index_of(key) for key in keys})
        held: List[threading.RLock] = []
        try:
            for index in indices:
                lock = self._stripes[index]
                lock.acquire()
                held.append(lock)
            yield
        finally:
            for lock in reversed(held):
                lock.release()

    @contextmanager
    def holding_all(self) -> Iterator[None]:
        """Hold every stripe (whole-platform operations: checkpoint,
        crash-restart).  Acquired in index order, like :meth:`holding`."""
        held: List[threading.RLock] = []
        try:
            for lock in self._stripes:
                lock.acquire()
                held.append(lock)
            yield
        finally:
            for lock in reversed(held):
                lock.release()
