"""The high-level platform API.

:class:`Platform` ties the store, scheduler, accounts, reputation and
leaderboard together behind the handful of verbs a crowdsourcing service
needs: create a job, add tasks, hand a worker their next task, accept an
answer, and report results.  The service layer exposes exactly these
verbs over HTTP; examples and the simulator call them directly.
"""

from __future__ import annotations

import itertools
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import rng as _rng
from repro.aggregation.majority import MajorityVote, VoteResult
from repro.durability.log import DEFAULT_CHECKPOINT_EVERY, DurabilityLog
from repro.durability.wal import WalRecord
from repro.errors import (AggregationError, JobNotFound, PlatformError,
                          StoreCorruptError, TaskNotFound)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.platform.accounts import Account, AccountRegistry
from repro.platform.jobs import (Job, JobStatus, TaskRecord, TaskState)
from repro.platform.leaderboard import Leaderboard
from repro.platform.scheduler import AssignmentPolicy, TaskScheduler
from repro.platform.sharding import DEFAULT_SHARDS, shard_of
from repro.platform.store import JsonStore, ShardedStore
from repro.quality.reputation import ReputationTracker
from repro.quality.spam import SpamDetector

_JOB_ID_RE = re.compile(r"^job-(\d+)$")
_TASK_ID_RE = re.compile(r"^task-(\d+)$")


class Platform:
    """A complete in-process crowdsourcing platform.

    Args:
        policy: task assignment policy.
        gold_rate: gold-injection rate for player testing.
        points_per_answer: flat points credited per accepted answer.
        spam_detection: feed every answer into a
            :class:`~repro.quality.spam.SpamDetector` and let
            :meth:`results` silence flagged workers.
        seed: RNG seed for scheduling decisions.
        registry: metrics registry the platform counters land in (the
            process default if omitted).
        tracer: span tracer for the worker-loop verbs (the process
            default if omitted).
        faults: optional :class:`repro.faults.FaultInjector`; when set,
            the worker-loop verbs consult it (store crash-restarts,
            latency) and the service layer inherits it.  None (the
            default) costs nothing.
        store: storage backend.  Defaults to a
            :class:`~repro.platform.store.ShardedStore` with
            ``store_shards`` shards; pass a
            :class:`~repro.platform.store.JsonStore` to reproduce the
            seed's flat single-dict substrate (the perf baseline).
        store_shards: shard count for the default store.
        durability: optional
            :class:`~repro.durability.log.DurabilityLog`.  When set,
            every mutating verb appends a WAL record *before*
            acknowledging, checkpoints rotate automatically at the
            log's record threshold, and
            :meth:`crash_restart_store` performs a real
            recover-from-disk instead of an in-memory rebuild.  None
            (the default) costs nothing.  Prefer :meth:`recover` to
            open an existing data directory.
        fast_path: use the O(1) per-answer job-completion counter
            instead of rescanning every task on every answer.  The
            results are identical (the golden-trace suite proves it);
            ``False`` restores the seed's scan for baseline
            benchmarking.
        live: optional :class:`~repro.obs.live.LiveAnalytics` engine;
            when set, task additions, completions and gold grades are
            streamed into it (keyed by job name), so ``/dashboard``
            shows service-driven jobs next to simulated campaigns.
            The service layer attaches its engine here automatically.
            None (the default) costs nothing.
        shard_range: ``(node_index, n_nodes)`` when this platform is
            one node of a consistent-hash cluster.  Every job and
            task id it generates is filtered to hash (via
            :func:`~repro.platform.sharding.shard_of`) to
            ``node_index`` — so id-keyed routing is a pure function
            of the id, and the id spaces of sibling nodes are
            disjoint by construction (each candidate id hashes to
            exactly one node).  None (the default) generates the
            dense id sequence, exactly as before.

    Concurrency contract: the platform's verbs are not internally
    serialized per job — the service layer holds one lock stripe per
    job around each verb (see ``docs/architecture.md``).  Cross-job
    shared state (accounts, leaderboard, reputation, spam, the
    idempotency table) is guarded here by ``registry_lock``, which is
    always acquired *after* a job stripe and *before* any scheduler or
    store lock, never the other way around.
    """

    def __init__(self,
                 policy: AssignmentPolicy = AssignmentPolicy.BREADTH_FIRST,
                 gold_rate: float = 0.1, points_per_answer: int = 10,
                 spam_detection: bool = True,
                 seed: _rng.SeedLike = 0,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 faults=None,
                 store=None,
                 store_shards: int = DEFAULT_SHARDS,
                 durability: Optional[DurabilityLog] = None,
                 fast_path: bool = True,
                 live=None,
                 shard_range: Optional[Tuple[int, int]] = None) -> None:
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self.faults = faults
        self.live = live
        self.durability = durability
        if durability is not None and durability.faults is None:
            durability.faults = faults
        # The WAL inherits the platform's tracer (unless it was built
        # with its own), so append/fsync spans nest under the platform
        # verb that caused them.
        if durability is not None and durability.tracer is None:
            durability.tracer = self.tracer
        self.store = (store if store is not None
                      else ShardedStore(n_shards=store_shards))
        self.fast_path = fast_path
        # Guards cross-job shared state; see the class docstring for
        # the lock-ordering rule.  Re-entrant so registry-scoped
        # service handlers can call verbs that re-acquire it.
        self.registry_lock = threading.RLock()
        self.accounts = AccountRegistry()
        self.scheduler = TaskScheduler(self.store, policy=policy,
                                       gold_rate=gold_rate, seed=seed,
                                       registry=self.registry,
                                       faults=faults,
                                       legacy_scan=not fast_path)
        self.reputation = ReputationTracker()
        self.spam = SpamDetector() if spam_detection else None
        self.leaderboard = Leaderboard()
        self.points_per_answer = points_per_answer
        if shard_range is not None:
            index, n_nodes = shard_range
            if not 0 <= index < n_nodes:
                raise PlatformError(
                    f"shard_range index {index} outside "
                    f"[0, {n_nodes})")
        self.shard_range = shard_range
        self._job_counter = itertools.count()
        self._task_counter = itertools.count()
        # At-least-once delivery defense: idempotency key -> task_id of
        # the submission it already applied.  Kept outside the store on
        # purpose — it models the dedupe table a production deployment
        # would keep in its request log.  Guarded by registry_lock.
        self._idempotency: Dict[str, str] = {}
        # Fast-path completion tracking: job_id -> (count of COMPLETED
        # tasks, the redundancy that count was taken at).  Lets
        # _maybe_complete run in O(1) per answer instead of rescanning
        # the job; invalidated whenever redundancy changes.
        self._completed_counts: Dict[str, Tuple[int, int]] = {}
        self._m_jobs = self.registry.counter(
            "platform.jobs", "job lifecycle transitions, by event")
        self._m_tasks_added = self.registry.counter(
            "platform.tasks_added", "tasks added to jobs")
        self._m_tasks_served = self.registry.counter(
            "platform.tasks_served", "tasks handed to workers")
        self._m_answers = self.registry.counter(
            "platform.answers", "answers accepted, by gold/plain")
        self._m_extensions = self.registry.counter(
            "platform.redundancy_extensions",
            "adaptive-redundancy extensions applied")
        self._m_deduped = self.registry.counter(
            "platform.answers_deduped",
            "duplicate answer deliveries absorbed, by reason")
        self._m_restarts = self.registry.counter(
            "platform.store_restarts",
            "store crash-restarts survived")

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _log(self, op: str, **data: Any) -> None:
        """Durably append one WAL record before the verb acknowledges.

        Called *outside* ``registry_lock`` (the log's lock is a leaf in
        the platform hierarchy).  A no-op without a durability log.
        Rotates a checkpoint when the log's record threshold is hit.
        """
        log = self.durability
        if log is None:
            return
        log.append(op, data)
        if log.should_checkpoint():
            self.checkpoint()

    # ------------------------------------------------------------------
    # Id generation
    # ------------------------------------------------------------------

    def _next_id(self, counter: "itertools.count",
                 template: str) -> str:
        """The next id from ``counter``, filtered to this node's shard
        range when clustered.

        Skipped candidates belong to sibling nodes (they hash
        elsewhere), so the union of all nodes' id streams is exactly
        the dense sequence and no two nodes can ever mint the same
        id.  Expected skips per id: ``n_nodes - 1``.
        """
        while True:
            candidate = template % next(counter)
            if self.shard_range is None:
                return candidate
            index, n_nodes = self.shard_range
            if shard_of(candidate, n_nodes) == index:
                return candidate

    def _next_job_id(self) -> str:
        return self._next_id(self._job_counter, "job-%04d")

    def _next_task_id(self) -> str:
        return self._next_id(self._task_counter, "task-%06d")

    # ------------------------------------------------------------------
    # Job management
    # ------------------------------------------------------------------

    def create_job(self, name: str, redundancy: int = 3,
                   **meta: Any) -> Job:
        """Create a job in DRAFT state."""
        job = Job(job_id=self._next_job_id(), name=name,
                  redundancy=redundancy, meta=dict(meta))
        with self.store.mutating(job.job_id):
            self.store.put_job(job)
            self._log("create_job", job_id=job.job_id, name=name,
                      redundancy=redundancy, meta=dict(meta))
        self._m_jobs.inc(event="created")
        return job

    def add_task(self, job_id: str, payload: Dict[str, Any],
                 gold_answer: Optional[Any] = None) -> TaskRecord:
        """Add one task to a job (gold if ``gold_answer`` is given)."""
        job = self.store.get_job(job_id)
        if job.status is JobStatus.ARCHIVED:
            raise PlatformError(
                f"job {job_id!r} is archived; cannot add tasks")
        task = TaskRecord(
            task_id=self._next_task_id(),
            job_id=job_id, payload=dict(payload),
            gold_answer=gold_answer)
        with self.store.mutating(job_id):
            self.store.put_task(task)
            self._log("add_task", task_id=task.task_id, job_id=job_id,
                      payload=dict(payload), gold_answer=gold_answer)
        self._m_tasks_added.inc(gold=str(gold_answer is not None
                                         ).lower())
        if self.live is not None and gold_answer is None:
            # Gold tasks are instruments, not outputs: they never
            # count toward the coverage denominator.
            self.live.record_task_added(0.0, job.name)
        return task

    def add_tasks(self, job_id: str,
                  payloads: Sequence[Dict[str, Any]]) -> List[TaskRecord]:
        """Bulk-add plain tasks."""
        return [self.add_task(job_id, payload) for payload in payloads]

    def start_job(self, job_id: str) -> Job:
        """Move a job to RUNNING (requires at least one task)."""
        job = self.store.get_job(job_id)
        if job.status is JobStatus.ARCHIVED:
            raise PlatformError(f"job {job_id!r} is archived")
        if not job.task_ids:
            raise PlatformError(f"job {job_id!r} has no tasks")
        with self.store.mutating(job_id):
            job.status = JobStatus.RUNNING
            self._log("start_job", job_id=job_id)
        self._m_jobs.inc(event="started")
        return job

    def archive_job(self, job_id: str) -> Job:
        """Archive a job: no more tasks, answers, or restarts."""
        job = self.store.get_job(job_id)
        with self.store.mutating(job_id):
            job.status = JobStatus.ARCHIVED
            self._log("archive_job", job_id=job_id)
        self._m_jobs.inc(event="archived")
        return job

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------

    def register_worker(self, account_id: str,
                        display_name: Optional[str] = None,
                        **attributes: Any) -> Account:
        """Register a worker account."""
        with self.registry_lock:
            account = self.accounts.register(account_id, display_name,
                                             **attributes)
            self.store.put_account(account)
        self._log("register", account_id=account_id,
                  display_name=display_name,
                  attributes=dict(attributes))
        return account

    def request_task(self, job_id: str,
                     worker_id: str) -> Optional[TaskRecord]:
        """The worker's next task, or None when the job has nothing
        left for them."""
        with self.tracer.span("platform.request_task", job=job_id):
            if (self.faults is not None and
                    self.faults.crashes_store("platform.request_task")):
                self.crash_restart_store()
            job = self.store.get_job(job_id)
            if job.status is JobStatus.COMPLETED:
                return None
            if job.status is not JobStatus.RUNNING:
                raise PlatformError(
                    f"job {job_id!r} is not running (status: "
                    f"{job.status.value})")
            # Double-checked: dict membership is GIL-atomic, so known
            # workers (every request after the first) skip the
            # cross-job registry lock entirely on this hot path.
            if worker_id not in self.accounts:
                with self.registry_lock:
                    self.accounts.ensure(worker_id)
            task = self.scheduler.next_task(job_id, worker_id)
            if task is not None:
                self._log("assign", job_id=job_id,
                          task_id=task.task_id, worker_id=worker_id)
                self._m_tasks_served.inc()
            return task

    def submit_answer(self, task_id: str, worker_id: str, answer: Any,
                      at_s: float = 0.0,
                      idempotency_key: Optional[str] = None
                      ) -> TaskRecord:
        """Accept an answer, credit points, grade gold, update state.

        Answers are accepted while the job is RUNNING or COMPLETED —
        a worker may have fetched the task moments before another
        worker's answer completed the job, and their work still counts.

        At-least-once delivery is absorbed here: a redelivery under an
        already-applied ``idempotency_key``, or a replay of the exact
        answer a worker already gave, returns the task untouched — no
        second answer row, no double points, no double spam/reputation
        signal.  Only a *conflicting* re-answer (same worker, different
        answer, no key) is rejected.
        """
        with self.tracer.span("platform.submit_answer", task=task_id):
            if (self.faults is not None and
                    self.faults.crashes_store("platform.submit_answer")):
                self.crash_restart_store()
            if idempotency_key is not None:
                with self.registry_lock:
                    applied = self._idempotency.get(idempotency_key)
                if applied is not None:
                    self._m_deduped.inc(reason="key")
                    return self.store.get_task(applied)
            task = self.store.get_task(task_id)
            job = self.store.get_job(task.job_id)
            if job.status not in (JobStatus.RUNNING,
                                  JobStatus.COMPLETED):
                raise PlatformError(
                    f"job {job.job_id!r} is not accepting answers "
                    f"(status: {job.status.value})")
            if task.answered_by(worker_id):
                if any(r.worker_id == worker_id and r.answer == answer
                       for r in task.answers):
                    self._m_deduped.inc(reason="replay")
                    if idempotency_key is not None:
                        with self.registry_lock:
                            self._idempotency[idempotency_key] = task_id
                        self._log("dedupe", key=idempotency_key,
                                  task_id=task_id)
                    return task
                raise PlatformError(
                    f"worker {worker_id!r} already answered task "
                    f"{task_id!r} differently")
            was_complete = (task.state(job.redundancy)
                            is TaskState.COMPLETED)
            # The seqlock window spans every job-visible mutation of
            # this verb — the answer row, and the possible COMPLETED
            # transition in _maybe_complete — so a snapshot reader
            # either sees none of the verb or all of it.
            with self.store.mutating(job.job_id):
                task.add_answer(worker_id, answer, at_s=at_s)
                self.scheduler.clear_reservation(task_id, worker_id)
                gold_correct: Optional[bool] = None
                with self.registry_lock:
                    if idempotency_key is not None:
                        self._idempotency[idempotency_key] = task_id
                    account = self.accounts.ensure(worker_id)
                    account.add_points(self.points_per_answer)
                    self.leaderboard.record(worker_id,
                                            self.points_per_answer,
                                            at_s)
                    if task.is_gold:
                        gold_correct = answer == task.gold_answer
                        self.reputation.record_gold(worker_id,
                                                    gold_correct)
                        if self.spam is not None:
                            self.spam.record_gold(worker_id,
                                                  gold_correct)
                    if self.spam is not None:
                        self.spam.record_answer(worker_id,
                                                self._hashable(answer))
                self._log("answer", task_id=task_id,
                          worker_id=worker_id, answer=answer,
                          at_s=at_s, idempotency_key=idempotency_key,
                          points=self.points_per_answer)
                self._m_answers.inc(gold=str(task.is_gold).lower())
                completed_now = (not was_complete and
                                 task.state(job.redundancy)
                                 is TaskState.COMPLETED)
                live = self.live
                if live is not None:
                    if gold_correct is not None:
                        live.record_gold(at_s, job.name, gold_correct)
                    if completed_now:
                        # Crossing the redundancy bar is the
                        # platform's "verified output" moment the
                        # paper's throughput counts.
                        live.record_task_completed(at_s, job.name)
                self._maybe_complete(job, transitioned=completed_now)
            return task

    @staticmethod
    def _hashable(answer: Any) -> Any:
        """Answers may be arbitrary JSON; hash-friendly for detectors."""
        try:
            hash(answer)
            return answer
        except TypeError:
            return repr(answer)

    def crash_restart_store(self) -> None:
        """Simulate (or survive) a store crash-restart.

        With a durability log the platform performs a *real*
        recover-from-disk: newest valid checkpoint plus WAL-tail
        replay, exactly what :meth:`recover` does in a fresh process.
        Without one it falls back to the in-memory rebuild the chaos
        suite predates (the store reloaded from its own checkpoint
        document).  Either way every in-memory scheduler lease is
        dropped, because leases are process state a crash loses.
        Durable records (jobs, tasks, answers, accounts) survive.
        """
        if self.durability is not None:
            self._restore_from_log()
        else:
            self.store = self.store.restarted()
            self.scheduler.store = self.store
            self.scheduler.drop_all_reservations()
        self._m_restarts.inc()

    # ------------------------------------------------------------------
    # Checkpoint and recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> Optional[int]:
        """Snapshot durable state into the log and rotate old WAL
        segments.  Returns the sequence number the snapshot covers,
        or None without a durability log.

        The covered sequence is captured *before* the state snapshot:
        effects of records appended concurrently may leak into the
        snapshot, but replay is idempotent so re-applying them is
        harmless — whereas a record newer than its covering checkpoint
        must never be skipped.
        """
        log = self.durability
        if log is None:
            return None
        at_seq = log.seq
        with self.registry_lock:
            state = self._snapshot_state()
        return log.checkpoint(state, at_seq=at_seq)

    def _snapshot_state(self) -> Dict[str, Any]:
        """The checkpoint document: the store plus the platform state
        that lives outside it (idempotency table; lazily-created
        registry accounts the store never saw)."""
        store_doc = self.store.to_document()
        stored = {raw["account_id"] for raw in store_doc["accounts"]}
        return {
            "store": store_doc,
            "idempotency": dict(self._idempotency),
            "registry_accounts": [
                account.to_dict() for account in self.accounts.all()
                if account.account_id not in stored],
        }

    @classmethod
    def recover(cls, root: Union[str, Path],
                checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                fsync: bool = True,
                **platform_kwargs: Any) -> "Platform":
        """Open (or create) a durable platform on a data directory.

        Loads the newest valid checkpoint, replays the WAL tail
        (truncating a torn final record), and returns a platform whose
        every subsequent mutation is logged to the same directory.
        ``platform_kwargs`` are forwarded to the constructor.
        """
        log = DurabilityLog(
            root, checkpoint_every=checkpoint_every, fsync=fsync,
            faults=platform_kwargs.get("faults"),
            registry=platform_kwargs.get("registry"))
        platform = cls(durability=log, **platform_kwargs)
        platform._restore_from_log()
        return platform

    def _restore_from_log(self) -> None:
        """Rebuild all platform state from the durability directory:
        newest valid checkpoint, then WAL-tail replay, then derived
        state (leaderboard, reputation, spam) from the restored store.
        """
        log = self.durability
        seq, state = log.load_checkpoint()
        with self.registry_lock:
            document = (state or {}).get("store", {})
            if isinstance(self.store, ShardedStore):
                self.store = ShardedStore.from_document(
                    document, n_shards=self.store.n_shards)
            else:
                self.store = type(self.store).from_document(document)
            self._idempotency = dict(
                (state or {}).get("idempotency", {}))
            self.accounts = AccountRegistry()
            # Store and registry must share account *objects* so
            # points accrue in both views, exactly as in live
            # operation.
            for account in self.store.accounts():
                self.accounts.adopt(account)
            for raw in (state or {}).get("registry_accounts", []):
                self.accounts.adopt(Account.from_dict(raw))
            for record in log.replay(seq):
                try:
                    self._apply_wal_record(record)
                except (JobNotFound, TaskNotFound, KeyError) as exc:
                    raise StoreCorruptError(
                        f"WAL record seq {record.seq} "
                        f"({record.op}) references missing state: "
                        f"{exc}") from exc
            self._complete_finished_jobs()
            self._resync_counters()
            self.scheduler.store = self.store
            self.scheduler.drop_all_reservations()
            self._completed_counts.clear()
            self._rebuild_derived()

    def _apply_wal_record(self, record: WalRecord) -> None:
        """Replay one WAL record onto the recovered state.

        Idempotent by construction: a checkpoint may already include
        the effects of records appended while its snapshot was being
        taken, so every applier skips work that is already present
        instead of double-applying it.
        """
        op, data = record.op, record.data
        if op == "register":
            account_id = data["account_id"]
            if account_id not in self.accounts:
                account = self.accounts.register(
                    account_id, data.get("display_name"),
                    **dict(data.get("attributes", {})))
                self.store.put_account(account)
        elif op == "create_job":
            if not self.store.has_job(data["job_id"]):
                self.store.put_job(Job(
                    job_id=data["job_id"], name=data["name"],
                    redundancy=data["redundancy"],
                    meta=dict(data.get("meta", {}))))
        elif op == "add_task":
            if not self.store.has_task(data["task_id"]):
                self.store.put_task(TaskRecord(
                    task_id=data["task_id"], job_id=data["job_id"],
                    payload=dict(data.get("payload", {})),
                    gold_answer=data.get("gold_answer")))
        elif op == "start_job":
            job = self.store.get_job(data["job_id"])
            if job.status is JobStatus.DRAFT:
                job.status = JobStatus.RUNNING
        elif op == "archive_job":
            self.store.get_job(data["job_id"]).status = \
                JobStatus.ARCHIVED
        elif op == "promotion":
            job = self.store.get_job(data["job_id"])
            job.redundancy = max(job.redundancy, data["redundancy"])
            if (data.get("status") == JobStatus.RUNNING.value
                    and job.status is JobStatus.COMPLETED):
                job.status = JobStatus.RUNNING
        elif op == "answer":
            self._replay_answer(data)
        elif op == "dedupe":
            self._idempotency[data["key"]] = data["task_id"]
        elif op in ("assign", "disconnect"):
            # Leases are process state; a crash loses them by design.
            pass
        else:
            raise StoreCorruptError(
                f"unknown WAL operation {op!r} at seq {record.seq}")

    def _replay_answer(self, data: Dict[str, Any]) -> None:
        task = self.store.get_task(data["task_id"])
        worker_id = data["worker_id"]
        answer = data["answer"]
        already = any(r.worker_id == worker_id and r.answer == answer
                      for r in task.answers)
        if not already:
            task.add_answer(worker_id, answer,
                            at_s=data.get("at_s", 0.0))
            self.accounts.ensure(worker_id).add_points(
                data.get("points", self.points_per_answer))
        key = data.get("idempotency_key")
        if key is not None:
            self._idempotency[key] = data["task_id"]

    def _complete_finished_jobs(self) -> None:
        """Post-replay status sweep: promote every RUNNING job whose
        tasks are all complete.  Needed because replay skips answers a
        checkpoint already absorbed, so per-answer completion checks
        could miss the final transition."""
        for job in self.store.jobs():
            if job.status is not JobStatus.RUNNING:
                continue
            tasks = self.store.tasks_for(job.job_id)
            if tasks and all(task.state(job.redundancy)
                             is TaskState.COMPLETED
                             for task in tasks):
                job.status = JobStatus.COMPLETED

    def _resync_counters(self) -> None:
        """Point the id counters past every recovered id so new jobs
        and tasks never collide with replayed ones."""
        next_job = 0
        next_task = 0
        for job in self.store.jobs():
            match = _JOB_ID_RE.match(job.job_id)
            if match:
                next_job = max(next_job, int(match.group(1)) + 1)
            for task in self.store.tasks_for(job.job_id):
                match = _TASK_ID_RE.match(task.task_id)
                if match:
                    next_task = max(next_task,
                                    int(match.group(1)) + 1)
        self._job_counter = itertools.count(next_job)
        self._task_counter = itertools.count(next_task)

    def _rebuild_derived(self) -> None:
        """Rebuild leaderboard, reputation and spam state from the
        recovered store in canonical order (jobs id-sorted, tasks in
        creation order, answers in arrival order) — the same per-answer
        feed live operation produced."""
        self.leaderboard = Leaderboard()
        self.reputation = ReputationTracker()
        if self.spam is not None:
            self.spam = SpamDetector()
        for job in self.store.jobs():
            for task in self.store.tasks_for(job.job_id):
                for rec in task.answers:
                    self.leaderboard.record(rec.worker_id,
                                            self.points_per_answer,
                                            rec.at_s)
                    if task.is_gold:
                        correct = rec.answer == task.gold_answer
                        self.reputation.record_gold(rec.worker_id,
                                                    correct)
                        if self.spam is not None:
                            self.spam.record_gold(rec.worker_id,
                                                  correct)
                    if self.spam is not None:
                        self.spam.record_answer(
                            rec.worker_id, self._hashable(rec.answer))

    def durability_status(self) -> Dict[str, Any]:
        """The ``/healthz`` durability payload."""
        if self.durability is None:
            return {"enabled": False}
        return {"enabled": True, **self.durability.status()}

    def worker_disconnected(self, worker_id: str) -> int:
        """A worker's session died: requeue every lease it held so its
        in-flight tasks go back out immediately instead of waiting for
        lease expiry.  Returns the number of leases requeued."""
        self._log("disconnect", worker_id=worker_id)
        return self.scheduler.release_worker(worker_id)

    def flagged_workers(self) -> List[str]:
        """Workers the spam detector currently flags (empty when
        detection is disabled)."""
        if self.spam is None:
            return []
        with self.registry_lock:
            return self.spam.flagged()

    def _maybe_complete(self, job: Job,
                        transitioned: bool = False) -> None:
        """Promote the job to COMPLETED when every task is.

        Fast path: a cached (completed-count, redundancy) pair is
        bumped when the just-answered task crossed its redundancy bar
        (``transitioned``) — O(1) per answer.  The cache is rebuilt by
        a full scan whenever it is missing or the job's redundancy
        moved; ``fast_path=False`` always scans, exactly as the seed
        did.  Answers are never removed, so the count is monotone and
        the two paths agree (the golden-trace suite proves it).
        """
        if not self.fast_path:
            tasks = self.store.tasks_for(job.job_id)
            if tasks and all(t.state(job.redundancy)
                             is TaskState.COMPLETED for t in tasks):
                if job.status is not JobStatus.COMPLETED:
                    self._m_jobs.inc(event="completed")
                job.status = JobStatus.COMPLETED
            return
        job_id = job.job_id
        cached = self._completed_counts.get(job_id)
        if cached is None or cached[1] != job.redundancy:
            tasks = self.store.tasks_for(job_id)
            count = sum(1 for t in tasks
                        if t.state(job.redundancy)
                        is TaskState.COMPLETED)
        elif transitioned:
            count = cached[0] + 1
        else:
            count = cached[0]
        self._completed_counts[job_id] = (count, job.redundancy)
        total = len(job.task_ids)
        if total and count >= total:
            if job.status is not JobStatus.COMPLETED:
                self._m_jobs.inc(event="completed")
            job.status = JobStatus.COMPLETED

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def progress(self, job_id: str) -> Dict[str, Any]:
        """Completion statistics for a job."""
        return self.scheduler.progress(job_id)

    def results(self, job_id: str,
                use_reputation: bool = True
                ) -> Dict[str, VoteResult]:
        """Aggregated per-task results via (weighted) majority vote.

        Gold tasks are excluded — they are instruments, not outputs.
        Workers flagged by the spam detector are silenced (weight 0)
        unless that would silence a task entirely.  Task data comes
        from a copy-on-write snapshot (a consistent prefix of the
        job's commit order) — no stripe or shard lock is taken.
        """
        with self.registry_lock:
            weights = dict(self.reputation.weights()) \
                if use_reputation else {}
        if use_reputation:
            for worker in self.flagged_workers():
                weights[worker] = 0.0
        vote = MajorityVote(weights=weights or None)
        fallback = MajorityVote()
        snapshot_fn = getattr(self.store, "snapshot_job", None)
        tasks = (snapshot_fn(job_id).tasks if snapshot_fn is not None
                 else self.store.tasks_for(job_id))
        by_task: Dict[str, List[Tuple[str, Any]]] = {}
        for task in tasks:
            if task.is_gold:
                continue
            for record in task.answers:
                by_task.setdefault(task.task_id, []).append(
                    (record.worker_id, record.answer))
        results: Dict[str, VoteResult] = {}
        for task_id, pairs in by_task.items():
            try:
                results[task_id] = vote.vote(task_id, pairs)
            except AggregationError:
                # Every answerer was silenced: better a low-trust
                # answer than none at all.
                results[task_id] = fallback.vote(task_id, pairs)
        return results

    def low_confidence_tasks(self, job_id: str,
                             min_margin: float = 0.34,
                             use_reputation: bool = True) -> List[str]:
        """Completed tasks whose vote margin is below ``min_margin``.

        The routing signal for adaptive redundancy: these are the items
        a campaign should send back out for more answers before
        trusting the result.
        """
        results = self.results(job_id, use_reputation=use_reputation)
        return sorted(task_id for task_id, result in results.items()
                      if result.margin < min_margin)

    def extend_redundancy(self, job_id: str, task_ids: Sequence[str],
                          extra: int = 2) -> int:
        """Reopen tasks for ``extra`` more answers each.

        Raises the job's redundancy bar for the given tasks by cloning
        them into a follow-up requirement: the simplest sound way to
        demand more answers without per-task redundancy bookkeeping is
        to raise the job redundancy to cover the neediest task.  Returns
        the job's new redundancy.
        """
        if extra < 1:
            raise PlatformError(f"extra must be >= 1, got {extra}")
        job = self.store.get_job(job_id)
        needed = 0
        for task_id in task_ids:
            task = self.store.get_task(task_id)
            if task.job_id != job_id:
                raise PlatformError(
                    f"task {task_id!r} is not in job {job_id!r}")
            needed = max(needed, len(task.workers()) + extra)
        with self.store.mutating(job_id):
            if needed > job.redundancy:
                job.redundancy = needed
                self._m_extensions.inc()
            if job.status is JobStatus.COMPLETED and task_ids:
                job.status = JobStatus.RUNNING
            self._log("promotion", job_id=job_id,
                      redundancy=job.redundancy,
                      status=job.status.value)
        return job.redundancy

    def worker_stats(self, worker_id: str) -> Dict[str, Any]:
        """A worker's account, reputation and rank snapshot."""
        account = self.accounts.get(worker_id)
        return {
            "account_id": account.account_id,
            "points": account.points,
            "reputation": self.reputation.weight(worker_id),
            "trusted": self.reputation.trusted(worker_id),
            "rank": self.leaderboard.rank_of(worker_id),
        }
