"""The high-level platform API.

:class:`Platform` ties the store, scheduler, accounts, reputation and
leaderboard together behind the handful of verbs a crowdsourcing service
needs: create a job, add tasks, hand a worker their next task, accept an
answer, and report results.  The service layer exposes exactly these
verbs over HTTP; examples and the simulator call them directly.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import rng as _rng
from repro.aggregation.majority import MajorityVote, VoteResult
from repro.errors import AggregationError, PlatformError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.platform.accounts import Account, AccountRegistry
from repro.platform.jobs import (Job, JobStatus, TaskRecord, TaskState)
from repro.platform.leaderboard import Leaderboard
from repro.platform.scheduler import AssignmentPolicy, TaskScheduler
from repro.platform.sharding import DEFAULT_SHARDS
from repro.platform.store import JsonStore, ShardedStore
from repro.quality.reputation import ReputationTracker
from repro.quality.spam import SpamDetector


class Platform:
    """A complete in-process crowdsourcing platform.

    Args:
        policy: task assignment policy.
        gold_rate: gold-injection rate for player testing.
        points_per_answer: flat points credited per accepted answer.
        spam_detection: feed every answer into a
            :class:`~repro.quality.spam.SpamDetector` and let
            :meth:`results` silence flagged workers.
        seed: RNG seed for scheduling decisions.
        registry: metrics registry the platform counters land in (the
            process default if omitted).
        tracer: span tracer for the worker-loop verbs (the process
            default if omitted).
        faults: optional :class:`repro.faults.FaultInjector`; when set,
            the worker-loop verbs consult it (store crash-restarts,
            latency) and the service layer inherits it.  None (the
            default) costs nothing.
        store: storage backend.  Defaults to a
            :class:`~repro.platform.store.ShardedStore` with
            ``store_shards`` shards; pass a
            :class:`~repro.platform.store.JsonStore` to reproduce the
            seed's flat single-dict substrate (the perf baseline).
        store_shards: shard count for the default store.
        fast_path: use the O(1) per-answer job-completion counter
            instead of rescanning every task on every answer.  The
            results are identical (the golden-trace suite proves it);
            ``False`` restores the seed's scan for baseline
            benchmarking.

    Concurrency contract: the platform's verbs are not internally
    serialized per job — the service layer holds one lock stripe per
    job around each verb (see ``docs/architecture.md``).  Cross-job
    shared state (accounts, leaderboard, reputation, spam, the
    idempotency table) is guarded here by ``registry_lock``, which is
    always acquired *after* a job stripe and *before* any scheduler or
    store lock, never the other way around.
    """

    def __init__(self,
                 policy: AssignmentPolicy = AssignmentPolicy.BREADTH_FIRST,
                 gold_rate: float = 0.1, points_per_answer: int = 10,
                 spam_detection: bool = True,
                 seed: _rng.SeedLike = 0,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 faults=None,
                 store=None,
                 store_shards: int = DEFAULT_SHARDS,
                 fast_path: bool = True) -> None:
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self.faults = faults
        self.store = (store if store is not None
                      else ShardedStore(n_shards=store_shards))
        self.fast_path = fast_path
        # Guards cross-job shared state; see the class docstring for
        # the lock-ordering rule.  Re-entrant so registry-scoped
        # service handlers can call verbs that re-acquire it.
        self.registry_lock = threading.RLock()
        self.accounts = AccountRegistry()
        self.scheduler = TaskScheduler(self.store, policy=policy,
                                       gold_rate=gold_rate, seed=seed,
                                       registry=self.registry,
                                       faults=faults,
                                       legacy_scan=not fast_path)
        self.reputation = ReputationTracker()
        self.spam = SpamDetector() if spam_detection else None
        self.leaderboard = Leaderboard()
        self.points_per_answer = points_per_answer
        self._job_counter = itertools.count()
        self._task_counter = itertools.count()
        # At-least-once delivery defense: idempotency key -> task_id of
        # the submission it already applied.  Kept outside the store on
        # purpose — it models the dedupe table a production deployment
        # would keep in its request log.  Guarded by registry_lock.
        self._idempotency: Dict[str, str] = {}
        # Fast-path completion tracking: job_id -> (count of COMPLETED
        # tasks, the redundancy that count was taken at).  Lets
        # _maybe_complete run in O(1) per answer instead of rescanning
        # the job; invalidated whenever redundancy changes.
        self._completed_counts: Dict[str, Tuple[int, int]] = {}
        self._m_jobs = self.registry.counter(
            "platform.jobs", "job lifecycle transitions, by event")
        self._m_tasks_added = self.registry.counter(
            "platform.tasks_added", "tasks added to jobs")
        self._m_tasks_served = self.registry.counter(
            "platform.tasks_served", "tasks handed to workers")
        self._m_answers = self.registry.counter(
            "platform.answers", "answers accepted, by gold/plain")
        self._m_extensions = self.registry.counter(
            "platform.redundancy_extensions",
            "adaptive-redundancy extensions applied")
        self._m_deduped = self.registry.counter(
            "platform.answers_deduped",
            "duplicate answer deliveries absorbed, by reason")
        self._m_restarts = self.registry.counter(
            "platform.store_restarts",
            "store crash-restarts survived")

    # ------------------------------------------------------------------
    # Job management
    # ------------------------------------------------------------------

    def create_job(self, name: str, redundancy: int = 3,
                   **meta: Any) -> Job:
        """Create a job in DRAFT state."""
        job = Job(job_id=f"job-{next(self._job_counter):04d}", name=name,
                  redundancy=redundancy, meta=dict(meta))
        self.store.put_job(job)
        self._m_jobs.inc(event="created")
        return job

    def add_task(self, job_id: str, payload: Dict[str, Any],
                 gold_answer: Optional[Any] = None) -> TaskRecord:
        """Add one task to a job (gold if ``gold_answer`` is given)."""
        job = self.store.get_job(job_id)
        if job.status is JobStatus.ARCHIVED:
            raise PlatformError(
                f"job {job_id!r} is archived; cannot add tasks")
        task = TaskRecord(
            task_id=f"task-{next(self._task_counter):06d}",
            job_id=job_id, payload=dict(payload),
            gold_answer=gold_answer)
        self.store.put_task(task)
        self._m_tasks_added.inc(gold=str(gold_answer is not None
                                         ).lower())
        return task

    def add_tasks(self, job_id: str,
                  payloads: Sequence[Dict[str, Any]]) -> List[TaskRecord]:
        """Bulk-add plain tasks."""
        return [self.add_task(job_id, payload) for payload in payloads]

    def start_job(self, job_id: str) -> Job:
        """Move a job to RUNNING (requires at least one task)."""
        job = self.store.get_job(job_id)
        if job.status is JobStatus.ARCHIVED:
            raise PlatformError(f"job {job_id!r} is archived")
        if not job.task_ids:
            raise PlatformError(f"job {job_id!r} has no tasks")
        job.status = JobStatus.RUNNING
        self._m_jobs.inc(event="started")
        return job

    def archive_job(self, job_id: str) -> Job:
        """Archive a job: no more tasks, answers, or restarts."""
        job = self.store.get_job(job_id)
        job.status = JobStatus.ARCHIVED
        self._m_jobs.inc(event="archived")
        return job

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------

    def register_worker(self, account_id: str,
                        display_name: Optional[str] = None,
                        **attributes: Any) -> Account:
        """Register a worker account."""
        with self.registry_lock:
            account = self.accounts.register(account_id, display_name,
                                             **attributes)
            self.store.put_account(account)
        return account

    def request_task(self, job_id: str,
                     worker_id: str) -> Optional[TaskRecord]:
        """The worker's next task, or None when the job has nothing
        left for them."""
        with self.tracer.span("platform.request_task", job=job_id):
            if (self.faults is not None and
                    self.faults.crashes_store("platform.request_task")):
                self.crash_restart_store()
            job = self.store.get_job(job_id)
            if job.status is JobStatus.COMPLETED:
                return None
            if job.status is not JobStatus.RUNNING:
                raise PlatformError(
                    f"job {job_id!r} is not running (status: "
                    f"{job.status.value})")
            # Double-checked: dict membership is GIL-atomic, so known
            # workers (every request after the first) skip the
            # cross-job registry lock entirely on this hot path.
            if worker_id not in self.accounts:
                with self.registry_lock:
                    self.accounts.ensure(worker_id)
            task = self.scheduler.next_task(job_id, worker_id)
            if task is not None:
                self._m_tasks_served.inc()
            return task

    def submit_answer(self, task_id: str, worker_id: str, answer: Any,
                      at_s: float = 0.0,
                      idempotency_key: Optional[str] = None
                      ) -> TaskRecord:
        """Accept an answer, credit points, grade gold, update state.

        Answers are accepted while the job is RUNNING or COMPLETED —
        a worker may have fetched the task moments before another
        worker's answer completed the job, and their work still counts.

        At-least-once delivery is absorbed here: a redelivery under an
        already-applied ``idempotency_key``, or a replay of the exact
        answer a worker already gave, returns the task untouched — no
        second answer row, no double points, no double spam/reputation
        signal.  Only a *conflicting* re-answer (same worker, different
        answer, no key) is rejected.
        """
        with self.tracer.span("platform.submit_answer", task=task_id):
            if (self.faults is not None and
                    self.faults.crashes_store("platform.submit_answer")):
                self.crash_restart_store()
            if idempotency_key is not None:
                with self.registry_lock:
                    applied = self._idempotency.get(idempotency_key)
                if applied is not None:
                    self._m_deduped.inc(reason="key")
                    return self.store.get_task(applied)
            task = self.store.get_task(task_id)
            job = self.store.get_job(task.job_id)
            if job.status not in (JobStatus.RUNNING,
                                  JobStatus.COMPLETED):
                raise PlatformError(
                    f"job {job.job_id!r} is not accepting answers "
                    f"(status: {job.status.value})")
            if task.answered_by(worker_id):
                if any(r.worker_id == worker_id and r.answer == answer
                       for r in task.answers):
                    self._m_deduped.inc(reason="replay")
                    if idempotency_key is not None:
                        with self.registry_lock:
                            self._idempotency[idempotency_key] = task_id
                    return task
                raise PlatformError(
                    f"worker {worker_id!r} already answered task "
                    f"{task_id!r} differently")
            was_complete = (task.state(job.redundancy)
                            is TaskState.COMPLETED)
            task.add_answer(worker_id, answer, at_s=at_s)
            self.scheduler.clear_reservation(task_id, worker_id)
            with self.registry_lock:
                if idempotency_key is not None:
                    self._idempotency[idempotency_key] = task_id
                account = self.accounts.ensure(worker_id)
                account.add_points(self.points_per_answer)
                self.leaderboard.record(worker_id,
                                        self.points_per_answer, at_s)
                if task.is_gold:
                    correct = answer == task.gold_answer
                    self.reputation.record_gold(worker_id, correct)
                    if self.spam is not None:
                        self.spam.record_gold(worker_id, correct)
                if self.spam is not None:
                    self.spam.record_answer(worker_id,
                                            self._hashable(answer))
            self._m_answers.inc(gold=str(task.is_gold).lower())
            completed_now = (not was_complete and
                             task.state(job.redundancy)
                             is TaskState.COMPLETED)
            self._maybe_complete(job, transitioned=completed_now)
            return task

    @staticmethod
    def _hashable(answer: Any) -> Any:
        """Answers may be arbitrary JSON; hash-friendly for detectors."""
        try:
            hash(answer)
            return answer
        except TypeError:
            return repr(answer)

    def crash_restart_store(self) -> None:
        """Simulate (or survive) a store crash-restart.

        The store is rebuilt from its own JSON checkpoint — exactly
        what :meth:`JsonStore.save`/``load`` would do across a real
        process restart — and every in-memory scheduler lease is
        dropped, because leases are process state a crash loses.
        Durable records (jobs, tasks, answers, accounts) survive.
        """
        self.store = self.store.restarted()
        self.scheduler.store = self.store
        self.scheduler.drop_all_reservations()
        self._m_restarts.inc()

    def worker_disconnected(self, worker_id: str) -> int:
        """A worker's session died: requeue every lease it held so its
        in-flight tasks go back out immediately instead of waiting for
        lease expiry.  Returns the number of leases requeued."""
        return self.scheduler.release_worker(worker_id)

    def flagged_workers(self) -> List[str]:
        """Workers the spam detector currently flags (empty when
        detection is disabled)."""
        if self.spam is None:
            return []
        with self.registry_lock:
            return self.spam.flagged()

    def _maybe_complete(self, job: Job,
                        transitioned: bool = False) -> None:
        """Promote the job to COMPLETED when every task is.

        Fast path: a cached (completed-count, redundancy) pair is
        bumped when the just-answered task crossed its redundancy bar
        (``transitioned``) — O(1) per answer.  The cache is rebuilt by
        a full scan whenever it is missing or the job's redundancy
        moved; ``fast_path=False`` always scans, exactly as the seed
        did.  Answers are never removed, so the count is monotone and
        the two paths agree (the golden-trace suite proves it).
        """
        if not self.fast_path:
            tasks = self.store.tasks_for(job.job_id)
            if tasks and all(t.state(job.redundancy)
                             is TaskState.COMPLETED for t in tasks):
                if job.status is not JobStatus.COMPLETED:
                    self._m_jobs.inc(event="completed")
                job.status = JobStatus.COMPLETED
            return
        job_id = job.job_id
        cached = self._completed_counts.get(job_id)
        if cached is None or cached[1] != job.redundancy:
            tasks = self.store.tasks_for(job_id)
            count = sum(1 for t in tasks
                        if t.state(job.redundancy)
                        is TaskState.COMPLETED)
        elif transitioned:
            count = cached[0] + 1
        else:
            count = cached[0]
        self._completed_counts[job_id] = (count, job.redundancy)
        total = len(job.task_ids)
        if total and count >= total:
            if job.status is not JobStatus.COMPLETED:
                self._m_jobs.inc(event="completed")
            job.status = JobStatus.COMPLETED

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def progress(self, job_id: str) -> Dict[str, Any]:
        """Completion statistics for a job."""
        return self.scheduler.progress(job_id)

    def results(self, job_id: str,
                use_reputation: bool = True
                ) -> Dict[str, VoteResult]:
        """Aggregated per-task results via (weighted) majority vote.

        Gold tasks are excluded — they are instruments, not outputs.
        Workers flagged by the spam detector are silenced (weight 0)
        unless that would silence a task entirely.
        """
        with self.registry_lock:
            weights = dict(self.reputation.weights()) \
                if use_reputation else {}
        if use_reputation:
            for worker in self.flagged_workers():
                weights[worker] = 0.0
        vote = MajorityVote(weights=weights or None)
        fallback = MajorityVote()
        by_task: Dict[str, List[Tuple[str, Any]]] = {}
        for task in self.store.tasks_for(job_id):
            if task.is_gold:
                continue
            for record in task.answers:
                by_task.setdefault(task.task_id, []).append(
                    (record.worker_id, record.answer))
        results: Dict[str, VoteResult] = {}
        for task_id, pairs in by_task.items():
            try:
                results[task_id] = vote.vote(task_id, pairs)
            except AggregationError:
                # Every answerer was silenced: better a low-trust
                # answer than none at all.
                results[task_id] = fallback.vote(task_id, pairs)
        return results

    def low_confidence_tasks(self, job_id: str,
                             min_margin: float = 0.34,
                             use_reputation: bool = True) -> List[str]:
        """Completed tasks whose vote margin is below ``min_margin``.

        The routing signal for adaptive redundancy: these are the items
        a campaign should send back out for more answers before
        trusting the result.
        """
        results = self.results(job_id, use_reputation=use_reputation)
        return sorted(task_id for task_id, result in results.items()
                      if result.margin < min_margin)

    def extend_redundancy(self, job_id: str, task_ids: Sequence[str],
                          extra: int = 2) -> int:
        """Reopen tasks for ``extra`` more answers each.

        Raises the job's redundancy bar for the given tasks by cloning
        them into a follow-up requirement: the simplest sound way to
        demand more answers without per-task redundancy bookkeeping is
        to raise the job redundancy to cover the neediest task.  Returns
        the job's new redundancy.
        """
        if extra < 1:
            raise PlatformError(f"extra must be >= 1, got {extra}")
        job = self.store.get_job(job_id)
        needed = 0
        for task_id in task_ids:
            task = self.store.get_task(task_id)
            if task.job_id != job_id:
                raise PlatformError(
                    f"task {task_id!r} is not in job {job_id!r}")
            needed = max(needed, len(task.workers()) + extra)
        if needed > job.redundancy:
            job.redundancy = needed
            self._m_extensions.inc()
        if job.status is JobStatus.COMPLETED and task_ids:
            job.status = JobStatus.RUNNING
        return job.redundancy

    def worker_stats(self, worker_id: str) -> Dict[str, Any]:
        """A worker's account, reputation and rank snapshot."""
        account = self.accounts.get(worker_id)
        return {
            "account_id": account.account_id,
            "points": account.points,
            "reputation": self.reputation.weight(worker_id),
            "trusted": self.reputation.trusted(worker_id),
            "rank": self.leaderboard.rank_of(worker_id),
        }
