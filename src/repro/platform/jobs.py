"""Jobs (projects) and task records.

A *job* groups tasks sharing a purpose ("label these 500 images") and a
redundancy requirement: each task needs ``redundancy`` answers from
distinct workers before it is complete.  Task records carry their answer
history so aggregation can run at any time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import PlatformError


class JobStatus(enum.Enum):
    """Job lifecycle: draft -> running -> completed (or archived)."""

    DRAFT = "draft"
    RUNNING = "running"
    COMPLETED = "completed"
    ARCHIVED = "archived"


class TaskState(enum.Enum):
    """Task state derived from answer count vs the job's redundancy."""

    PENDING = "pending"      # needs more answers
    COMPLETED = "completed"  # redundancy met


@dataclass
class AnswerRecord:
    """One worker's answer to one task."""

    worker_id: str
    answer: Any
    at_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"worker_id": self.worker_id, "answer": self.answer,
                "at_s": self.at_s}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "AnswerRecord":
        return AnswerRecord(worker_id=raw["worker_id"],
                            answer=raw["answer"],
                            at_s=raw.get("at_s", 0.0))


@dataclass
class TaskRecord:
    """One task in a job.

    Attributes:
        task_id: unique id.
        job_id: owning job.
        payload: what the worker sees (JSON-serializable).
        gold_answer: known answer if this is a gold task (None normally).
        answers: accumulated answers.
    """

    task_id: str
    job_id: str
    payload: Dict[str, Any] = field(default_factory=dict)
    gold_answer: Optional[Any] = None
    answers: List[AnswerRecord] = field(default_factory=list)

    @property
    def is_gold(self) -> bool:
        return self.gold_answer is not None

    def workers(self) -> Sequence[str]:
        """Distinct workers who answered, in first-answer order."""
        seen: List[str] = []
        for record in self.answers:
            if record.worker_id not in seen:
                seen.append(record.worker_id)
        return tuple(seen)

    def answered_by(self, worker_id: str) -> bool:
        return any(r.worker_id == worker_id for r in self.answers)

    def add_answer(self, worker_id: str, answer: Any,
                   at_s: float = 0.0) -> AnswerRecord:
        if self.answered_by(worker_id):
            raise PlatformError(
                f"worker {worker_id!r} already answered task "
                f"{self.task_id!r}")
        record = AnswerRecord(worker_id=worker_id, answer=answer,
                              at_s=at_s)
        self.answers.append(record)
        return record

    def state(self, redundancy: int) -> TaskState:
        if len(self.workers()) >= redundancy:
            return TaskState.COMPLETED
        return TaskState.PENDING

    def to_dict(self) -> Dict[str, Any]:
        return {"task_id": self.task_id, "job_id": self.job_id,
                "payload": self.payload, "gold_answer": self.gold_answer,
                "answers": [a.to_dict() for a in self.answers]}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "TaskRecord":
        return TaskRecord(
            task_id=raw["task_id"], job_id=raw["job_id"],
            payload=raw.get("payload", {}),
            gold_answer=raw.get("gold_answer"),
            answers=[AnswerRecord.from_dict(a)
                     for a in raw.get("answers", [])])


@dataclass
class Job:
    """A project: a batch of tasks with shared policy.

    Attributes:
        job_id: unique id.
        name: human-readable name.
        redundancy: distinct answers each task needs.
        status: lifecycle state.
        task_ids: ids of member tasks, in creation order.
        meta: free-form project metadata.
    """

    job_id: str
    name: str
    redundancy: int = 3
    status: JobStatus = JobStatus.DRAFT
    task_ids: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.redundancy < 1:
            raise PlatformError(
                f"redundancy must be >= 1, got {self.redundancy}")

    def to_dict(self) -> Dict[str, Any]:
        return {"job_id": self.job_id, "name": self.name,
                "redundancy": self.redundancy,
                "status": self.status.value,
                "task_ids": list(self.task_ids), "meta": self.meta}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Job":
        return Job(job_id=raw["job_id"], name=raw["name"],
                   redundancy=raw.get("redundancy", 3),
                   status=JobStatus(raw.get("status", "draft")),
                   task_ids=list(raw.get("task_ids", [])),
                   meta=raw.get("meta", {}))
