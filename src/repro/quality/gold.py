"""Gold (known-answer) seeding and player testing.

Occasionally presenting items whose answers are already known, and
scoring players against them, is the paper's "player testing" mechanism.
:class:`GoldPool` holds the known answers; :class:`GoldSeeder` decides —
deterministically under its seed — when a task stream position should be
a gold item, and records per-player gold accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence

from repro import rng as _rng
from repro.errors import QualityError


class GoldPool:
    """A pool of items with known correct answers.

    Answers may be a single value or a set of acceptable values (an
    image's full ground-truth tag set, say).
    """

    def __init__(self) -> None:
        self._answers: Dict[Hashable, frozenset] = {}

    def add(self, item_id: Hashable, answer) -> None:
        """Register a gold item; ``answer`` is a value or iterable."""
        if isinstance(answer, (str, int, float, bool)):
            acceptable = frozenset([answer])
        else:
            acceptable = frozenset(answer)
        if not acceptable:
            raise QualityError(
                f"gold item {item_id!r} needs >= 1 acceptable answer")
        self._answers[item_id] = acceptable

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._answers

    def items(self) -> Sequence[Hashable]:
        return tuple(self._answers)

    def check(self, item_id: Hashable, answer) -> bool:
        """Whether ``answer`` is acceptable for the gold item."""
        try:
            return answer in self._answers[item_id]
        except KeyError:
            raise QualityError(
                f"item {item_id!r} is not a gold item") from None


@dataclass
class GoldRecord:
    """A player's running gold performance."""

    asked: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        if self.asked == 0:
            return 0.0
        return self.correct / self.asked


class GoldSeeder:
    """Decides when to inject gold items and tracks player scores.

    Args:
        pool: the known-answer pool.
        rate: fraction of stream positions that are gold (0..1).
        seed: RNG seed for the injection schedule.
    """

    def __init__(self, pool: GoldPool, rate: float = 0.1,
                 seed: _rng.SeedLike = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise QualityError(f"gold rate must be in [0,1], got {rate}")
        self.pool = pool
        self.rate = rate
        self._rng = _rng.make_rng(seed)
        self._records: Dict[str, GoldRecord] = {}

    def next_is_gold(self) -> bool:
        """Whether the next stream position should be a gold item."""
        if len(self.pool) == 0:
            return False
        return self._rng.random() < self.rate

    def pick_gold(self) -> Hashable:
        """A random gold item id."""
        items = self.pool.items()
        if not items:
            raise QualityError("gold pool is empty")
        return items[self._rng.randrange(len(items))]

    def grade(self, player_id: str, item_id: Hashable, answer) -> bool:
        """Grade one gold answer and update the player's record."""
        correct = self.pool.check(item_id, answer)
        record = self._records.setdefault(player_id, GoldRecord())
        record.asked += 1
        if correct:
            record.correct += 1
        return correct

    def accuracy(self, player_id: str) -> float:
        """The player's gold accuracy (0.0 with no gold answers yet)."""
        return self._records.get(player_id, GoldRecord()).accuracy

    def asked(self, player_id: str) -> int:
        return self._records.get(player_id, GoldRecord()).asked

    def records(self) -> Mapping[str, GoldRecord]:
        return dict(self._records)

    def failing_players(self, min_asked: int = 5,
                        min_accuracy: float = 0.5) -> List[str]:
        """Players with enough gold exposure and accuracy below the bar."""
        return sorted(
            player_id for player_id, record in self._records.items()
            if record.asked >= min_asked
            and record.accuracy < min_accuracy)
