"""Inter-annotator agreement statistics.

The standard chance-corrected agreement measures, used by the analytics
package and the F3 benchmark (agreement rate vs player skill):

- :func:`observed_agreement` — raw fraction of co-annotated items two
  raters matched on.
- :func:`cohen_kappa` — two-rater agreement corrected for chance via the
  raters' marginal distributions.
- :func:`fleiss_kappa` — many-rater generalization over an item×category
  count table.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.errors import QualityError


def observed_agreement(rater_a: Mapping[Hashable, Hashable],
                       rater_b: Mapping[Hashable, Hashable]) -> float:
    """Fraction of shared items both raters answered identically."""
    shared = set(rater_a) & set(rater_b)
    if not shared:
        raise QualityError("raters share no items")
    matches = sum(1 for item in shared if rater_a[item] == rater_b[item])
    return matches / len(shared)


def cohen_kappa(rater_a: Mapping[Hashable, Hashable],
                rater_b: Mapping[Hashable, Hashable]) -> float:
    """Cohen's kappa for two raters over their shared items.

    Returns 1.0 when observed agreement is perfect even if expected
    agreement is also 1.0 (the degenerate single-category case).
    """
    shared = sorted(set(rater_a) & set(rater_b), key=repr)
    if not shared:
        raise QualityError("raters share no items")
    n = len(shared)
    po = sum(1 for item in shared
             if rater_a[item] == rater_b[item]) / n
    categories = sorted({rater_a[i] for i in shared}
                        | {rater_b[i] for i in shared}, key=repr)
    pe = 0.0
    for category in categories:
        pa = sum(1 for i in shared if rater_a[i] == category) / n
        pb = sum(1 for i in shared if rater_b[i] == category) / n
        pe += pa * pb
    if pe >= 1.0:
        return 1.0 if po >= 1.0 else 0.0
    return (po - pe) / (1.0 - pe)


def fleiss_kappa(table: Sequence[Mapping[Hashable, int]]) -> float:
    """Fleiss' kappa over an item -> {category: rating count} table.

    Every item must have the same total number of ratings (>= 2).
    """
    if not table:
        raise QualityError("fleiss_kappa needs >= 1 item")
    totals = {sum(row.values()) for row in table}
    if len(totals) != 1:
        raise QualityError(
            f"all items need equal rating counts, saw {sorted(totals)}")
    n_ratings = totals.pop()
    if n_ratings < 2:
        raise QualityError(
            f"need >= 2 ratings per item, got {n_ratings}")
    categories = sorted({c for row in table for c in row}, key=repr)
    n_items = len(table)
    # Per-item agreement.
    p_items = []
    for row in table:
        s = sum(count * (count - 1) for count in row.values())
        p_items.append(s / (n_ratings * (n_ratings - 1)))
    p_bar = sum(p_items) / n_items
    # Category marginals.
    pe = 0.0
    for category in categories:
        share = sum(row.get(category, 0) for row in table) / (
            n_items * n_ratings)
        pe += share * share
    if pe >= 1.0:
        return 1.0 if p_bar >= 1.0 else 0.0
    return (p_bar - pe) / (1.0 - pe)
