"""Quality control: the paper's anti-cheating mechanisms.

The overview lists the defenses that let GWAPs trust anonymous crowds:
random matching (implemented by :class:`~repro.core.matchmaking.Lobby`),
repetition (:mod:`repro.aggregation.promotion`), and the player-testing
mechanisms implemented here:

- :mod:`repro.quality.gold` — seed known-answer (gold) items into the
  task stream and score players on them.
- :mod:`repro.quality.reputation` — per-player reputation from gold
  performance and peer agreement; exports aggregation weights.
- :mod:`repro.quality.spam` — flag item-blind players from their answer
  statistics (gold accuracy near chance, answer distribution divergence).
- :mod:`repro.quality.collusion` — flag player pairs whose mutual
  agreement is anomalously higher than their agreement with everyone
  else.
- :mod:`repro.quality.agreement` — inter-annotator agreement statistics
  (observed agreement, Cohen's kappa, Fleiss' kappa).
"""

from repro.quality.gold import GoldPool, GoldSeeder
from repro.quality.reputation import ReputationTracker
from repro.quality.spam import SpamDetector, SpamVerdict
from repro.quality.collusion import CollusionDetector
from repro.quality.agreement import (cohen_kappa, fleiss_kappa,
                                     observed_agreement)
from repro.quality.monitoring import (Alert, AlertKind,
                                      CampaignMonitor)

__all__ = [
    "Alert", "AlertKind", "CampaignMonitor",
    "GoldPool", "GoldSeeder",
    "ReputationTracker",
    "SpamDetector", "SpamVerdict",
    "CollusionDetector",
    "cohen_kappa", "fleiss_kappa", "observed_agreement",
]
