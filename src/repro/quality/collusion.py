"""Collusion detection from pairwise agreement anomalies.

Two coordinated players agree far more with *each other* than either does
with the rest of the crowd.  Random matching already makes collusion
unprofitable (partners are rarely paired); this detector closes the rest
of the gap by flagging pairs whose mutual agreement rate exceeds the
baseline agreement of both members by a margin, given enough co-play.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import QualityError


@dataclass(frozen=True)
class PairStats:
    """Co-play statistics for one unordered player pair."""

    pair: FrozenSet[str]
    rounds: int
    agreements: int

    @property
    def agreement_rate(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.agreements / self.rounds


class CollusionDetector:
    """Flags anomalously agreeing pairs.

    Args:
        min_rounds: co-played rounds required before judging a pair.
        margin: how much a pair's agreement must exceed the larger of
            its members' baseline rates to be suspicious.
    """

    def __init__(self, min_rounds: int = 8, margin: float = 0.25) -> None:
        if min_rounds < 1:
            raise QualityError(
                f"min_rounds must be >= 1, got {min_rounds}")
        if margin <= 0:
            raise QualityError(f"margin must be > 0, got {margin}")
        self.min_rounds = min_rounds
        self.margin = margin
        self._pairs: Dict[FrozenSet[str], List[int]] = {}
        self._players: Dict[str, List[int]] = {}

    def record_round(self, player_a: str, player_b: str,
                     agreed: bool) -> None:
        """Feed one round between two players."""
        if player_a == player_b:
            raise QualityError("a pair needs two distinct players")
        pair = frozenset([player_a, player_b])
        stats = self._pairs.setdefault(pair, [0, 0])
        stats[0] += 1
        stats[1] += 1 if agreed else 0
        for player in (player_a, player_b):
            totals = self._players.setdefault(player, [0, 0])
            totals[0] += 1
            totals[1] += 1 if agreed else 0

    def pair_stats(self, player_a: str, player_b: str) -> PairStats:
        """Statistics for one pair (zeros if never co-played)."""
        pair = frozenset([player_a, player_b])
        rounds, agreements = self._pairs.get(pair, (0, 0))
        return PairStats(pair=pair, rounds=rounds, agreements=agreements)

    def baseline_rate(self, player_id: str,
                      excluding: Optional[str] = None) -> float:
        """A player's agreement rate over all partners except one.

        ``excluding`` removes the suspect pair's rounds, so a prolific
        colluder's own inflated stats don't mask the anomaly.
        """
        rounds, agreements = self._players.get(player_id, (0, 0))
        if excluding is not None:
            pair_rounds, pair_agreements = self._pairs.get(
                frozenset([player_id, excluding]), (0, 0))
            rounds -= pair_rounds
            agreements -= pair_agreements
        if rounds <= 0:
            return 0.0
        return agreements / rounds

    def suspicious_pairs(self) -> List[PairStats]:
        """Pairs whose mutual agreement is anomalously high."""
        flagged: List[PairStats] = []
        for pair, (rounds, agreements) in self._pairs.items():
            if rounds < self.min_rounds:
                continue
            rate = agreements / rounds
            a, b = sorted(pair)
            baseline = max(self.baseline_rate(a, excluding=b),
                           self.baseline_rate(b, excluding=a))
            if rate >= baseline + self.margin:
                flagged.append(PairStats(pair=pair, rounds=rounds,
                                         agreements=agreements))
        flagged.sort(key=lambda s: (-s.agreement_rate,
                                    sorted(s.pair)))
        return flagged

    def flagged_players(self) -> Set[str]:
        """Union of players in suspicious pairs."""
        players: Set[str] = set()
        for stats in self.suspicious_pairs():
            players |= stats.pair
        return players
