"""Player reputation from gold performance and peer agreement.

Reputation blends two signals with Beta-style smoothing:

- gold accuracy (strong but sparse — gold items are a small fraction);
- peer agreement rate (weak but plentiful — every round yields one).

The output is a weight in [0, 1] suitable for
:class:`~repro.aggregation.majority.MajorityVote` and friends, plus a
trust decision for gating task assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import QualityError


@dataclass
class ReputationRecord:
    """Raw counters behind one player's reputation."""

    gold_asked: int = 0
    gold_correct: int = 0
    rounds: int = 0
    agreements: int = 0

    def gold_rate(self, prior_a: float, prior_b: float) -> float:
        return ((self.gold_correct + prior_a)
                / (self.gold_asked + prior_a + prior_b))

    def agreement_rate(self, prior_a: float, prior_b: float) -> float:
        return ((self.agreements + prior_a)
                / (self.rounds + prior_a + prior_b))


class ReputationTracker:
    """Maintains per-player reputation weights.

    Args:
        gold_weight: blend factor for the gold signal (the remainder
            goes to peer agreement).
        prior_strength: pseudo-counts of the Beta(α, β) prior; a fresh
            player starts at the prior mean 0.5.
        distrust_below: weight threshold under which a player is
            untrusted.
    """

    def __init__(self, gold_weight: float = 0.6,
                 prior_strength: float = 4.0,
                 distrust_below: float = 0.35) -> None:
        if not 0.0 <= gold_weight <= 1.0:
            raise QualityError(
                f"gold_weight must be in [0,1], got {gold_weight}")
        if prior_strength <= 0:
            raise QualityError(
                f"prior_strength must be > 0, got {prior_strength}")
        self.gold_weight = gold_weight
        self._prior = prior_strength / 2.0
        self.distrust_below = distrust_below
        self._records: Dict[str, ReputationRecord] = {}

    def _record(self, player_id: str) -> ReputationRecord:
        return self._records.setdefault(player_id, ReputationRecord())

    def record_gold(self, player_id: str, correct: bool) -> None:
        """Feed one graded gold answer."""
        record = self._record(player_id)
        record.gold_asked += 1
        if correct:
            record.gold_correct += 1

    def record_round(self, player_id: str, agreed: bool) -> None:
        """Feed one played round and whether it reached agreement."""
        record = self._record(player_id)
        record.rounds += 1
        if agreed:
            record.agreements += 1

    def weight(self, player_id: str) -> float:
        """The player's current reputation weight in [0, 1]."""
        record = self._records.get(player_id)
        if record is None:
            return 0.5
        gold = record.gold_rate(self._prior, self._prior)
        peer = record.agreement_rate(self._prior, self._prior)
        if record.gold_asked == 0:
            return peer
        return self.gold_weight * gold + (1 - self.gold_weight) * peer

    def trusted(self, player_id: str) -> bool:
        """Whether the player clears the distrust threshold."""
        return self.weight(player_id) >= self.distrust_below

    def weights(self) -> Dict[str, float]:
        """All known players' weights (for vote aggregators)."""
        return {player_id: self.weight(player_id)
                for player_id in self._records}

    def untrusted_players(self) -> List[str]:
        return sorted(player_id for player_id in self._records
                      if not self.trusted(player_id))

    def known_players(self) -> List[str]:
        return sorted(self._records)
