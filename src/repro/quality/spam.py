"""Spammer detection from answer statistics.

An item-blind player betrays themself two ways:

1. **Gold accuracy near chance** — they cannot answer known items.
2. **Answer-distribution collapse** — a spammer types the same few
   globally frequent words regardless of item, so the *diversity* of
   their answer stream (distinct answers / total answers, a type-token
   ratio) is far below an honest player's, whose answers track the
   varied items they see.  The gap widens with data: an honest player
   keeps meeting new items and producing new words; a spammer's
   repertoire is fixed.

:class:`SpamDetector` fuses both signals into a score and a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import QualityError


@dataclass(frozen=True)
class SpamVerdict:
    """The detector's judgment of one player.

    Attributes:
        player_id: who was judged.
        score: spam score in [0, 1]; higher is more spammer-like.
        is_spammer: score above the detector threshold.
        gold_accuracy: observed gold accuracy (None without gold data).
        answer_diversity: distinct/total answer ratio (None with too
            few answers).
    """

    player_id: str
    score: float
    is_spammer: bool
    gold_accuracy: Optional[float]
    answer_diversity: Optional[float]


class SpamDetector:
    """Scores players for item-blindness.

    Args:
        threshold: spam score above which a player is flagged.
        min_answers: answers required before the diversity signal
            counts (type-token ratios are meaningless on tiny samples).
        min_gold: gold answers required before the gold signal counts.
        chance_accuracy: gold accuracy expected from blind guessing.
        diversity_pivot: diversity at or above which a player looks
            fully honest (honest streams typically exceed 0.4; spammers
            collapse toward k/total).
    """

    def __init__(self, threshold: float = 0.6, min_answers: int = 20,
                 min_gold: int = 3, chance_accuracy: float = 0.1,
                 diversity_pivot: float = 0.4) -> None:
        if not 0.0 < threshold < 1.0:
            raise QualityError(
                f"threshold must be in (0,1), got {threshold}")
        if not 0.0 < diversity_pivot <= 1.0:
            raise QualityError(
                f"diversity_pivot must be in (0,1], got "
                f"{diversity_pivot}")
        self.threshold = threshold
        self.min_answers = min_answers
        self.min_gold = min_gold
        self.chance_accuracy = chance_accuracy
        self.diversity_pivot = diversity_pivot
        self._answers: Dict[str, List[Hashable]] = {}
        self._gold: Dict[str, Tuple[int, int]] = {}

    def record_answer(self, player_id: str, answer: Hashable) -> None:
        """Feed one answer (any item)."""
        self._answers.setdefault(player_id, []).append(answer)

    def record_gold(self, player_id: str, correct: bool) -> None:
        """Feed one graded gold answer."""
        asked, right = self._gold.get(player_id, (0, 0))
        self._gold[player_id] = (asked + 1, right + (1 if correct else 0))

    def _diversity_signal(self, player_id: str) -> Optional[float]:
        answers = self._answers.get(player_id, ())
        if len(answers) < self.min_answers:
            return None
        return len(set(answers)) / len(answers)

    def _gold_signal(self, player_id: str) -> Optional[float]:
        asked, right = self._gold.get(player_id, (0, 0))
        if asked < self.min_gold:
            return None
        return right / asked

    def judge(self, player_id: str) -> SpamVerdict:
        """Score one player with whatever signals are available.

        With no usable signal the score is 0.5 (unknown) and the player
        is not flagged — innocent until data.
        """
        diversity = self._diversity_signal(player_id)
        gold = self._gold_signal(player_id)
        parts: List[float] = []
        if gold is not None:
            # 1.0 when at chance, 0.0 when perfect.
            span = max(1e-9, 1.0 - self.chance_accuracy)
            parts.append(min(1.0, max(0.0, (1.0 - gold) / span)))
        if diversity is not None:
            # Collapsed repertoires are spammy; diversity at or above
            # the pivot reads as honest.
            parts.append(1.0 - min(1.0, diversity / self.diversity_pivot))
        if not parts:
            return SpamVerdict(player_id=player_id, score=0.5,
                               is_spammer=False, gold_accuracy=gold,
                               answer_diversity=diversity)
        score = sum(parts) / len(parts)
        return SpamVerdict(player_id=player_id, score=score,
                           is_spammer=score > self.threshold,
                           gold_accuracy=gold,
                           answer_diversity=diversity)

    def judge_all(self) -> Dict[str, SpamVerdict]:
        """Judgments for every player seen by either signal."""
        players = set(self._answers) | set(self._gold)
        return {player_id: self.judge(player_id)
                for player_id in sorted(players)}

    def flagged(self) -> List[str]:
        """Players currently judged spammers."""
        return [player_id for player_id, verdict
                in self.judge_all().items() if verdict.is_spammer]
