"""Campaign health monitoring from the event stream.

A deployed human-computation service watches a few vital signs: the
agreement rate (a drop means confusing content or an adversary wave),
the spam-flag count, and throughput.  :class:`CampaignMonitor` consumes
round-level observations in time order, maintains sliding windows, and
raises typed alerts when a window degrades past its threshold.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import QualityError


class AlertKind(enum.Enum):
    """The vital signs the monitor watches."""

    LOW_AGREEMENT = "low_agreement"
    THROUGHPUT_DROP = "throughput_drop"
    SPAM_WAVE = "spam_wave"


@dataclass(frozen=True)
class Alert:
    """One raised alert."""

    kind: AlertKind
    at_s: float
    value: float
    threshold: float
    message: str


class CampaignMonitor:
    """Sliding-window vital signs with alerting.

    Args:
        window: rounds per sliding window.
        min_agreement: alert when the window's agreement rate drops
            below this.
        throughput_drop_factor: alert when the current window's
            rounds-per-second falls below this fraction of the best
            window seen so far.
        spam_flags_per_window: alert when this many distinct players
            are flagged within one window.
        cooldown_s: minimum time between alerts of the same kind.
        events: optional :class:`~repro.core.events.EventLog`-style
            sink; every raised alert is appended to it as a
            ``quality_alert`` event, putting quality alerting on the
            same replayable stream as the engine's own events.
        game: game label stamped on emitted events.
    """

    def __init__(self, window: int = 50, min_agreement: float = 0.4,
                 throughput_drop_factor: float = 0.3,
                 spam_flags_per_window: int = 3,
                 cooldown_s: float = 600.0,
                 events=None, game: str = "campaign") -> None:
        if window < 5:
            raise QualityError(f"window must be >= 5, got {window}")
        if not 0.0 < min_agreement < 1.0:
            raise QualityError(
                f"min_agreement must be in (0,1), got {min_agreement}")
        if not 0.0 < throughput_drop_factor < 1.0:
            raise QualityError(
                "throughput_drop_factor must be in (0,1), got "
                f"{throughput_drop_factor}")
        self.window = window
        self.min_agreement = min_agreement
        self.throughput_drop_factor = throughput_drop_factor
        self.spam_flags_per_window = spam_flags_per_window
        self.cooldown_s = cooldown_s
        self.events = events
        self.game = game
        self._rounds: Deque[Tuple[float, bool]] = deque(maxlen=window)
        self._flags: Deque[Tuple[float, str]] = deque()
        self._alerts: List[Alert] = []
        self._last_alert_at: Dict[AlertKind, float] = {}
        self._best_rate: float = 0.0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe_round(self, at_s: float, agreed: bool) -> List[Alert]:
        """Feed one round; returns every alert that fires now.

        Both vital signs are evaluated on every round — a firing
        agreement alert must not mask a simultaneous throughput breach
        (nor skip the throughput check's best-rate bookkeeping).
        """
        self._rounds.append((at_s, agreed))
        fired = [self._check_agreement(at_s),
                 self._check_throughput(at_s)]
        return [alert for alert in fired if alert is not None]

    def record_round(self, at_s: float, agreed: bool) -> Optional[Alert]:
        """Single-alert compatibility wrapper over
        :meth:`observe_round`; returns the first fired alert, if any."""
        alerts = self.observe_round(at_s, agreed)
        return alerts[0] if alerts else None

    def record_spam_flag(self, at_s: float,
                         player_id: str) -> Optional[Alert]:
        """Feed one spam-flag event."""
        self._flags.append((at_s, player_id))
        horizon = at_s - 3600.0
        while self._flags and self._flags[0][0] < horizon:
            self._flags.popleft()
        distinct = {player for _, player in self._flags}
        if len(distinct) >= self.spam_flags_per_window:
            return self._raise(AlertKind.SPAM_WAVE, at_s,
                               float(len(distinct)),
                               float(self.spam_flags_per_window),
                               f"{len(distinct)} players flagged "
                               "within the last hour")
        return None

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def agreement_rate(self, strict: bool = True) -> Optional[float]:
        """Current window agreement rate.

        With ``strict=True`` (the alerting default) the rate is None
        until the window fills, so alerts never fire on thin evidence.
        ``strict=False`` returns the partial-window value as soon as
        one round has landed — what an early-campaign dashboard wants.
        """
        if not self._rounds:
            return None
        if strict and len(self._rounds) < self.window:
            return None
        agreed = sum(1 for _, ok in self._rounds if ok)
        return agreed / len(self._rounds)

    def rounds_per_second(self, strict: bool = True) -> Optional[float]:
        """Current window round rate.

        Same ``strict`` semantics as :meth:`agreement_rate`; the
        non-strict value needs at least two rounds spanning nonzero
        time.
        """
        if strict and len(self._rounds) < self.window:
            return None
        if len(self._rounds) < 2:
            return None
        start = self._rounds[0][0]
        end = self._rounds[-1][0]
        if end <= start:
            return None
        return len(self._rounds) / (end - start)

    def _check_agreement(self, at_s: float) -> Optional[Alert]:
        rate = self.agreement_rate()
        if rate is None or rate >= self.min_agreement:
            return None
        return self._raise(AlertKind.LOW_AGREEMENT, at_s, rate,
                           self.min_agreement,
                           f"window agreement rate {rate:.2f} below "
                           f"{self.min_agreement:.2f}")

    def _check_throughput(self, at_s: float) -> Optional[Alert]:
        rate = self.rounds_per_second()
        if rate is None:
            return None
        if rate > self._best_rate:
            self._best_rate = rate
            return None
        floor = self._best_rate * self.throughput_drop_factor
        if rate >= floor:
            return None
        return self._raise(AlertKind.THROUGHPUT_DROP, at_s, rate,
                           floor,
                           f"round rate {rate:.3f}/s fell below "
                           f"{floor:.3f}/s")

    def _raise(self, kind: AlertKind, at_s: float, value: float,
               threshold: float, message: str) -> Optional[Alert]:
        last = self._last_alert_at.get(kind)
        if last is not None and at_s - last < self.cooldown_s:
            return None
        alert = Alert(kind=kind, at_s=at_s, value=value,
                      threshold=threshold, message=message)
        self._alerts.append(alert)
        self._last_alert_at[kind] = at_s
        if self.events is not None:
            self.events.append(at_s, "quality_alert",
                               kind=kind.value, value=value,
                               threshold=threshold, message=message,
                               game=self.game)
        return alert

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        return list(self._alerts)

    def alerts_of(self, kind: AlertKind) -> List[Alert]:
        return [a for a in self._alerts if a.kind is kind]

    def healthy(self) -> bool:
        """No alert has fired."""
        return not self._alerts
