"""Dataset export: turning campaign output into shareable artifacts.

The product of a human-computation system is a dataset — image labels,
object boxes, common-sense facts, transcriptions.  This module collects
each game's verified output into a single JSON-serializable document
with provenance (contributor counts, agreement support, timestamps) and
writes/reads it from disk.

The document format is stable and versioned::

    {
      "format": "repro-dataset",
      "version": 1,
      "kind": "image-labels" | "object-locations" | "facts"
              | "transcriptions" | "music-tags",
      "records": [...],
      "stats": {...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.aggregation.boxes import box_from_points
from repro.errors import ReproError

FORMAT = "repro-dataset"
VERSION = 1


class ExportError(ReproError):
    """A dataset document is malformed or mismatched."""


def _document(kind: str, records: List[Dict[str, Any]],
              stats: Dict[str, Any]) -> Dict[str, Any]:
    return {"format": FORMAT, "version": VERSION, "kind": kind,
            "records": records, "stats": stats}


def export_image_labels(game) -> Dict[str, Any]:
    """Export an :class:`~repro.games.esp.EspGame`'s promoted labels.

    Each record carries the label's agreement support and whether the
    ground-truth oracle judges it relevant (synthetic corpora only).
    """
    records = []
    for item_id, labels in sorted(game.good_labels().items()):
        for label in labels:
            records.append({
                "image_id": item_id,
                "label": label,
                "support": game.taboo.agreement_count(item_id, label),
                "relevant": game.corpus.relevance(item_id, label),
            })
    stats = {
        "images_labeled": len(game.good_labels()),
        "labels": len(records),
        "precision": game.label_precision(),
        "rounds_played": game.rounds_played,
    }
    return _document("image-labels", records, stats)


def export_object_locations(game) -> Dict[str, Any]:
    """Export a :class:`~repro.games.peekaboom.PeekaboomGame`'s
    consensus object boxes (from verified reveal clouds)."""
    records = []
    for (image_id, word), contributions in sorted(
            game.verified_locations().items()):
        points = [(c.value("x"), c.value("y")) for c in contributions]
        radius = max(c.value("radius") for c in contributions)
        box = box_from_points(points, trim=0.1, pad=radius * 0.5)
        records.append({
            "image_id": image_id,
            "word": word,
            "box": {"x": box.x, "y": box.y, "w": box.w, "h": box.h},
            "reveals": len(points),
        })
    stats = {"objects_located": len(records)}
    return _document("object-locations", records, stats)


def export_facts(game) -> Dict[str, Any]:
    """Export a :class:`~repro.games.verbosity.VerbosityGame`'s
    certified common-sense facts."""
    records = []
    for fact in game.collected_facts(verified_only=True):
        records.append({
            "subject": fact.subject,
            "relation": fact.relation.value,
            "object": fact.obj,
            "sentence": fact.render(),
            "true": fact.true,
        })
    stats = {
        "facts": len(records),
        "accuracy": game.fact_accuracy(verified_only=True),
    }
    return _document("facts", records, stats)


def export_transcriptions(service) -> Dict[str, Any]:
    """Export a :class:`~repro.captcha.recaptcha.ReCaptchaService`'s
    resolved words."""
    records = []
    for word_id, text in sorted(service.resolved_words().items()):
        truth = service.corpus.word(word_id).truth
        records.append({
            "word_id": word_id,
            "transcription": text,
            "correct": text == truth,
        })
    stats = {
        "resolved": len(records),
        "accuracy": service.resolution_accuracy(),
        "ocr_baseline": service.ocr_baseline_accuracy(),
    }
    return _document("transcriptions", records, stats)


def export_music_tags(game) -> Dict[str, Any]:
    """Export a :class:`~repro.games.tagatune.TagATuneGame`'s verified
    clip tags."""
    records = []
    for clip_id, tags in sorted(game.verified_tags().items()):
        for tag in tags:
            records.append({"clip_id": clip_id, "tag": tag})
    stats = {"clips_tagged": len(game.verified_tags()),
             "tags": len(records),
             "precision": game.tag_precision()}
    return _document("music-tags", records, stats)


def save_dataset(document: Dict[str, Any],
                 path: Union[str, Path]) -> None:
    """Write a dataset document to a JSON file."""
    if document.get("format") != FORMAT:
        raise ExportError(
            f"not a {FORMAT} document: {document.get('format')!r}")
    Path(path).write_text(json.dumps(document, indent=2,
                                     sort_keys=True))


def load_dataset(path: Union[str, Path],
                 expect_kind: str = None) -> Dict[str, Any]:
    """Read a dataset document back, validating format and kind."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ExportError(f"malformed dataset file: {exc}") from None
    if document.get("format") != FORMAT:
        raise ExportError(
            f"not a {FORMAT} document: {document.get('format')!r}")
    if document.get("version") != VERSION:
        raise ExportError(
            f"unsupported version: {document.get('version')!r}")
    if expect_kind is not None and document.get("kind") != expect_kind:
        raise ExportError(
            f"expected kind {expect_kind!r}, got "
            f"{document.get('kind')!r}")
    return document
