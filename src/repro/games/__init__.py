"""Concrete games built on the core templates.

Each module binds a template to a corpus and a simulated-player adapter:

- :mod:`repro.games.esp` — the ESP Game (output-agreement image
  labeling), including taboo words and recorded single-player mode.
- :mod:`repro.games.peekaboom` — Peekaboom (inversion-problem object
  location; custom engine because clues are pixel reveals, not words).
- :mod:`repro.games.verbosity` — Verbosity (inversion-problem
  common-sense facts).
- :mod:`repro.games.tagatune` — TagATune (input-agreement music
  annotation).
- :mod:`repro.games.matchin` — Matchin (pairwise image preference).
- :mod:`repro.games.squigl` — Squigl (object outline tracing).
- :mod:`repro.games.phetch` — Phetch (certified image descriptions via
  retrieval).
"""

from repro.games.esp import EspAgent, EspGame
from repro.games.peekaboom import BoomAgent, PeekAgent, PeekaboomGame
from repro.games.verbosity import (DescriberAgent, GuesserAgent,
                                   VerbosityGame)
from repro.games.tagatune import TagATuneAgent, TagATuneGame
from repro.games.matchin import MatchinGame, appeal_score
from repro.games.squigl import SquiglGame
from repro.games.phetch import (PhetchDescriber, PhetchGame,
                                PhetchSeeker)

__all__ = [
    "EspAgent", "EspGame",
    "BoomAgent", "PeekAgent", "PeekaboomGame",
    "DescriberAgent", "GuesserAgent", "VerbosityGame",
    "TagATuneAgent", "TagATuneGame",
    "MatchinGame", "appeal_score",
    "SquiglGame",
    "PhetchDescriber", "PhetchGame", "PhetchSeeker",
]
