"""Verbosity: collecting common-sense facts via an inversion problem.

The *narrator* (describer) holds a secret word and sends clues using fixed
templates ("it is a kind of ...", "it is related to ..."); the *guesser*
must name the word.  A correct guess certifies the clues as facts about
the word — the game's useful output is a common-sense knowledge base.

Clues are rendered as ``"<relation>|<object>"`` strings through the
generic :class:`~repro.core.templates.InversionProblemGame`, and parsed
back into (subject, relation, object) triples for the fact store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import rng as _rng
from repro.core.entities import (Contribution,
                                 ContributionKind,
                                 RoundResult,
                                 TaskItem)
from repro.core.events import EventLog
from repro.core.templates import InversionProblemGame, TimedAnswer
from repro.corpus.facts import Fact, FactBase, Relation
from repro.errors import GameError
from repro.players.base import Behavior, PlayerModel
from repro.players.timing import ResponseTimer

_CLUE_SEP = "|"


def render_clue(relation: Relation, obj: str) -> str:
    """Encode a clue as the template's textual answer form."""
    return f"{relation.value}{_CLUE_SEP}{obj}"


def parse_clue(text: str) -> Tuple[Relation, str]:
    """Decode a clue string back into (relation, object)."""
    try:
        relation_value, obj = text.split(_CLUE_SEP, 1)
    except ValueError:
        raise GameError(f"malformed clue: {text!r}") from None
    for relation in Relation:
        if relation.value == relation_value:
            return relation, obj
    raise GameError(f"unknown relation in clue: {text!r}")


class DescriberAgent:
    """The narrator: emits template clues about the secret word.

    High-skill narrators draw true facts from the fact base; with
    probability falling in skill they emit a known-false distractor.
    Adversarial narrators emit only distractors.
    """

    def __init__(self, model: PlayerModel, facts: FactBase, rng) -> None:
        self.model = model
        self.player_id = model.player_id
        self.facts = facts
        self._rng = _rng.make_rng(rng)
        self._timer = ResponseTimer(model, first_latency_s=3.0,
                                    gap_mean_s=4.0)

    def give_clues(self, item: TaskItem,
                   secret: str) -> Sequence[TimedAnswer]:
        budget = max(2, self.model.answers_per_round(60.0) // 2)
        times = self._timer.schedule(self._rng, budget, limit_s=120.0)
        true_pool = [f for f in self.facts.true_facts(secret)
                     if f.obj != secret]
        false_pool = list(self.facts.false_facts(secret))
        self._rng.shuffle(true_pool)
        self._rng.shuffle(false_pool)
        adversarial = self.model.behavior in (Behavior.SPAMMER,
                                              Behavior.RANDOM_BOT)
        error_rate = 1.0 if adversarial else 0.3 * (1 - self.model.skill)
        clues: List[TimedAnswer] = []
        for at in times:
            use_false = (self._rng.random() < error_rate and false_pool)
            if use_false:
                fact = false_pool.pop()
            elif true_pool and not adversarial:
                fact = true_pool.pop()
            else:
                # Out of material: a human stops rather than inventing
                # known-false clues; an adversary stops when their junk
                # runs out.
                break
            clues.append(TimedAnswer(render_clue(fact.relation, fact.obj),
                                     at))
        return clues


class GuesserAgent:
    """The guesser: scores candidate words against the clue set.

    Candidates come from the categories of the clue objects (where true
    facts live); each candidate scores one point per clue that is true of
    it, and the guesser names the best-scoring known words.
    """

    def __init__(self, model: PlayerModel, facts: FactBase, rng,
                 max_guesses: int = 4) -> None:
        self.model = model
        self.player_id = model.player_id
        self.facts = facts
        self._rng = _rng.make_rng(rng)
        self.max_guesses = max_guesses

    def guess_from_clues(self, item: TaskItem,
                         clues: Sequence[str]) -> Sequence[str]:
        vocabulary = self.facts.vocabulary
        parsed = [parse_clue(text) for text in clues]
        candidates: Dict[str, float] = {}
        for relation, obj in parsed:
            try:
                obj_word = vocabulary.word(obj)
            except Exception:
                continue
            for candidate in vocabulary.category_words(obj_word.category):
                if candidate.text == obj or not self.model.knows(candidate):
                    continue
                if self.facts.has_fact(candidate.text, relation, obj):
                    # The clue is literally one of the candidate's own
                    # facts — strong identification.
                    gain = 2.0
                elif self.facts.is_true(candidate.text, relation, obj):
                    gain = 0.4
                else:
                    gain = 0.1
                candidates[candidate.text] = (
                    candidates.get(candidate.text, 0.0) + gain)
        for text in list(candidates):
            noise = self._rng.gauss(0.0, 0.8 * (1 - self.model.skill))
            candidates[text] += noise
        ranked = sorted(candidates.items(), key=lambda kv: -kv[1])
        return [text for text, _ in ranked[:self.max_guesses]]


class VerbosityGame:
    """A Verbosity campaign: collect facts certified by completed rounds.

    Args:
        facts: the ground-truth fact base (provides word universe and
            lets the evaluator score collected facts).
        round_time_limit_s: per-round cap.
        seed: campaign RNG seed.
    """

    def __init__(self, facts: FactBase, round_time_limit_s: float = 120.0,
                 seed: _rng.SeedLike = 0,
                 secret_rank_limit: Optional[int] = None) -> None:
        self.facts = facts
        self._rng = _rng.make_rng(seed)
        # Real Verbosity used common words as secrets; limiting the
        # frequency rank keeps secrets inside most players' vocabulary.
        self.secret_rank_limit = secret_rank_limit
        self._template = InversionProblemGame(
            round_time_limit_s=round_time_limit_s,
            contribution_kind=ContributionKind.FACT,
            guess_interval_s=2.0)
        self.events = EventLog()
        self.contributions: List[Contribution] = []

    def make_describer(self, model: PlayerModel) -> DescriberAgent:
        return DescriberAgent(
            model, self.facts,
            _rng.derive(self._rng, f"desc:{model.player_id}"))

    def make_guesser(self, model: PlayerModel) -> GuesserAgent:
        return GuesserAgent(
            model, self.facts,
            _rng.derive(self._rng, f"guess:{model.player_id}"))

    def play_round(self, describer: DescriberAgent, guesser: GuesserAgent,
                   secret: str, now: float = 0.0) -> RoundResult:
        """One narrator/guesser round about ``secret``."""
        item = TaskItem(item_id=f"word:{secret}", kind="word",
                        payload={"secret": secret})
        result = self._template.play_round(item, describer, guesser,
                                           secret, now=now)
        self.contributions.extend(result.contributions)
        self.events.append(now + result.elapsed_s, "verbosity_round",
                           secret=secret,
                           completed=result.succeeded,
                           clues=len(result.detail.get("clues", [])))
        return result

    def play_match(self, model_a: PlayerModel, model_b: PlayerModel,
                   rounds: int = 6, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """Alternating-role match over random secret words."""
        results: List[RoundResult] = []
        clock = start_s
        vocabulary = self.facts.vocabulary
        rank_cap = min(self.secret_rank_limit or len(vocabulary),
                       len(vocabulary))
        for index in range(rounds):
            secret = vocabulary.by_rank(
                self._rng.randint(1, rank_cap)).text
            if index % 2 == 0:
                pair = (self.make_describer(model_a),
                        self.make_guesser(model_b))
            else:
                pair = (self.make_describer(model_b),
                        self.make_guesser(model_a))
            result = self.play_round(pair[0], pair[1], secret, now=clock)
            results.append(result)
            clock += result.elapsed_s + 2.0
        return results

    def collected_facts(self, verified_only: bool = True) -> List[Fact]:
        """Facts harvested from clue contributions.

        Each clue contribution is parsed into a triple; its ``true`` flag
        is looked up in the ground-truth base so callers can score the
        collection.
        """
        out: List[Fact] = []
        for contribution in self.contributions:
            if verified_only and not contribution.verified:
                continue
            relation, obj = parse_clue(contribution.value("clue"))
            subject = contribution.value("secret")
            out.append(Fact(subject=subject, relation=relation, obj=obj,
                            true=self.facts.is_true(subject, relation,
                                                    obj)))
        return out

    def fact_accuracy(self, verified_only: bool = True) -> float:
        """Fraction of collected facts that are ground-truth true."""
        facts = self.collected_facts(verified_only)
        if not facts:
            return 0.0
        return sum(1 for f in facts if f.true) / len(facts)
