"""Squigl: object outline tracing (output-agreement on regions).

Both players see the same image and the same word and each traces the
word's referent; when the traces agree (high overlap) the consensus
region is a verified segmentation.  The simulated trace is a bounding box
around the ground-truth object, perturbed by skill-dependent jitter in
position and scale; adversaries trace random regions.
"""

from __future__ import annotations

from typing import List, Optional

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundOutcome, RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.corpus.images import Image, ImageCorpus
from repro.corpus.objects import BoundingBox, ObjectLayout
from repro.errors import GameError
from repro.players.base import Behavior, PlayerModel


def _jittered_box(truth: BoundingBox, image: Image, skill: float,
                  rng) -> BoundingBox:
    """A human trace of ``truth``: position and scale jitter fall with skill."""
    pos_sigma = (0.02 + 0.25 * (1.0 - skill))
    scale_sigma = (0.03 + 0.3 * (1.0 - skill))
    dx = rng.gauss(0.0, pos_sigma) * truth.w
    dy = rng.gauss(0.0, pos_sigma) * truth.h
    sw = max(0.3, 1.0 + rng.gauss(0.0, scale_sigma))
    sh = max(0.3, 1.0 + rng.gauss(0.0, scale_sigma))
    box = BoundingBox(truth.x + dx, truth.y + dy,
                      truth.w * sw, truth.h * sh)
    return box.clipped(image.width, image.height)


def _random_box(image: Image, rng) -> BoundingBox:
    w = rng.uniform(0.1, 0.5) * image.width
    h = rng.uniform(0.1, 0.5) * image.height
    return BoundingBox(rng.uniform(0, image.width - w),
                       rng.uniform(0, image.height - h), w, h)


class SquiglGame:
    """A Squigl campaign collecting consensus object outlines.

    Args:
        corpus: image corpus.
        layout: ground-truth object layout.
        agreement_iou: minimum trace overlap that counts as agreement.
        seed: campaign RNG seed.
    """

    def __init__(self, corpus: ImageCorpus, layout: ObjectLayout,
                 agreement_iou: float = 0.35,
                 seed: _rng.SeedLike = 0) -> None:
        if not 0.0 < agreement_iou <= 1.0:
            raise GameError(
                f"agreement_iou must be in (0,1], got {agreement_iou}")
        self.corpus = corpus
        self.layout = layout
        self.agreement_iou = agreement_iou
        self._rng = _rng.make_rng(seed)
        self.events = EventLog()
        self.contributions: List[Contribution] = []

    def trace_for(self, model: PlayerModel, image: Image,
                  word: str, rng) -> BoundingBox:
        """The box this player would trace for (image, word)."""
        if model.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            return _random_box(image, rng)
        truth = self.layout.object_for(image.image_id, word).box
        return _jittered_box(truth, image, model.skill, rng)

    def play_round(self, model_a: PlayerModel, model_b: PlayerModel,
                   image: Optional[Image] = None,
                   word: Optional[str] = None,
                   now: float = 0.0) -> RoundResult:
        """One tracing round; agreement certifies the consensus box."""
        if image is None:
            image = self._rng.choice(list(self.corpus.images))
        if word is None:
            obj = self._rng.choice(list(
                self.layout.objects_in(image.image_id)))
            word = obj.word
        if not self.layout.has_object(image.image_id, word):
            raise GameError(
                f"word {word!r} has no object in image {image.image_id!r}")
        rng_a = _rng.derive(self._rng, f"trace:{model_a.player_id}")
        rng_b = _rng.derive(self._rng, f"trace:{model_b.player_id}")
        box_a = self.trace_for(model_a, image, word, rng_a)
        box_b = self.trace_for(model_b, image, word, rng_b)
        iou = box_a.iou(box_b)
        agreed = iou >= self.agreement_iou
        item = TaskItem(item_id=image.image_id, kind="image",
                        payload={"word": word})
        contributions: List[Contribution] = []
        if agreed:
            consensus = self._intersection_box(box_a, box_b)
            contributions.append(Contribution(
                kind=ContributionKind.TRACE, item_id=image.image_id,
                data={"word": word, "x": consensus.x, "y": consensus.y,
                      "w": consensus.w, "h": consensus.h, "iou": iou},
                players=(model_a.player_id, model_b.player_id),
                verified=True, timestamp=now + 15.0))
            self.contributions.extend(contributions)
        self.events.append(now, "squigl_round", word=word,
                           image=image.image_id, agreed=agreed, iou=iou)
        outcome = RoundOutcome.AGREED if agreed else RoundOutcome.FAILED
        return RoundResult(item=item, outcome=outcome,
                           contributions=contributions, elapsed_s=15.0,
                           detail={"iou": iou, "word": word})

    @staticmethod
    def _intersection_box(a: BoundingBox, b: BoundingBox) -> BoundingBox:
        x1 = max(a.x, b.x)
        y1 = max(a.y, b.y)
        x2 = min(a.x2, b.x2)
        y2 = min(a.y2, b.y2)
        if x2 <= x1 or y2 <= y1:
            # Degenerate overlap: fall back to the union's bounding box.
            x1 = min(a.x, b.x)
            y1 = min(a.y, b.y)
            x2 = max(a.x2, b.x2)
            y2 = max(a.y2, b.y2)
        return BoundingBox(x1, y1, x2 - x1, y2 - y1)

    def play_match(self, model_a: PlayerModel, model_b: PlayerModel,
                   rounds: int = 10, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """A multi-round tracing match."""
        results = []
        clock = start_s
        for _ in range(rounds):
            result = self.play_round(model_a, model_b, now=clock)
            results.append(result)
            clock += result.elapsed_s + 1.0
        return results

    def consensus_quality(self) -> float:
        """Mean IoU of verified consensus boxes against ground truth."""
        scores = []
        for contribution in self.contributions:
            if not contribution.verified:
                continue
            truth = self.layout.object_for(
                contribution.item_id, contribution.value("word")).box
            consensus = BoundingBox(contribution.value("x"),
                                    contribution.value("y"),
                                    contribution.value("w"),
                                    contribution.value("h"))
            scores.append(consensus.iou(truth))
        if not scores:
            return 0.0
        return sum(scores) / len(scores)
