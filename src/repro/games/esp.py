"""The ESP Game: output-agreement image labeling.

Two randomly matched players see the same image and type guesses; when
they agree on a non-taboo word, the word becomes a verified label for the
image.  After a label has been matched ``promotion_threshold`` times it
turns taboo, forcing future pairs toward less obvious labels.

This module provides:

- :class:`EspAgent` — adapts a :class:`~repro.players.base.PlayerModel`
  to the :class:`~repro.core.templates.OutputAgreementPlayer` protocol.
- :class:`EspGame` — a campaign object owning the corpus, the taboo
  tracker, scoring and the event log; it plays sessions between player
  models and accumulates verified labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.core.matchmaking import Lobby
from repro.core.scoring import ScoreKeeper, ScoringRules
from repro.core.session import GameSession, SessionConfig, SessionResult
from repro.core.taboo import TabooTracker
from repro.core.templates import OutputAgreementGame, TimedAnswer
from repro.corpus.images import ImageCorpus
from repro.errors import GameError
from repro.platform.leaderboard import Leaderboard
from repro.players.adversarial import answer_stream
from repro.players.base import PlayerModel
from repro.players.timing import ResponseTimer


class EspAgent:
    """A player model driving the output-agreement protocol for images.

    Args:
        model: the simulated human.
        corpus: the image corpus items refer into.
        rng: per-agent random stream.
        round_time_s: used to budget the number of guesses.
    """

    def __init__(self, model: PlayerModel, corpus: ImageCorpus, rng,
                 round_time_s: float = 150.0) -> None:
        self.model = model
        self.player_id = model.player_id
        self.corpus = corpus
        self._rng = _rng.make_rng(rng)
        self.round_time_s = round_time_s
        self._timer = ResponseTimer(model)

    def enter_guesses(self, item: TaskItem,
                      taboo: frozenset) -> Sequence[TimedAnswer]:
        """Timed guess stream for one round on ``item``."""
        image = self.corpus.image(item.item_id)
        budget = self.model.answers_per_round(self.round_time_s)
        texts = answer_stream(self.model, image.salience,
                              self.corpus.vocabulary, self._rng, budget,
                              exclude=taboo)
        times = self._timer.schedule(self._rng, len(texts),
                                     limit_s=self.round_time_s)
        return [TimedAnswer(text, at) for text, at in zip(texts, times)]


class EspGame:
    """An ESP Game campaign.

    Args:
        corpus: images to label.
        promotion_threshold: agreements before a label is good/taboo.
        session_config: session timing policy.
        scoring: point rules.
        seed: campaign RNG seed.
        use_taboo: disable to measure the taboo mechanism's effect (T4).
    """

    def __init__(self, corpus: ImageCorpus, promotion_threshold: int = 2,
                 session_config: SessionConfig = SessionConfig(),
                 scoring: ScoringRules = ScoringRules(),
                 seed: _rng.SeedLike = 0, use_taboo: bool = True,
                 round_time_limit_s: Optional[float] = None) -> None:
        self.corpus = corpus
        self._rng = _rng.make_rng(seed)
        self.session_config = session_config
        self.taboo = TabooTracker(promotion_threshold=promotion_threshold)
        self.use_taboo = use_taboo
        self.scorekeeper = ScoreKeeper(rules=scoring)
        # Timestamped boards (the real game showed hourly, daily and
        # all-time leaderboards).
        self.leaderboard = Leaderboard()
        self.events = EventLog()
        self.lobby = Lobby(seed=_rng.derive(self._rng, "lobby"))
        # By default a round may run the whole session; a tighter cap
        # makes pairs give up (time out) on images they cannot match.
        self.round_time_limit_s = (round_time_limit_s
                                   or session_config.duration_s)
        self._template = OutputAgreementGame(
            round_time_limit_s=self.round_time_limit_s,
            contribution_kind=ContributionKind.LABEL)
        self.contributions: List[Contribution] = []
        self._rounds_played = 0

    def make_agent(self, model: PlayerModel) -> EspAgent:
        """Build the protocol adapter for a player model."""
        return EspAgent(model, self.corpus,
                        _rng.derive(self._rng, f"agent:{model.player_id}"),
                        round_time_s=self.round_time_limit_s)

    def _item_stream(self, rng) -> Iterable[TaskItem]:
        while True:
            image = rng.choice(list(self.corpus.images))
            yield TaskItem(item_id=image.image_id, kind="image")

    def play_session(self, model_a: PlayerModel, model_b: PlayerModel,
                     start_s: float = 0.0) -> SessionResult:
        """Play one timed session between two player models."""
        if model_a.player_id == model_b.player_id:
            raise GameError("a pair needs two distinct players")
        agent_a = self.make_agent(model_a)
        agent_b = self.make_agent(model_b)
        return self.play_session_agents(agent_a, agent_b, start_s)

    def play_single_session(self, model: PlayerModel,
                            start_s: float = 0.0) -> SessionResult:
        """Single-player mode: pair the player with a recorded partner.

        The paper's low-traffic fallback — the lone player's guesses are
        only verified when they match what a previously recorded player
        entered for the same image.  Requires at least one recorded
        session in the lobby's bank (see ``record_sessions``).
        """
        partner = self.lobby.recorded_partner()
        if partner is None:
            raise GameError(
                "no recorded sessions available for single-player mode")
        return self.play_session_agents(self.make_agent(model), partner,
                                        start_s=start_s)

    def play_session_agents(self, agent_a, agent_b,
                            start_s: float = 0.0,
                            record: bool = False) -> SessionResult:
        """Play one session between two protocol agents.

        Accepts anything satisfying the output-agreement protocol, which
        is how recorded partners (:class:`RecordedPartner`) join.  With
        ``record=True`` both players' guess streams are banked in the
        lobby for future single-player sessions.
        """
        session = GameSession(config=self.session_config,
                              scorekeeper=self.scorekeeper,
                              start_s=start_s)
        item_rng = _rng.derive(self._rng, "items")

        def play_round(item: TaskItem, now: float) -> RoundResult:
            taboo = (self.taboo.taboo_for(item.item_id)
                     if self.use_taboo else frozenset())
            result = self._template.play_round(item, agent_a, agent_b,
                                               taboo=taboo, now=now)
            self._absorb_round(item, result, now)
            if record:
                for agent, key in ((agent_a, "timed_a"),
                                   (agent_b, "timed_b")):
                    self.lobby.record_session(
                        agent.player_id, item.item_id,
                        [TimedAnswer(text, at) for text, at
                         in result.detail.get(key, [])])
            return result

        result = session.run(
            players=[agent_a.player_id, agent_b.player_id],
            items=self._item_stream(item_rng), play_round=play_round)
        # Timestamped boards: replay the session clock over the rounds.
        clock = start_s
        for round_result in result.rounds:
            clock += round_result.elapsed_s
            for player_id, earned in round_result.points.items():
                self.leaderboard.record(player_id, earned, clock)
            clock += self.session_config.inter_round_gap_s
        self.events.append(start_s, "session",
                           players=[agent_a.player_id, agent_b.player_id],
                           rounds=len(result.rounds),
                           successes=result.successes)
        return result

    def _absorb_round(self, item: TaskItem, result: RoundResult,
                      now: float) -> None:
        self._rounds_played += 1
        self.contributions.extend(result.contributions)
        for contribution in result.contributions:
            if not contribution.verified:
                continue
            label = contribution.value("label")
            promoted = self.taboo.record_agreement(item.item_id, label)
            self.events.append(contribution.timestamp, "label",
                               item=item.item_id, label=label,
                               players=list(contribution.players))
            if promoted:
                self.events.append(contribution.timestamp, "promotion",
                                   item=item.item_id, label=label)

    @property
    def rounds_played(self) -> int:
        return self._rounds_played

    def good_labels(self) -> Dict[str, Tuple[str, ...]]:
        """item -> labels promoted by repeated agreement (the output)."""
        return self.taboo.all_promoted()

    def raw_labels(self) -> Dict[str, List[str]]:
        """item -> every matched label (verified, pre-promotion)."""
        out: Dict[str, List[str]] = {}
        for contribution in self.contributions:
            if contribution.verified:
                out.setdefault(contribution.item_id, []).append(
                    contribution.value("label"))
        return out

    def label_precision(self, promoted_only: bool = True,
                        threshold: float = 0.0) -> float:
        """Fraction of collected labels that are ground-truth relevant."""
        total = 0
        correct = 0
        if promoted_only:
            source = [(item, label)
                      for item, labels in self.good_labels().items()
                      for label in labels]
        else:
            source = [(c.item_id, c.value("label"))
                      for c in self.contributions if c.verified]
        for item_id, label in source:
            total += 1
            if self.corpus.relevance(item_id, label, threshold):
                correct += 1
        if total == 0:
            return 0.0
        return correct / total
