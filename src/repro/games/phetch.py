"""Phetch: collecting image descriptions via retrieval.

One *describer* sees an image and writes a description; *seekers* use
the description to find that image among the corpus (in the real game,
through an image search engine).  A seeker clicking the right image
certifies the description — the game's output is validated natural-
language image captions (built to make the web accessible to the
visually impaired).

Simulation: a description is the describer's perceived tag set; seekers
score candidate images by how much of the description's salience they
carry and click their best guess.  Retrieval succeeds when the true
image outranks the distractors, which it does exactly when the
description is faithful — reproducing the game's certification logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundOutcome, RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.corpus.images import Image, ImageCorpus
from repro.errors import GameError
from repro.players.adversarial import answer_stream
from repro.players.base import PlayerModel


class PhetchDescriber:
    """Writes a description: the tags the player perceives."""

    def __init__(self, model: PlayerModel, corpus: ImageCorpus, rng,
                 description_words: int = 6) -> None:
        self.model = model
        self.player_id = model.player_id
        self.corpus = corpus
        self._rng = _rng.make_rng(rng)
        self.description_words = description_words

    def describe(self, image: Image) -> List[str]:
        """The description: an ordered list of perceived tags."""
        return answer_stream(self.model, image.salience,
                             self.corpus.vocabulary, self._rng,
                             self.description_words)


class PhetchSeeker:
    """Finds the described image among candidates.

    The seeker's search scores each candidate by the salience mass it
    assigns to the description words, perturbed by skill noise, and
    clicks the top candidates in order.
    """

    def __init__(self, model: PlayerModel, corpus: ImageCorpus, rng,
                 max_clicks: int = 3) -> None:
        self.model = model
        self.player_id = model.player_id
        self.corpus = corpus
        self._rng = _rng.make_rng(rng)
        self.max_clicks = max_clicks

    def search(self, description: Sequence[str],
               candidates: Sequence[Image]) -> List[str]:
        """Ranked image ids the seeker would click, best first."""
        if not description:
            return []
        scores: List[Tuple[str, float]] = []
        noise_scale = 0.15 * (1.0 - self.model.effective_skill())
        for image in candidates:
            relevance = sum(image.tag_salience(word)
                            for word in description)
            relevance += self._rng.gauss(0.0, noise_scale)
            scores.append((image.image_id, relevance))
        scores.sort(key=lambda kv: -kv[1])
        return [image_id for image_id, _ in scores[:self.max_clicks]]


class PhetchGame:
    """A Phetch campaign collecting certified image descriptions.

    Args:
        corpus: image corpus.
        candidates: size of the search pool per round (the target plus
            distractors).
        round_time_s: nominal wall-clock per round (for throughput).
        seed: campaign RNG seed.
    """

    def __init__(self, corpus: ImageCorpus, candidates: int = 15,
                 round_time_s: float = 40.0,
                 seed: _rng.SeedLike = 0) -> None:
        if candidates < 2:
            raise GameError(
                f"need >= 2 candidate images, got {candidates}")
        if candidates > len(corpus):
            raise GameError(
                f"candidates ({candidates}) exceeds corpus size "
                f"({len(corpus)})")
        self.corpus = corpus
        self.candidates = candidates
        self.round_time_s = round_time_s
        self._rng = _rng.make_rng(seed)
        self.events = EventLog()
        self.contributions: List[Contribution] = []

    def make_describer(self, model: PlayerModel) -> PhetchDescriber:
        return PhetchDescriber(
            model, self.corpus,
            _rng.derive(self._rng, f"desc:{model.player_id}"))

    def make_seeker(self, model: PlayerModel) -> PhetchSeeker:
        return PhetchSeeker(
            model, self.corpus,
            _rng.derive(self._rng, f"seek:{model.player_id}"))

    def play_round(self, describer: PhetchDescriber,
                   seekers: Sequence[PhetchSeeker],
                   image: Optional[Image] = None,
                   now: float = 0.0) -> RoundResult:
        """One describe-and-retrieve round.

        The first seeker to click the target certifies the description.
        """
        if not seekers:
            raise GameError("Phetch needs at least one seeker")
        if image is None:
            image = self._rng.choice(list(self.corpus.images))
        pool = [img for img in
                self._rng.sample(list(self.corpus.images),
                                 self.candidates)
                if img.image_id != image.image_id]
        pool = pool[:self.candidates - 1] + [image]
        self._rng.shuffle(pool)
        description = describer.describe(image)
        finder: Optional[str] = None
        clicks_used = 0
        for seeker in seekers:
            clicks = seeker.search(description, pool)
            clicks_used += len(clicks)
            if image.image_id in clicks:
                finder = seeker.player_id
                break
        found = finder is not None
        item = TaskItem(item_id=image.image_id, kind="image")
        contributions: List[Contribution] = []
        if description:
            contributions.append(Contribution(
                kind=ContributionKind.DESCRIPTION,
                item_id=image.image_id,
                data={"description": list(description),
                      "finder": finder},
                players=(describer.player_id,)
                + tuple(s.player_id for s in seekers),
                verified=found, timestamp=now + self.round_time_s))
            self.contributions.extend(contributions)
        self.events.append(now, "phetch_round", image=image.image_id,
                           found=found, clicks=clicks_used)
        outcome = (RoundOutcome.COMPLETED if found
                   else RoundOutcome.FAILED)
        return RoundResult(item=item, outcome=outcome,
                           contributions=contributions,
                           elapsed_s=self.round_time_s,
                           detail={"description": list(description),
                                   "finder": finder})

    def play_match(self, describer_model: PlayerModel,
                   seeker_models: Sequence[PlayerModel],
                   rounds: int = 6, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """A match: one describer against a seeker panel."""
        describer = self.make_describer(describer_model)
        seekers = [self.make_seeker(model) for model in seeker_models]
        results = []
        clock = start_s
        for _ in range(rounds):
            result = self.play_round(describer, seekers, now=clock)
            results.append(result)
            clock += result.elapsed_s + 2.0
        return results

    def certified_descriptions(self) -> Dict[str, List[List[str]]]:
        """image -> certified descriptions (lists of words)."""
        out: Dict[str, List[List[str]]] = {}
        for contribution in self.contributions:
            if contribution.verified:
                out.setdefault(contribution.item_id, []).append(
                    list(contribution.value("description")))
        return out

    def description_precision(self) -> float:
        """Fraction of certified description words that are relevant."""
        total = 0
        relevant = 0
        for image_id, descriptions in \
                self.certified_descriptions().items():
            image = self.corpus.image(image_id)
            for description in descriptions:
                for word in description:
                    total += 1
                    relevant += image.is_relevant(word)
        if total == 0:
            return 0.0
        return relevant / total

    def retrieval_rate(self) -> float:
        """Fraction of rounds where a seeker found the image."""
        rounds = self.events.of_kind("phetch_round")
        if not rounds:
            return 0.0
        return sum(e.data["found"] for e in rounds) / len(rounds)
