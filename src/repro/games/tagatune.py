"""TagATune: input-agreement music annotation.

Both players hear a clip (the same one, or two different ones), type
descriptions visible to each other, and vote *same* or *different*.  When
both votes are correct the exchanged descriptions become verified tags for
each player's own clip.  Input-agreement sidesteps the shared-vocabulary
requirement of output-agreement (players only need to *compare*, not
match), which is why TagATune works for music where exact word agreement
is rare.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.core.templates import (InputAgreementGame, TimedAnswer)
from repro.corpus.music import MusicCorpus
from repro.errors import GameError
from repro.players.adversarial import answer_stream, is_item_blind
from repro.players.base import PlayerModel
from repro.players.timing import ResponseTimer


class TagATuneAgent:
    """Adapts a player model to the input-agreement protocol for clips."""

    def __init__(self, model: PlayerModel, corpus: MusicCorpus, rng,
                 round_time_s: float = 30.0,
                 judge_threshold: float = 0.2) -> None:
        self.model = model
        self.player_id = model.player_id
        self.corpus = corpus
        self._rng = _rng.make_rng(rng)
        self.round_time_s = round_time_s
        self.judge_threshold = judge_threshold
        self._timer = ResponseTimer(model, first_latency_s=4.0,
                                    gap_mean_s=5.0)

    def describe(self, item: TaskItem) -> Sequence[TimedAnswer]:
        """Timed tags for the player's own clip."""
        clip = self.corpus.clip(item.item_id)
        budget = max(1, self.model.answers_per_round(self.round_time_s)
                     // 2)
        texts = answer_stream(self.model, clip.salience,
                              self.corpus.vocabulary, self._rng, budget)
        times = self._timer.schedule(self._rng, len(texts),
                                     limit_s=self.round_time_s)
        return [TimedAnswer(text, at) for text, at in zip(texts, times)]

    def judge_same(self, item: TaskItem,
                   partner_tags: Sequence[str]) -> bool:
        """Vote by overlap between partner tags and own clip's salience.

        The player checks how many of the partner's words ring true for
        their own clip; skill shrinks the judgment noise.  Item-blind
        adversaries vote at random.
        """
        if is_item_blind(self.model):
            return self._rng.random() < 0.5
        clip = self.corpus.clip(item.item_id)
        if not partner_tags:
            return self._rng.random() < 0.3
        hits = sum(1 for tag in partner_tags
                   if clip.tag_salience(tag) > 0.0)
        overlap = hits / len(partner_tags)
        noise = self._rng.gauss(0.0, 0.25 * (1 - self.model.skill))
        return overlap + noise >= self.judge_threshold


class TagATuneGame:
    """A TagATune campaign.

    Args:
        corpus: music clips.
        same_probability: fraction of rounds where both players get the
            same clip (real TagATune used ~0.5).
        round_time_limit_s: per-round cap.
        seed: campaign RNG seed.
    """

    def __init__(self, corpus: MusicCorpus, same_probability: float = 0.5,
                 round_time_limit_s: float = 30.0,
                 seed: _rng.SeedLike = 0) -> None:
        if not 0.0 <= same_probability <= 1.0:
            raise GameError(
                f"same_probability must be in [0,1], got "
                f"{same_probability}")
        self.corpus = corpus
        self.same_probability = same_probability
        self._rng = _rng.make_rng(seed)
        self._template = InputAgreementGame(
            round_time_limit_s=round_time_limit_s,
            contribution_kind=ContributionKind.LABEL)
        self.events = EventLog()
        self.contributions: List[Contribution] = []

    def make_agent(self, model: PlayerModel) -> TagATuneAgent:
        return TagATuneAgent(
            model, self.corpus,
            _rng.derive(self._rng, f"agent:{model.player_id}"),
            round_time_s=self._template.round_time_limit_s)

    def play_round(self, agent_a: TagATuneAgent, agent_b: TagATuneAgent,
                   now: float = 0.0) -> RoundResult:
        """One same-or-different round between two agents."""
        same = self._rng.random() < self.same_probability
        clip_a, clip_b = self.corpus.sample_pair(self._rng, same)
        item_a = TaskItem(item_id=clip_a.clip_id, kind="clip")
        item_b = TaskItem(item_id=clip_b.clip_id, kind="clip")
        result = self._template.play_round(item_a, item_b, agent_a,
                                           agent_b, same, now=now)
        self.contributions.extend(result.contributions)
        self.events.append(now + result.elapsed_s, "tagatune_round",
                           same=same, succeeded=result.succeeded,
                           clips=[clip_a.clip_id, clip_b.clip_id])
        return result

    def play_match(self, model_a: PlayerModel, model_b: PlayerModel,
                   rounds: int = 8, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """A multi-round match between two player models."""
        agent_a = self.make_agent(model_a)
        agent_b = self.make_agent(model_b)
        results = []
        clock = start_s
        for _ in range(rounds):
            result = self.play_round(agent_a, agent_b, now=clock)
            results.append(result)
            clock += result.elapsed_s + 2.0
        return results

    def verified_tags(self) -> Dict[str, List[str]]:
        """clip -> tags certified by correct same/different agreement."""
        out: Dict[str, List[str]] = {}
        for contribution in self.contributions:
            if contribution.verified:
                out.setdefault(contribution.item_id, []).append(
                    contribution.value("label"))
        return out

    def tag_precision(self) -> float:
        """Fraction of verified tags that are ground-truth relevant."""
        total = 0
        correct = 0
        for clip_id, tags in self.verified_tags().items():
            clip = self.corpus.clip(clip_id)
            for tag in tags:
                total += 1
                if clip.tag_salience(tag) > 0.0:
                    correct += 1
        if total == 0:
            return 0.0
        return correct / total
