"""Peekaboom: locating objects in images via an inversion problem.

*Boom* sees an image plus a target word and progressively reveals circular
regions of the image; *Peek* sees only the revealed regions and must type
the word.  A correct guess certifies the reveals, whose footprint is the
useful output: where the word's referent is.

The clue here is a pixel reveal, not text, so Peekaboom gets its own
engine rather than the generic text-clue
:class:`~repro.core.templates.InversionProblemGame`; the structure
(describer/guesser, completion certifies clues) is the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundOutcome, RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.corpus.images import Image, ImageCorpus
from repro.corpus.objects import BoundingBox, ObjectLayout
from repro.errors import ConfigError, GameError
from repro.players.base import Behavior, PlayerModel
from repro.players.timing import ResponseTimer


@dataclass(frozen=True)
class Reveal:
    """One circular reveal: center plus radius, at a time."""

    x: float
    y: float
    radius: float
    at_s: float


class BoomAgent:
    """The describer: reveals regions around the target object.

    Reveal centers are Gaussian around the object's center with spatial
    noise inversely related to skill; radii shrink over the round as Boom
    zeroes in.  Adversarial Boom players reveal uniformly random regions.
    """

    def __init__(self, model: PlayerModel, layout: ObjectLayout, rng,
                 reveal_radius: float = 40.0) -> None:
        self.model = model
        self.player_id = model.player_id
        self.layout = layout
        self._rng = _rng.make_rng(rng)
        self.reveal_radius = reveal_radius
        # Reveals are mouse clicks — far faster than typed answers.
        self._timer = ResponseTimer(model, first_latency_s=1.5,
                                    gap_mean_s=1.2)

    def give_reveals(self, image: Image, word: str,
                     limit_s: float) -> List[Reveal]:
        """Timed reveal sequence for (image, word)."""
        budget = self.model.answers_per_round(limit_s)
        times = self._timer.schedule(self._rng, budget, limit_s=limit_s)
        if self.model.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            return [Reveal(self._rng.uniform(0, image.width),
                           self._rng.uniform(0, image.height),
                           self.reveal_radius, at) for at in times]
        obj = self.layout.object_for(image.image_id, word)
        cx, cy = obj.box.center
        # Spatial noise: low-skill Boom players scatter reveals.
        sigma = (0.15 + 0.8 * (1.0 - self.model.skill)) * max(
            obj.box.w, obj.box.h)
        reveals = []
        for index, at in enumerate(times):
            shrink = max(0.5, 1.0 - 0.08 * index)
            reveals.append(Reveal(
                x=min(max(self._rng.gauss(cx, sigma), 0), image.width),
                y=min(max(self._rng.gauss(cy, sigma), 0), image.height),
                radius=self.reveal_radius * shrink, at_s=at))
        return reveals


class PeekAgent:
    """The guesser: infers the word from which objects the reveals hit.

    Args:
        min_evidence: reveals Peek must see before venturing a guess —
            a single small reveal is not recognizable, so guessing only
            starts once a few regions are open.
    """

    def __init__(self, model: PlayerModel, layout: ObjectLayout,
                 rng, min_evidence: int = 3) -> None:
        self.model = model
        self.player_id = model.player_id
        self.layout = layout
        self._rng = _rng.make_rng(rng)
        self.min_evidence = min_evidence

    def guess_from_reveals(self, image: Image,
                           reveals: Sequence[Reveal]) -> List[str]:
        """Candidate words ranked by revealed evidence.

        Evidence for an object is the count of reveals whose center lies
        inside (or within one radius of) its box, weighted by salience;
        Peek can only guess words they know.
        """
        if len(reveals) < self.min_evidence:
            return []
        if self.model.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            vocabulary = self.layout.corpus.vocabulary
            picks = vocabulary.sample(self._rng, 3, by_frequency=True)
            return [w.text for w in picks]
        scores: Dict[str, float] = {}
        for obj in self.layout.objects_in(image.image_id):
            word = self.layout.corpus.vocabulary.word(obj.word)
            if not self.model.knows(word):
                continue
            evidence = 0.0
            for reveal in reveals:
                grown = BoundingBox(
                    max(0.0, obj.box.x - reveal.radius),
                    max(0.0, obj.box.y - reveal.radius),
                    obj.box.w + 2 * reveal.radius,
                    obj.box.h + 2 * reveal.radius)
                if grown.contains(reveal.x, reveal.y):
                    evidence += 1.0
            if evidence > 0:
                # Perceptual noise shrinks with skill.
                noise = self._rng.gauss(0.0, 1.5 * (1 - self.model.skill))
                scores[obj.word] = evidence * (0.5 + obj.salience) + noise
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])
        return [word for word, _ in ranked[:3]]


class PeekaboomGame:
    """A Peekaboom campaign.

    Args:
        corpus: image corpus.
        layout: ground-truth object layout over the corpus.
        round_time_limit_s: per-round cap.
        guess_interval_s: Peek's reaction delay after each reveal.
        seed: campaign RNG seed.
    """

    def __init__(self, corpus: ImageCorpus, layout: ObjectLayout,
                 round_time_limit_s: float = 60.0,
                 guess_interval_s: float = 2.0,
                 seed: _rng.SeedLike = 0) -> None:
        if round_time_limit_s <= 0:
            raise ConfigError("round_time_limit_s must be > 0")
        self.corpus = corpus
        self.layout = layout
        self.round_time_limit_s = round_time_limit_s
        self.guess_interval_s = guess_interval_s
        self._rng = _rng.make_rng(seed)
        self.events = EventLog()
        self.contributions: List[Contribution] = []

    def make_boom(self, model: PlayerModel) -> BoomAgent:
        return BoomAgent(model, self.layout,
                         _rng.derive(self._rng, f"boom:{model.player_id}"))

    def make_peek(self, model: PlayerModel) -> PeekAgent:
        return PeekAgent(model, self.layout,
                         _rng.derive(self._rng, f"peek:{model.player_id}"))

    def play_round(self, boom: BoomAgent, peek: PeekAgent, image: Image,
                   word: str, now: float = 0.0) -> RoundResult:
        """Play one Boom/Peek round for (image, word)."""
        if not self.layout.has_object(image.image_id, word):
            raise GameError(
                f"word {word!r} has no object in image {image.image_id!r}")
        reveals = boom.give_reveals(image, word, self.round_time_limit_s)
        shown: List[Reveal] = []
        completed_at: Optional[float] = None
        guesses_tried: List[str] = []
        for reveal in reveals:
            shown.append(reveal)
            guesses = peek.guess_from_reveals(image, tuple(shown))
            for index, guess in enumerate(guesses):
                at = reveal.at_s + (index + 1) * self.guess_interval_s
                if at > self.round_time_limit_s:
                    break
                guesses_tried.append(guess)
                if guess == word:
                    completed_at = at
                    break
            if completed_at is not None:
                break
        completed = completed_at is not None
        elapsed = completed_at if completed else self.round_time_limit_s
        item = TaskItem(item_id=image.image_id, kind="image",
                        payload={"word": word})
        contributions = [Contribution(
            kind=ContributionKind.LOCATION, item_id=image.image_id,
            data={"word": word, "x": r.x, "y": r.y, "radius": r.radius},
            players=(boom.player_id, peek.player_id),
            verified=completed, timestamp=now + r.at_s)
            for r in (shown if completed else reveals)]
        self.contributions.extend(contributions)
        outcome = (RoundOutcome.COMPLETED if completed
                   else RoundOutcome.FAILED)
        self.events.append(now + elapsed, "peekaboom_round",
                           item=image.image_id, word=word,
                           completed=completed, reveals=len(shown))
        return RoundResult(item=item, outcome=outcome,
                           contributions=contributions, elapsed_s=elapsed,
                           detail={"word": word, "guesses": guesses_tried,
                                   "reveals": len(shown)})

    def play_match(self, model_a: PlayerModel, model_b: PlayerModel,
                   rounds: int = 6, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """Play a match, alternating Boom/Peek roles each round."""
        results: List[RoundResult] = []
        clock = start_s
        for index in range(rounds):
            if index % 2 == 0:
                boom, peek = self.make_boom(model_a), self.make_peek(model_b)
            else:
                boom, peek = self.make_boom(model_b), self.make_peek(model_a)
            image = self._rng.choice(list(self.corpus.images))
            objects = self.layout.objects_in(image.image_id)
            obj = self._rng.choice(list(objects))
            result = self.play_round(boom, peek, image, obj.word,
                                     now=clock)
            results.append(result)
            clock += result.elapsed_s + 2.0
        return results

    def verified_locations(self) -> Dict[Tuple[str, str],
                                         List[Contribution]]:
        """(image, word) -> verified reveal contributions."""
        out: Dict[Tuple[str, str], List[Contribution]] = {}
        for contribution in self.contributions:
            if contribution.verified:
                key = (contribution.item_id, contribution.value("word"))
                out.setdefault(key, []).append(contribution)
        return out
