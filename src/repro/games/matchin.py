"""Matchin: pairwise image preference (output-agreement on taste).

Both players see the same *pair* of images and each picks the one they
believe their partner prefers; agreeing earns points.  Aggregated over
many pairs, the agreements yield a global attractiveness ranking — the
game's useful output.

Ground truth here is a latent per-image *appeal* score (a stable hash of
the image id), and players perceive appeal with skill-dependent noise, so
the recovered ranking converges to the latent one as rounds accumulate.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro import rng as _rng
from repro.core.entities import (Contribution, ContributionKind,
                                 RoundOutcome, RoundResult, TaskItem)
from repro.core.events import EventLog
from repro.corpus.images import Image, ImageCorpus
from repro.errors import GameError
from repro.players.base import Behavior, PlayerModel


def appeal_score(image_id: str) -> float:
    """Latent ground-truth attractiveness of an image, in [0, 1).

    A stable hash — not random state — so every component of the system
    agrees on it without coordination.
    """
    digest = hashlib.sha256(f"appeal:{image_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class MatchinGame:
    """A Matchin campaign accumulating pairwise preference agreements.

    Args:
        corpus: image corpus.
        seed: campaign RNG seed.
    """

    def __init__(self, corpus: ImageCorpus, seed: _rng.SeedLike = 0) -> None:
        self.corpus = corpus
        self._rng = _rng.make_rng(seed)
        self.events = EventLog()
        self.contributions: List[Contribution] = []
        # Bradley-Terry-ish tallies: wins[image] and appearances[image].
        self._wins: Dict[str, int] = {}
        self._appearances: Dict[str, int] = {}

    def _perceived_choice(self, model: PlayerModel, left: Image,
                          right: Image, rng) -> str:
        """Which image the player picks as the preferred one."""
        if model.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            return left.image_id if rng.random() < 0.5 else right.image_id
        noise = 0.35 * (1.0 - model.skill)
        left_seen = appeal_score(left.image_id) + rng.gauss(0.0, noise)
        right_seen = appeal_score(right.image_id) + rng.gauss(0.0, noise)
        return left.image_id if left_seen >= right_seen else right.image_id

    def play_round(self, model_a: PlayerModel, model_b: PlayerModel,
                   now: float = 0.0,
                   pair: Optional[Tuple[Image, Image]] = None
                   ) -> RoundResult:
        """One pair-choice round between two player models."""
        if pair is None:
            left, right = self.corpus.sample(self._rng, 2)
        else:
            left, right = pair
        if left.image_id == right.image_id:
            raise GameError("Matchin needs two distinct images")
        rng_a = _rng.derive(self._rng, f"choice:{model_a.player_id}")
        rng_b = _rng.derive(self._rng, f"choice:{model_b.player_id}")
        choice_a = self._perceived_choice(model_a, left, right, rng_a)
        choice_b = self._perceived_choice(model_b, left, right, rng_b)
        agreed = choice_a == choice_b
        item = TaskItem(item_id=f"{left.image_id}|{right.image_id}",
                        kind="image_pair")
        contributions: List[Contribution] = []
        for image in (left, right):
            self._appearances[image.image_id] = (
                self._appearances.get(image.image_id, 0) + 1)
        if agreed:
            self._wins[choice_a] = self._wins.get(choice_a, 0) + 1
            contributions.append(Contribution(
                kind=ContributionKind.PREFERENCE, item_id=item.item_id,
                data={"winner": choice_a,
                      "loser": (right.image_id if choice_a == left.image_id
                                else left.image_id)},
                players=(model_a.player_id, model_b.player_id),
                verified=True, timestamp=now + 8.0))
            self.contributions.extend(contributions)
        outcome = RoundOutcome.AGREED if agreed else RoundOutcome.FAILED
        self.events.append(now, "matchin_round", agreed=agreed,
                           pair=[left.image_id, right.image_id])
        return RoundResult(item=item, outcome=outcome,
                           contributions=contributions, elapsed_s=8.0,
                           detail={"choice_a": choice_a,
                                   "choice_b": choice_b})

    def play_match(self, model_a: PlayerModel, model_b: PlayerModel,
                   rounds: int = 20, start_s: float = 0.0
                   ) -> List[RoundResult]:
        """A multi-round match."""
        results = []
        clock = start_s
        for _ in range(rounds):
            result = self.play_round(model_a, model_b, now=clock)
            results.append(result)
            clock += result.elapsed_s + 1.0
        return results

    def ranking(self) -> List[Tuple[str, float]]:
        """Images ranked by empirical win rate (the recovered appeal)."""
        rates = []
        for image_id, appearances in self._appearances.items():
            wins = self._wins.get(image_id, 0)
            rates.append((image_id, wins / appearances))
        rates.sort(key=lambda kv: -kv[1])
        return rates

    def ranking_bt(self):
        """Bradley–Terry ranking from the agreement stream.

        Fits the pairwise-preference model to every verified agreement;
        statistically stronger than raw win rates when items have
        uneven appearance counts.  Returns the fitted
        :class:`~repro.aggregation.bradley_terry.BradleyTerryResult`.
        """
        from repro.aggregation.bradley_terry import BradleyTerry
        outcomes = [(c.value("winner"), c.value("loser"))
                    for c in self.contributions if c.verified]
        return BradleyTerry().fit(outcomes)

    def ranking_correlation(self) -> float:
        """Spearman correlation of recovered vs latent appeal ranking.

        Only images that appeared at least once are scored.  Returns 0.0
        when fewer than two images have been seen.
        """
        observed = self.ranking()
        if len(observed) < 2:
            return 0.0
        ids = [image_id for image_id, _ in observed]
        truth_order = sorted(ids, key=lambda i: -appeal_score(i))
        truth_rank = {image_id: pos for pos, image_id
                      in enumerate(truth_order)}
        observed_rank = {image_id: pos for pos, (image_id, _)
                         in enumerate(observed)}
        n = len(ids)
        d2 = sum((truth_rank[i] - observed_rank[i]) ** 2 for i in ids)
        return 1.0 - 6.0 * d2 / (n * (n * n - 1))
