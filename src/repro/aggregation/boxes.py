"""Spatial consensus: points and boxes from Peekaboom/Squigl output.

Peekaboom emits reveal points; the consensus object location is a robust
box around the dense core of the point cloud (trimmed percentile bounds,
so a few scattered reveals from low-skill Boom players don't inflate the
box).  Squigl emits traced boxes; consensus is the coordinate-wise median
box.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.corpus.objects import BoundingBox
from repro.errors import AggregationError


def point_cloud_center(points: Sequence[Tuple[float, float]]
                       ) -> Tuple[float, float]:
    """Median center of a point cloud (robust to outliers)."""
    if not points:
        raise AggregationError("need >= 1 point for a center")
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    return _median(xs), _median(ys)


def _median(sorted_values: List[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return 0.5 * (sorted_values[mid - 1] + sorted_values[mid])


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values, q in [0,1]."""
    if not sorted_values:
        raise AggregationError("need values for a percentile")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    frac = position - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def box_from_points(points: Sequence[Tuple[float, float]],
                    trim: float = 0.1,
                    pad: float = 0.0) -> BoundingBox:
    """Robust bounding box of a reveal point cloud.

    Args:
        points: (x, y) reveal centers.
        trim: percentile trimmed from each side (0.1 keeps the 10th-90th
            percentile core).
        pad: absolute padding added on every side (e.g. reveal radius).

    Raises:
        AggregationError: with no points or a degenerate trim.
    """
    if not points:
        raise AggregationError("need >= 1 point for a box")
    if not 0.0 <= trim < 0.5:
        raise AggregationError(f"trim must be in [0, 0.5), got {trim}")
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    x1 = _percentile(xs, trim) - pad
    x2 = _percentile(xs, 1 - trim) + pad
    y1 = _percentile(ys, trim) - pad
    y2 = _percentile(ys, 1 - trim) + pad
    width = max(x2 - x1, 1.0)
    height = max(y2 - y1, 1.0)
    return BoundingBox(x1, y1, width, height)


def consensus_box(boxes: Sequence[BoundingBox]) -> BoundingBox:
    """Coordinate-wise median of traced boxes (Squigl consensus)."""
    if not boxes:
        raise AggregationError("need >= 1 box for a consensus")
    x1 = _median(sorted(b.x for b in boxes))
    y1 = _median(sorted(b.y for b in boxes))
    x2 = _median(sorted(b.x2 for b in boxes))
    y2 = _median(sorted(b.y2 for b in boxes))
    return BoundingBox(x1, y1, max(x2 - x1, 1.0), max(y2 - y1, 1.0))


def mean_iou(boxes: Sequence[BoundingBox], truth: BoundingBox) -> float:
    """Mean IoU of boxes against a ground-truth box."""
    if not boxes:
        return 0.0
    return sum(b.iou(truth) for b in boxes) / len(boxes)
