"""Repetition-threshold promotion as a standalone aggregator.

The paper's own quality rule: an output is *good* once ``threshold``
independent sources produced it.  Unlike :class:`~repro.core.taboo.
TabooTracker` (which is entangled with ESP's gameplay), this aggregator
works on any (source, item, answer) stream and enforces *independence*:
repeated answers from the same source (or the same source pair) count
once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.errors import AggregationError


class PromotionAggregator:
    """Promote answers after ``threshold`` independent repetitions.

    Args:
        threshold: distinct sources required (>= 1).
    """

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise AggregationError(
                f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._sources: Dict[Tuple[Hashable, Hashable], Set[FrozenSet]] = {}
        self._promoted: Dict[Hashable, List[Hashable]] = {}

    def observe(self, source, item_id: Hashable,
                answer: Hashable) -> bool:
        """Record one answer; returns True when this promotes it.

        ``source`` may be a single id or an iterable of ids (a player
        pair); the whole set counts as one independent source.
        """
        if isinstance(source, (str, int)):
            source_key = frozenset([source])
        else:
            source_key = frozenset(source)
        if not source_key:
            raise AggregationError("answer must have a non-empty source")
        key = (item_id, answer)
        sources = self._sources.setdefault(key, set())
        already = answer in self._promoted.get(item_id, [])
        sources.add(source_key)
        if len(sources) >= self.threshold and not already:
            self._promoted.setdefault(item_id, []).append(answer)
            return True
        return False

    def observe_all(self, records: Sequence[Tuple]) -> int:
        """Observe (source, item, answer) records; returns promotions."""
        promotions = 0
        for source, item_id, answer in records:
            if self.observe(source, item_id, answer):
                promotions += 1
        return promotions

    def support(self, item_id: Hashable, answer: Hashable) -> int:
        """Distinct sources seen for (item, answer)."""
        return len(self._sources.get((item_id, answer), ()))

    def is_promoted(self, item_id: Hashable, answer: Hashable) -> bool:
        return answer in self._promoted.get(item_id, [])

    def promoted(self, item_id: Hashable) -> Tuple[Hashable, ...]:
        """Promoted answers for an item, in promotion order."""
        return tuple(self._promoted.get(item_id, ()))

    def all_promoted(self) -> Dict[Hashable, Tuple[Hashable, ...]]:
        return {item: tuple(answers)
                for item, answers in self._promoted.items()}

    def pending(self, item_id: Hashable) -> Dict[Hashable, int]:
        """Unpromoted answers for an item with their current support."""
        out = {}
        for (item, answer), sources in self._sources.items():
            if item == item_id and not self.is_promoted(item, answer):
                out[answer] = len(sources)
        return out
