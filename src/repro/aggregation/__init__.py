"""Answer aggregation: turning redundant noisy answers into truth.

The paper's central quality mechanism is *repetition* — trust an output
only after enough independent people produced it.  This package provides
that and the standard stronger alternatives, all operating on plain
(worker, item, answer) records so they work for contributions from any
game or from the task platform:

- :mod:`repro.aggregation.majority` — per-item plurality voting with
  tie-breaking and optional worker weights.
- :mod:`repro.aggregation.dawid_skene` — EM estimation of per-worker
  confusion matrices (Dawid & Skene 1979), the classic crowdsourcing
  aggregator.
- :mod:`repro.aggregation.promotion` — the ESP repetition-threshold rule
  as a standalone aggregator over label streams.
- :mod:`repro.aggregation.strings` — transcription voting with
  normalization and character-level consensus (for reCAPTCHA).
- :mod:`repro.aggregation.boxes` — point/box consensus for Peekaboom and
  Squigl output.
- :mod:`repro.aggregation.confidence` — posterior-style confidence
  scores shared by the aggregators.
"""

from repro.aggregation.majority import MajorityVote, VoteResult
from repro.aggregation.dawid_skene import DawidSkene, DawidSkeneResult
from repro.aggregation.bradley_terry import (BradleyTerry,
                                             BradleyTerryResult)
from repro.aggregation.promotion import PromotionAggregator
from repro.aggregation.strings import (StringConsensus, normalize_answer,
                                       character_consensus)
from repro.aggregation.boxes import (box_from_points, consensus_box,
                                     point_cloud_center)
from repro.aggregation.confidence import agreement_confidence

__all__ = [
    "MajorityVote", "VoteResult",
    "DawidSkene", "DawidSkeneResult",
    "BradleyTerry", "BradleyTerryResult",
    "PromotionAggregator",
    "StringConsensus", "normalize_answer", "character_consensus",
    "box_from_points", "consensus_box", "point_cloud_center",
    "agreement_confidence",
]
