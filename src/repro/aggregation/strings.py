"""Transcription aggregation for reCAPTCHA-style string answers.

reCAPTCHA resolves an unknown word when enough humans agree on its
transcription (after normalization); disagreements among humans and OCR
engines are settled by weighted plurality, with a character-level
consensus fallback that recovers the majority character in each position
when no full string reaches quorum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AggregationError


def normalize_answer(text: str) -> str:
    """Canonical transcription form: lowercase, stripped, no inner runs."""
    return " ".join(text.strip().lower().split())


def character_consensus(strings: Sequence[str]) -> str:
    """Per-position majority character over same-intent transcriptions.

    Strings vote per position; the consensus length is the majority
    length.  Ties break toward the earlier alphabet character for
    determinism.
    """
    if not strings:
        raise AggregationError("character consensus needs >= 1 string")
    lengths: Dict[int, int] = {}
    for s in strings:
        lengths[len(s)] = lengths.get(len(s), 0) + 1
    target_len = sorted(lengths.items(),
                        key=lambda kv: (-kv[1], kv[0]))[0][0]
    out = []
    for pos in range(target_len):
        counts: Dict[str, int] = {}
        for s in strings:
            if pos < len(s):
                counts[s[pos]] = counts.get(s[pos], 0) + 1
        if not counts:
            break
        out.append(sorted(counts.items(),
                          key=lambda kv: (-kv[1], kv[0]))[0][0])
    return "".join(out)


@dataclass(frozen=True)
class TranscriptionResult:
    """Resolution of one unknown word.

    Attributes:
        item_id: the scanned word.
        text: resolved transcription.
        votes: weighted support for the winner.
        total: total weighted votes.
        resolved: True if quorum/confidence thresholds were met.
        via: "plurality" or "characters" (fallback path).
    """

    item_id: Hashable
    text: str
    votes: float
    total: float
    resolved: bool
    via: str

    @property
    def confidence(self) -> float:
        if self.total <= 0:
            return 0.0
        return self.votes / self.total


class StringConsensus:
    """Vote-based transcription resolution.

    Args:
        quorum: minimum weighted votes the winner needs.
        min_confidence: minimum winner share of the vote mass.
        weights: per-source vote weights (e.g. human 1.0, OCR 0.5 — the
            real system seeds each word with OCR guesses at half a vote).
    """

    def __init__(self, quorum: float = 2.0, min_confidence: float = 0.5,
                 weights: Optional[Mapping[str, float]] = None) -> None:
        if quorum <= 0:
            raise AggregationError(f"quorum must be > 0, got {quorum}")
        if not 0.0 < min_confidence <= 1.0:
            raise AggregationError(
                f"min_confidence must be in (0,1], got {min_confidence}")
        self.quorum = quorum
        self.min_confidence = min_confidence
        self._weights = dict(weights or {})

    def weight_of(self, source: str) -> float:
        return self._weights.get(source, 1.0)

    def resolve(self, item_id: Hashable,
                answers: Sequence[Tuple[str, str]]) -> TranscriptionResult:
        """Resolve one word from (source, transcription) pairs."""
        tally: Dict[str, float] = {}
        total = 0.0
        normalized: List[str] = []
        for source, text in answers:
            weight = self.weight_of(source)
            if weight <= 0:
                continue
            canon = normalize_answer(text)
            if not canon:
                continue
            normalized.append(canon)
            tally[canon] = tally.get(canon, 0.0) + weight
            total += weight
        if not tally:
            raise AggregationError(
                f"no usable transcriptions for {item_id!r}")
        ranked = sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))
        winner, votes = ranked[0]
        confidence = votes / total
        if votes >= self.quorum and confidence >= self.min_confidence:
            return TranscriptionResult(item_id=item_id, text=winner,
                                       votes=votes, total=total,
                                       resolved=True, via="plurality")
        # Fallback: character-level consensus over all transcriptions.
        merged = character_consensus(normalized)
        merged_votes = tally.get(merged, 0.0)
        resolved = (total >= self.quorum
                    and merged_votes / total >= self.min_confidence / 2)
        return TranscriptionResult(item_id=item_id, text=merged,
                                   votes=merged_votes, total=total,
                                   resolved=resolved, via="characters")

    def resolve_all(self, answers: Sequence[Tuple[str, Hashable, str]]
                    ) -> Dict[Hashable, TranscriptionResult]:
        """Resolve every item in (source, item, transcription) records."""
        by_item: Dict[Hashable, List[Tuple[str, str]]] = {}
        for source, item_id, text in answers:
            by_item.setdefault(item_id, []).append((source, text))
        return {item_id: self.resolve(item_id, pairs)
                for item_id, pairs in by_item.items()}
