"""Majority / plurality voting over (worker, item, answer) records.

The baseline aggregator every crowdsourcing comparison includes.  Supports
per-worker weights (fed from :mod:`repro.quality.reputation`) and exposes
the vote margin so callers can route low-margin items back for more
answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Dict, Hashable, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.errors import AggregationError


@dataclass(frozen=True)
class VoteResult:
    """Outcome of voting on one item.

    Attributes:
        item_id: the item voted on.
        answer: winning answer (ties broken by lexical order of repr for
            determinism).
        support: weighted votes for the winner.
        total: total weighted votes cast.
        margin: (winner - runner-up) / total, in [0, 1].
    """

    item_id: Hashable
    answer: Any
    support: float
    total: float
    margin: float

    @property
    def confidence(self) -> float:
        """Winner's share of the vote mass."""
        if self.total <= 0:
            return 0.0
        return self.support / self.total


class MajorityVote:
    """Weighted plurality voting.

    Args:
        weights: optional mapping worker -> weight (default 1.0 each).
            Non-positive weights silence a worker entirely.
    """

    def __init__(self,
                 weights: Optional[Mapping[str, float]] = None) -> None:
        self._weights = dict(weights or {})

    def weight_of(self, worker: str) -> float:
        return self._weights.get(worker, 1.0)

    def vote(self, item_id: Hashable,
             answers: Sequence[Tuple[str, Any]]) -> VoteResult:
        """Vote on one item.

        Args:
            item_id: item identifier.
            answers: (worker, answer) pairs.

        Answers may be unhashable JSON structures (dicts, lists); they
        are tallied by a canonical form and the original object is
        returned.

        Raises:
            AggregationError: with no positive-weight answers.
        """
        tally: Dict[Any, float] = {}
        originals: Dict[Any, Any] = {}
        total = 0.0
        for worker, answer in answers:
            weight = self.weight_of(worker)
            if weight <= 0:
                continue
            key = self._canonical(answer)
            originals.setdefault(key, answer)
            tally[key] = tally.get(key, 0.0) + weight
            total += weight
        if not tally:
            raise AggregationError(
                f"no usable answers for item {item_id!r}")
        ranked = sorted(tally.items(),
                        key=lambda kv: (-kv[1], repr(kv[0])))
        winner_key, support = ranked[0]
        winner = originals[winner_key]
        runner_up = ranked[1][1] if len(ranked) > 1 else 0.0
        margin = (support - runner_up) / total if total > 0 else 0.0
        return VoteResult(item_id=item_id, answer=winner, support=support,
                          total=total, margin=margin)

    @staticmethod
    def _canonical(answer: Any) -> Any:
        """A hashable tally key for any JSON-ish answer."""
        try:
            hash(answer)
            return answer
        except TypeError:
            import json
            try:
                return "\x00json:" + json.dumps(answer, sort_keys=True)
            except (TypeError, ValueError):
                return "\x00repr:" + repr(answer)

    def vote_all(self, answers: Sequence[Tuple[str, Hashable, Any]]
                 ) -> Dict[Hashable, VoteResult]:
        """Vote on a whole answer set of (worker, item, answer) records."""
        by_item: Dict[Hashable, List[Tuple[str, Any]]] = {}
        for worker, item_id, answer in answers:
            by_item.setdefault(item_id, []).append((worker, answer))
        return {item_id: self.vote(item_id, pairs)
                for item_id, pairs in by_item.items()}

    def accuracy(self, answers: Sequence[Tuple[str, Hashable, Any]],
                 truth: Mapping[Hashable, Any]) -> float:
        """Fraction of voted items whose winner matches ``truth``."""
        results = self.vote_all(answers)
        scored = [item_id for item_id in results if item_id in truth]
        if not scored:
            return 0.0
        correct = sum(1 for item_id in scored
                      if results[item_id].answer == truth[item_id])
        return correct / len(scored)
