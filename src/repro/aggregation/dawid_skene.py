"""Dawid–Skene EM aggregation with per-worker confusion matrices.

The classic model (Dawid & Skene, 1979): each item has a latent true
class; each worker has a confusion matrix giving the probability of
answering *j* when the truth is *i*.  EM alternates between estimating
item posteriors from current confusion matrices and re-estimating the
matrices from the posteriors.  Spammers — whose answers are independent
of the truth — end up with flat confusion rows and therefore near-zero
influence, which is why Dawid–Skene dominates majority voting at high
spam fractions (benchmark T7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError


@dataclass
class DawidSkeneResult:
    """Fitted model state.

    Attributes:
        labels: item -> MAP class estimate.
        posteriors: item -> class -> posterior probability.
        confusion: worker -> (classes x classes) row-stochastic matrix
            (rows: truth, columns: answer).
        class_priors: estimated marginal class distribution.
        iterations: EM iterations executed.
        log_likelihood: final observed-data log likelihood.
    """

    labels: Dict[Hashable, Hashable]
    posteriors: Dict[Hashable, Dict[Hashable, float]]
    confusion: Dict[str, np.ndarray]
    class_priors: Dict[Hashable, float]
    iterations: int
    log_likelihood: float

    def worker_accuracy(self, worker: str) -> float:
        """Diagonal mass of a worker's confusion matrix (their skill)."""
        matrix = self.confusion.get(worker)
        if matrix is None:
            raise AggregationError(f"unknown worker: {worker!r}")
        return float(np.trace(matrix)) / matrix.shape[0]


class DawidSkene:
    """EM fitter for the Dawid–Skene model.

    Args:
        max_iterations: EM iteration cap.
        tolerance: stop when log-likelihood improves by less than this.
        smoothing: Laplace smoothing added to confusion counts, keeping
            matrices full-support with few answers.
    """

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-5,
                 smoothing: float = 0.01) -> None:
        if max_iterations < 1:
            raise AggregationError(
                f"max_iterations must be >= 1, got {max_iterations}")
        if smoothing < 0:
            raise AggregationError(
                f"smoothing must be >= 0, got {smoothing}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def fit(self, answers: Sequence[Tuple[str, Hashable, Hashable]]
            ) -> DawidSkeneResult:
        """Fit the model on (worker, item, answer) records."""
        if not answers:
            raise AggregationError("cannot fit Dawid-Skene on no answers")
        workers = sorted({w for w, _, _ in answers})
        items = sorted({i for _, i, _ in answers}, key=repr)
        classes = sorted({a for _, _, a in answers}, key=repr)
        w_index = {w: k for k, w in enumerate(workers)}
        i_index = {i: k for k, i in enumerate(items)}
        c_index = {c: k for k, c in enumerate(classes)}
        n_workers, n_items, n_classes = (len(workers), len(items),
                                         len(classes))
        # answer_count[item, worker, class] is sparse; store index lists.
        records = [(i_index[i], w_index[w], c_index[a])
                   for w, i, a in answers]
        # Initialize posteriors from raw per-item vote shares.
        posteriors = np.full((n_items, n_classes), 1e-9)
        for item_k, _, class_k in records:
            posteriors[item_k, class_k] += 1.0
        posteriors /= posteriors.sum(axis=1, keepdims=True)
        log_likelihood = -np.inf
        iterations = 0
        confusion = np.zeros((n_workers, n_classes, n_classes))
        priors = np.zeros(n_classes)
        for iterations in range(1, self.max_iterations + 1):
            # M-step: confusion matrices and class priors.
            confusion.fill(self.smoothing)
            for item_k, worker_k, class_k in records:
                confusion[worker_k, :, class_k] += posteriors[item_k]
            confusion /= confusion.sum(axis=2, keepdims=True)
            priors = posteriors.mean(axis=0)
            priors = np.clip(priors, 1e-12, None)
            priors /= priors.sum()
            # E-step: item posteriors.
            log_post = np.tile(np.log(priors), (n_items, 1))
            log_conf = np.log(np.clip(confusion, 1e-12, None))
            for item_k, worker_k, class_k in records:
                log_post[item_k] += log_conf[worker_k, :, class_k]
            log_post -= log_post.max(axis=1, keepdims=True)
            posteriors = np.exp(log_post)
            posteriors /= posteriors.sum(axis=1, keepdims=True)
            new_ll = self._log_likelihood(records, confusion, priors,
                                          n_items, n_classes)
            if abs(new_ll - log_likelihood) < self.tolerance:
                log_likelihood = new_ll
                break
            log_likelihood = new_ll
        labels = {}
        post_dict: Dict[Hashable, Dict[Hashable, float]] = {}
        for item, item_k in i_index.items():
            row = posteriors[item_k]
            labels[item] = classes[int(np.argmax(row))]
            post_dict[item] = {classes[k]: float(row[k])
                               for k in range(n_classes)}
        return DawidSkeneResult(
            labels=labels, posteriors=post_dict,
            confusion={w: confusion[w_index[w]].copy() for w in workers},
            class_priors={classes[k]: float(priors[k])
                          for k in range(n_classes)},
            iterations=iterations, log_likelihood=float(log_likelihood))

    @staticmethod
    def _log_likelihood(records, confusion, priors, n_items,
                        n_classes) -> float:
        log_post = np.tile(np.log(priors), (n_items, 1))
        log_conf = np.log(np.clip(confusion, 1e-12, None))
        for item_k, worker_k, class_k in records:
            log_post[item_k] += log_conf[worker_k, :, class_k]
        max_per_item = log_post.max(axis=1, keepdims=True)
        return float((max_per_item.squeeze(1)
                      + np.log(np.exp(log_post - max_per_item)
                               .sum(axis=1))).sum())

    def accuracy(self, answers: Sequence[Tuple[str, Hashable, Hashable]],
                 truth: Mapping[Hashable, Hashable]) -> float:
        """MAP-label accuracy against a truth mapping."""
        result = self.fit(answers)
        scored = [item for item in result.labels if item in truth]
        if not scored:
            return 0.0
        correct = sum(1 for item in scored
                      if result.labels[item] == truth[item])
        return correct / len(scored)
