"""Confidence estimates shared by the aggregators.

:func:`agreement_confidence` answers the question behind the paper's
repetition rule: if each independent source is correct with probability
``p`` and wrong answers scatter over ``alternatives`` possibilities, how
confident are we in an answer produced by ``k`` independent sources?

This is the analysis tool the T7 ablation uses to pick thresholds: it
returns the posterior probability that the repeated answer is correct
under a uniform-error model.
"""

from __future__ import annotations


from repro.errors import AggregationError


def agreement_confidence(k: int, p: float, alternatives: int = 100,
                         prior: float = 0.5) -> float:
    """Posterior P(answer correct | k independent sources agreed on it).

    Model: a candidate answer is a priori correct with ``prior``.  A
    source produces the correct answer with probability ``p``; an
    incorrect source picks uniformly among ``alternatives`` wrong
    answers.  All ``k`` sources produced *this* answer.

    Args:
        k: number of independent agreeing sources (>= 1).
        p: per-source correctness probability, in (0, 1].
        alternatives: size of the wrong-answer space (>= 1).
        prior: prior probability the candidate answer is correct.

    Returns:
        Posterior correctness probability, in (0, 1].
    """
    if k < 1:
        raise AggregationError(f"k must be >= 1, got {k}")
    if not 0.0 < p <= 1.0:
        raise AggregationError(f"p must be in (0,1], got {p}")
    if alternatives < 1:
        raise AggregationError(
            f"alternatives must be >= 1, got {alternatives}")
    if not 0.0 < prior < 1.0:
        raise AggregationError(f"prior must be in (0,1), got {prior}")
    # Likelihood of k sources all emitting the answer if it is correct:
    like_correct = p ** k
    # ... and if it is one specific wrong answer:
    like_wrong = ((1.0 - p) / alternatives) ** k
    numerator = prior * like_correct
    denominator = numerator + (1.0 - prior) * like_wrong
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def required_threshold(p: float, target: float,
                       alternatives: int = 100, prior: float = 0.5,
                       max_k: int = 20) -> int:
    """Smallest k whose agreement confidence reaches ``target``.

    Returns ``max_k`` if the target is unreachable within the cap (e.g.
    ``p`` so low that agreement carries no information).
    """
    if not 0.0 < target < 1.0:
        raise AggregationError(f"target must be in (0,1), got {target}")
    for k in range(1, max_k + 1):
        if agreement_confidence(k, p, alternatives, prior) >= target:
            return k
    return max_k
