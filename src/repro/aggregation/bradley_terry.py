"""Bradley–Terry ranking from pairwise preference outcomes.

Matchin's output is a stream of (winner, loser) agreements; the natural
estimator of the underlying appeal scale is the Bradley–Terry model:
item *i* beats item *j* with probability ``s_i / (s_i + s_j)``.  The
strengths are fit by the classic minorization–maximization iteration
(Hunter 2004), with light regularization so items with few comparisons
do not blow up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import AggregationError


@dataclass(frozen=True)
class BradleyTerryResult:
    """Fitted strengths, normalized to mean 1.0.

    Attributes:
        strengths: item -> strength (larger = preferred).
        iterations: MM iterations executed.
        converged: whether the fit reached tolerance.
    """

    strengths: Dict[Hashable, float]
    iterations: int
    converged: bool

    def ranking(self) -> List[Tuple[Hashable, float]]:
        """Items sorted by strength, strongest first."""
        return sorted(self.strengths.items(),
                      key=lambda kv: (-kv[1], repr(kv[0])))

    def win_probability(self, a: Hashable, b: Hashable) -> float:
        """Model probability that ``a`` is preferred over ``b``."""
        try:
            sa = self.strengths[a]
            sb = self.strengths[b]
        except KeyError as exc:
            raise AggregationError(f"unknown item: {exc}") from None
        return sa / (sa + sb)


class BradleyTerry:
    """MM fitter for Bradley–Terry strengths.

    Args:
        max_iterations: MM iteration cap.
        tolerance: stop when the largest relative strength change falls
            below this.
        regularization: virtual wins/losses added between every pair of
            items sharing a comparison graph (keeps strengths finite for
            undefeated items).
    """

    def __init__(self, max_iterations: int = 200,
                 tolerance: float = 1e-6,
                 regularization: float = 0.1) -> None:
        if max_iterations < 1:
            raise AggregationError(
                f"max_iterations must be >= 1, got {max_iterations}")
        if regularization < 0:
            raise AggregationError(
                f"regularization must be >= 0, got {regularization}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.regularization = regularization

    def fit(self, outcomes: Sequence[Tuple[Hashable, Hashable]]
            ) -> BradleyTerryResult:
        """Fit strengths from (winner, loser) records."""
        if not outcomes:
            raise AggregationError(
                "cannot fit Bradley-Terry on no outcomes")
        wins: Dict[Tuple[Hashable, Hashable], float] = {}
        items = set()
        for winner, loser in outcomes:
            if winner == loser:
                raise AggregationError(
                    f"self-comparison for item {winner!r}")
            wins[(winner, loser)] = wins.get((winner, loser), 0.0) + 1.0
            items.add(winner)
            items.add(loser)
        ordered = sorted(items, key=repr)
        # Regularize: every observed pair gets epsilon wins both ways.
        pairs = {frozenset(k) for k in wins}
        for pair in pairs:
            a, b = sorted(pair, key=repr)
            wins[(a, b)] = wins.get((a, b), 0.0) + self.regularization
            wins[(b, a)] = wins.get((b, a), 0.0) + self.regularization
        strengths = {item: 1.0 for item in ordered}
        win_totals: Dict[Hashable, float] = {item: 0.0
                                             for item in ordered}
        opponents: Dict[Hashable, Dict[Hashable, float]] = {
            item: {} for item in ordered}
        for (winner, loser), count in wins.items():
            win_totals[winner] += count
            opponents[winner][loser] = (
                opponents[winner].get(loser, 0.0) + count)
            opponents[loser][winner] = (
                opponents[loser].get(winner, 0.0) + count)
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            updated = {}
            for item in ordered:
                denominator = 0.0
                for other, games in opponents[item].items():
                    denominator += games / (strengths[item]
                                            + strengths[other])
                if denominator <= 0:
                    updated[item] = strengths[item]
                else:
                    updated[item] = win_totals[item] / denominator
            mean = sum(updated.values()) / len(updated)
            updated = {item: value / mean
                       for item, value in updated.items()}
            delta = max(abs(updated[item] - strengths[item])
                        / max(strengths[item], 1e-12)
                        for item in ordered)
            strengths = updated
            if delta < self.tolerance:
                converged = True
                break
        return BradleyTerryResult(strengths=strengths,
                                  iterations=iterations,
                                  converged=converged)
