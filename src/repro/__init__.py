"""repro: a human-computation platform (DAC 2009 "Human Computation").

A from-scratch Python reproduction of the systems the paper surveys:
games with a purpose (ESP Game, Peekaboom, Verbosity, TagATune, Matchin,
Squigl), the CAPTCHA/reCAPTCHA digitization pipeline, answer aggregation
and quality control, a crowdsourcing task platform with a REST service,
and a campaign simulator with configurable simulated-human populations.

Quickstart::

    from repro.corpus import Vocabulary, ImageCorpus
    from repro.games import EspGame
    from repro.players import build_population

    vocab = Vocabulary(size=500, seed=1)
    corpus = ImageCorpus(vocab, size=50, seed=1)
    game = EspGame(corpus, seed=1)
    players = build_population(10, seed=1)
    game.play_session(players[0], players[1])
    print(game.good_labels())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
