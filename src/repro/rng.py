"""Deterministic randomness utilities.

Every stochastic component in the library takes an explicit random source
instead of using module-level global state, so that a campaign run under a
single seed is exactly reproducible.  This module provides:

- :func:`make_rng` — build a :class:`random.Random` from a seed or pass an
  existing one through.
- :func:`derive` — derive an independent child stream from a parent stream
  and a label, so subsystems do not perturb each other's sequences.
- :func:`zipf_weights` / :func:`weighted_choice` — the small sampling
  helpers used throughout the corpus and player models.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar, Union

T = TypeVar("T")

SeedLike = Union[None, int, str, random.Random]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh nondeterministic stream), an ``int`` or
    ``str`` seed, or an existing :class:`random.Random` (returned as-is so
    call sites can uniformly write ``rng = make_rng(seed_or_rng)``).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child stream from ``rng`` tagged by ``label``.

    The child's seed mixes a draw from the parent with a stable hash of the
    label, so two children derived with different labels are independent,
    and deriving the same label twice in sequence yields different streams
    (the parent advances).
    """
    base = rng.getrandbits(64)
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    mix = int.from_bytes(digest[:8], "big")
    return random.Random(base ^ mix)


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return normalized Zipf weights ``1/rank**exponent`` for ``n`` ranks.

    Natural-language tag frequencies are approximately Zipfian; the corpus
    generators use these weights for per-image tag salience.
    """
    if n <= 0:
        raise ValueError(f"zipf_weights needs n >= 1, got {n}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Sample one item from ``items`` proportionally to ``weights``."""
    if len(items) != len(weights):
        raise ValueError(
            f"items ({len(items)}) and weights ({len(weights)}) differ")
    if not items:
        raise ValueError("cannot sample from an empty sequence")
    total = float(sum(weights))
    if total <= 0.0:
        # Degenerate weights: fall back to uniform.
        return items[rng.randrange(len(items))]
    target = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target < acc:
            return item
    return items[-1]


def weighted_sample_without_replacement(
        rng: random.Random, items: Sequence[T], weights: Sequence[float],
        k: int) -> list[T]:
    """Sample ``k`` distinct items proportionally to ``weights``.

    Uses the Efraimidis–Spirakis exponential-key trick, which is exact and
    O(n log n).  ``k`` is clipped to ``len(items)``.
    """
    if len(items) != len(weights):
        raise ValueError(
            f"items ({len(items)}) and weights ({len(weights)}) differ")
    k = min(k, len(items))
    if k <= 0:
        return []
    keyed = []
    for item, weight in zip(items, weights):
        if weight <= 0.0:
            key = float("-inf")
        else:
            key = rng.random() ** (1.0 / weight)
        keyed.append((key, item))
    keyed.sort(key=lambda pair: pair[0], reverse=True)
    return [item for _, item in keyed[:k]]


def poisson(rng: random.Random, lam: float) -> int:
    """Draw from a Poisson distribution with mean ``lam``.

    Knuth's algorithm for small means, normal approximation above 30 —
    arrival batches in the simulator never need more accuracy than that.
    """
    if lam < 0:
        raise ValueError(f"poisson mean must be >= 0, got {lam}")
    if lam == 0:
        return 0
    if lam > 30:
        value = int(round(rng.gauss(lam, lam ** 0.5)))
        return max(0, value)
    threshold = pow(2.718281828459045, -lam)
    k = 0
    product = 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return k
        k += 1


def exponential(rng: random.Random, rate: float) -> float:
    """Draw an exponential inter-arrival time with the given ``rate``."""
    if rate <= 0:
        raise ValueError(f"exponential rate must be > 0, got {rate}")
    return rng.expovariate(rate)


def bounded_gauss(rng: random.Random, mean: float, stdev: float,
                  low: float, high: float) -> float:
    """Gaussian draw clipped to ``[low, high]`` (used for skills/timing)."""
    if low > high:
        raise ValueError(f"bounds reversed: low={low} > high={high}")
    return min(high, max(low, rng.gauss(mean, stdev)))
