"""Exception hierarchy for the :mod:`repro` human-computation library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem and carry enough context in their message to debug a
failing campaign without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CorpusError(ReproError):
    """A corpus generator or lookup failed (unknown item, empty corpus)."""


class GameError(ReproError):
    """A game engine was driven with an illegal action or state."""


class MatchmakingError(GameError):
    """The lobby could not form a legal match."""


class AggregationError(ReproError):
    """An aggregator received inconsistent or insufficient input."""


class QualityError(ReproError):
    """A quality-control component was misused (e.g. unknown player)."""


class ObservabilityError(ReproError):
    """A telemetry component was misused (bad metric type, bad bucket)."""


class PlatformError(ReproError):
    """The task platform rejected an operation."""


class TaskNotFound(PlatformError):
    """A task id does not exist in the store."""


class JobNotFound(PlatformError):
    """A job/project id does not exist in the store."""


class AccountError(PlatformError):
    """Account creation or lookup failed."""


class StoreCorruptError(PlatformError):
    """Persisted state failed an integrity check (truncated JSON, CRC
    mismatch, sequence gap).

    Non-retryable: the bytes on disk are wrong and re-reading them
    cannot help — run ``repro fsck`` to locate the damage.
    """


class InjectedCrash(ReproError):
    """A process kill deliberately injected by :mod:`repro.faults`.

    Raised by a crash-point fault after a *partial* write has been
    flushed, simulating the process dying mid-append or
    mid-checkpoint.  Non-retryable by design: the harness is expected
    to recover from disk, not to retry the call.
    """


#: Statuses a client may safely retry: the request either never ran or
#: can be replayed without changing the outcome (pair with idempotency
#: keys for POSTs).  Everything else in 4xx means the request itself is
#: wrong and retrying cannot help.
RETRYABLE_STATUSES = frozenset({408, 425, 429, 500, 502, 503, 504})


class ServiceError(ReproError):
    """The service layer rejected a request.

    Attributes:
        status: HTTP status code.
        retry_after_s: server-advised backoff (from a ``Retry-After``
            header or a load-shedding response), when given.
    """

    def __init__(self, message: str, status: int = 400,
                 retry_after_s: "float | None" = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request can plausibly succeed."""
        return self.status in RETRYABLE_STATUSES


class TransientServiceError(ServiceError):
    """A transport-level failure (connection reset, timeout, refused).

    Always retryable: the request may not have reached the server at
    all, and even if it did, idempotency keys make replay safe.
    """

    def __init__(self, message: str, status: int = 503,
                 retry_after_s: "float | None" = None) -> None:
        super().__init__(message, status=status,
                         retry_after_s=retry_after_s)

    @property
    def retryable(self) -> bool:
        return True


class DeadlineExceeded(TransientServiceError):
    """A client-side connect or read deadline expired.

    Distinct from a generic transport failure so operators (and
    metrics) can tell a *hung* peer from a *dead* one: a dead socket
    fails instantly, a hung node eats the whole deadline.  Retryable —
    the router's failover semantics and the platform's idempotency
    keys make a replay safe — but the request may have executed, so it
    is never transparently replayed at the transport layer unless the
    request itself is idempotent.

    Attributes:
        phase: which deadline expired — ``"connect"`` or ``"read"``.
        deadline_s: the deadline that was exceeded, in seconds.
    """

    def __init__(self, message: str, phase: str = "read",
                 deadline_s: "float | None" = None,
                 retry_after_s: "float | None" = None) -> None:
        super().__init__(message, status=504,
                         retry_after_s=retry_after_s)
        self.phase = phase
        self.deadline_s = deadline_s


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open: failing fast, no retry.

    Deliberately *not* retryable — the point of the breaker is to stop
    hammering a struggling service; callers should back off at a higher
    level (or wait for the breaker's reset timeout).
    """

    def __init__(self, message: str = "circuit breaker is open",
                 retry_after_s: "float | None" = None) -> None:
        super().__init__(message, status=503,
                         retry_after_s=retry_after_s)

    @property
    def retryable(self) -> bool:
        return False


class InjectedFault(ServiceError):
    """A failure deliberately injected by :mod:`repro.faults`."""


def is_retryable(exc: BaseException) -> bool:
    """Classify an exception as retryable or not.

    Retryable: transport failures (``ConnectionError``, ``OSError``,
    ``TimeoutError``) and service errors whose status is in
    :data:`RETRYABLE_STATUSES`.  Not retryable: everything else —
    notably 4xx rejections (the request is wrong) and
    :class:`CircuitOpenError` (fail fast by design).
    """
    if isinstance(exc, ServiceError):
        return exc.retryable
    return isinstance(exc, (ConnectionError, TimeoutError, OSError))


class SimulationError(ReproError):
    """The discrete-event simulation was configured or driven incorrectly."""
