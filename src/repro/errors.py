"""Exception hierarchy for the :mod:`repro` human-computation library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses are
grouped by subsystem and carry enough context in their message to debug a
failing campaign without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CorpusError(ReproError):
    """A corpus generator or lookup failed (unknown item, empty corpus)."""


class GameError(ReproError):
    """A game engine was driven with an illegal action or state."""


class MatchmakingError(GameError):
    """The lobby could not form a legal match."""


class AggregationError(ReproError):
    """An aggregator received inconsistent or insufficient input."""


class QualityError(ReproError):
    """A quality-control component was misused (e.g. unknown player)."""


class ObservabilityError(ReproError):
    """A telemetry component was misused (bad metric type, bad bucket)."""


class PlatformError(ReproError):
    """The task platform rejected an operation."""


class TaskNotFound(PlatformError):
    """A task id does not exist in the store."""


class JobNotFound(PlatformError):
    """A job/project id does not exist in the store."""


class AccountError(PlatformError):
    """Account creation or lookup failed."""


class ServiceError(ReproError):
    """The service layer rejected a request."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class SimulationError(ReproError):
    """The discrete-event simulation was configured or driven incorrectly."""
