"""Shared metric definitions: one formula, live and offline.

The paper's GWAP metrics — throughput (verified outputs per
human-hour), average lifetime play, and expected contribution — are
computed twice in this codebase: offline by :mod:`repro.analytics`
after a campaign ends, and live by :mod:`repro.obs.live` while one is
running.  The two surfaces must agree on fixtures, so the arithmetic
lives here, dependency-free, and both import it.  Every function is a
total function of its inputs (no clocks, no state) and returns 0.0 on
an empty denominator rather than raising: a dashboard polling an
idle campaign should read zeros, not stack traces.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0


def throughput_per_hour(outputs: float, human_seconds: float) -> float:
    """Verified outputs per human-hour of play.

    ``outputs`` is the verified-contribution count; ``human_seconds``
    is total player time (two players x duration for a paired game).
    """
    if human_seconds <= 0.0:
        return 0.0
    return outputs / (human_seconds / SECONDS_PER_HOUR)


def alp_hours(total_play_seconds: float, participants: int) -> float:
    """Observed average lifetime play, in hours per distinct player."""
    if participants <= 0:
        return 0.0
    return total_play_seconds / participants / SECONDS_PER_HOUR


def expected_contribution(throughput: float, alp: float) -> float:
    """Expected verified outputs from one average recruit's lifetime:
    throughput (per hour) x average lifetime play (hours)."""
    return throughput * alp


def coverage_rate(covered: float, total: float) -> float:
    """Fraction of items with enough verified output (0.0 when the
    item universe is empty or unknown)."""
    if total <= 0.0:
        return 0.0
    return min(1.0, covered / total)


def accuracy(correct: float, graded: float) -> float:
    """Gold accuracy: correct gold answers over graded gold answers."""
    if graded <= 0.0:
        return 0.0
    return correct / graded
