"""The paper's GWAP evaluation metrics.

Three numbers summarize a GWAP's productive capacity:

- **throughput** — verified outputs per human-hour of play;
- **average lifetime play (ALP)** — hours a player spends on the game
  over their lifetime;
- **expected contribution** = throughput × ALP — verified outputs an
  average recruit will eventually produce.

:func:`gwap_metrics` computes all three from a campaign result plus an
engagement model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analytics import defs
from repro.errors import SimulationError
from repro.players.base import PlayerModel
from repro.players.engagement import EngagementModel

if TYPE_CHECKING:   # annotation-only: a runtime import would close
    # the cycle games -> platform -> obs.live -> analytics -> sim ->
    # games.
    from repro.sim.engine import CampaignResult


@dataclass(frozen=True)
class GwapMetrics:
    """The summary row the paper's GWAP table reports per game.

    Attributes:
        game: name of the game.
        throughput_per_hour: verified contributions per human-hour.
        alp_hours: average lifetime play per player, in hours.
        expected_contribution: throughput × ALP.
        sessions: sessions observed.
        human_hours: total human time in the measured campaign.
    """

    game: str
    throughput_per_hour: float
    alp_hours: float
    expected_contribution: float
    sessions: int
    human_hours: float

    def row(self) -> str:
        """A formatted table row matching the paper's layout."""
        return (f"{self.game:<12} {self.throughput_per_hour:>12.1f} "
                f"{self.alp_hours:>10.2f} "
                f"{self.expected_contribution:>14.0f}")


def expected_contribution(throughput_per_hour: float,
                          alp_hours: float) -> float:
    """Expected verified outputs from one average player's lifetime.

    The arithmetic is shared with the live dashboard via
    :mod:`repro.analytics.defs`; this wrapper adds the offline
    pipeline's input validation.
    """
    if throughput_per_hour < 0 or alp_hours < 0:
        raise SimulationError(
            "throughput and ALP must be >= 0, got "
            f"{throughput_per_hour}, {alp_hours}")
    return defs.expected_contribution(throughput_per_hour, alp_hours)


def gwap_metrics(game: str, result: CampaignResult,
                 population: Sequence[PlayerModel],
                 engagement: Optional[EngagementModel] = None,
                 verified_only: bool = True) -> GwapMetrics:
    """Summarize a campaign into the paper's three-metric row.

    ALP comes from the engagement model's population mean (the model is
    per-player deterministic, so this is the same number the campaign's
    budgets were drawn from); without a model, ALP falls back to the
    observed mean play time per distinct participant.
    """
    throughput = result.throughput_per_hour(verified_only=verified_only)
    if engagement is not None:
        alp_hours = engagement.average_lifetime_play_s(
            population) / 3600.0
    else:
        participants = {player for outcome in result.outcomes
                        for player in outcome.players}
        alp_hours = defs.alp_hours(result.human_seconds,
                                   len(participants))
    return GwapMetrics(
        game=game, throughput_per_hour=throughput, alp_hours=alp_hours,
        expected_contribution=expected_contribution(throughput,
                                                    alp_hours),
        sessions=len(result.outcomes), human_hours=result.human_hours)
