"""Cumulative-count time series for the growth figures.

Small, dependency-free series utilities: bucketed cumulative counts of a
timestamp stream (label growth, F1) and per-bucket rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class Series:
    """An (x, y) series with convenience accessors."""

    points: Tuple[Tuple[float, float], ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    @property
    def final(self) -> float:
        """The last y value (0.0 for an empty series)."""
        if not self.points:
            return 0.0
        return self.points[-1][1]

    def is_monotonic(self) -> bool:
        """Whether y never decreases (true for cumulative series)."""
        return all(self.points[i][1] <= self.points[i + 1][1]
                   for i in range(len(self.points) - 1))


def cumulative_counts(timestamps: Sequence[float],
                      bucket_s: float = 3600.0,
                      horizon_s: float = 0.0) -> Series:
    """Cumulative event count at the end of each bucket.

    Args:
        timestamps: event times (seconds).
        bucket_s: bucket width.
        horizon_s: minimum series horizon (extends past the last event).
    """
    if bucket_s <= 0:
        raise SimulationError(f"bucket_s must be > 0, got {bucket_s}")
    ordered = sorted(timestamps)
    horizon = max(horizon_s, ordered[-1] if ordered else 0.0)
    buckets = max(1, -int(-horizon // bucket_s))
    if ordered and ordered[-1] >= buckets * bucket_s:
        buckets += 1
    points: List[Tuple[float, float]] = []
    index = 0
    for bucket in range(buckets):
        end = (bucket + 1) * bucket_s
        while index < len(ordered) and ordered[index] < end:
            index += 1
        points.append((end, float(index)))
    return Series(points=tuple(points))


def rate_per_hour(timestamps: Sequence[float],
                  bucket_s: float = 3600.0) -> Series:
    """Per-bucket event rate, scaled to events/hour."""
    cumulative = cumulative_counts(timestamps, bucket_s=bucket_s)
    points: List[Tuple[float, float]] = []
    previous = 0.0
    for x, y in cumulative:
        points.append((x, (y - previous) * 3600.0 / bucket_s))
        previous = y
    return Series(points=tuple(points))
