"""Label quality against corpus ground truth.

Because the synthetic corpora expose their salience distributions, label
quality is measurable exactly:

- :func:`label_precision_recall` — of the labels a campaign collected,
  how many are ground-truth relevant (precision), and how much of the
  ground-truth tag mass was recovered (salience-weighted recall).
- :func:`label_entropy` — diversity of an item's collected label set.
- :func:`label_novelty` — fraction of labels outside an item's top-k
  obvious tags (what the taboo mechanism is supposed to raise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.corpus.images import ImageCorpus
from repro.errors import SimulationError


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision/recall summary over a labeled corpus."""

    precision: float
    recall: float
    labels: int
    items: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return (2 * self.precision * self.recall
                / (self.precision + self.recall))


def label_precision_recall(labels: Mapping[str, Sequence[str]],
                           corpus: ImageCorpus,
                           relevance_threshold: float = 0.0
                           ) -> PrecisionRecall:
    """Score collected labels against the corpus.

    Args:
        labels: item_id -> collected labels.
        corpus: the ground-truth corpus.
        relevance_threshold: minimum salience for a label to count as
            relevant.

    Precision is label-weighted; recall is salience-mass-weighted (a
    campaign that recovers only the obvious tags still gets substantial
    recall, matching how the original evaluations credited ESP labels).
    """
    total_labels = 0
    correct_labels = 0
    recovered_mass = 0.0
    total_mass = 0.0
    for item_id, item_labels in labels.items():
        image = corpus.image(item_id)
        label_set = set(item_labels)
        for label in item_labels:
            total_labels += 1
            if image.is_relevant(label, relevance_threshold):
                correct_labels += 1
        for text, mass in image.salience.items():
            total_mass += mass
            if text in label_set:
                recovered_mass += mass
    precision = correct_labels / total_labels if total_labels else 0.0
    recall = recovered_mass / total_mass if total_mass else 0.0
    return PrecisionRecall(precision=precision, recall=recall,
                           labels=total_labels, items=len(labels))


def label_entropy(labels: Sequence[str]) -> float:
    """Shannon entropy (nats) of a label multiset (0.0 when empty)."""
    if not labels:
        return 0.0
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    total = len(labels)
    return -sum((c / total) * math.log(c / total)
                for c in counts.values())


def label_novelty(labels: Mapping[str, Sequence[str]],
                  corpus: ImageCorpus, obvious_k: int = 2) -> float:
    """Fraction of collected labels outside each item's top-k tags.

    The taboo mechanism's success measure: without taboo words pairs
    keep re-agreeing on the obvious tags (novelty near 0); with them the
    stream shifts to deeper tags.
    """
    if obvious_k < 0:
        raise SimulationError(f"obvious_k must be >= 0, got {obvious_k}")
    total = 0
    novel = 0
    for item_id, item_labels in labels.items():
        obvious = set(corpus.image(item_id).top_tags(obvious_k))
        for label in item_labels:
            total += 1
            if label not in obvious:
                novel += 1
    if total == 0:
        return 0.0
    return novel / total


def distinct_labels(labels: Mapping[str, Sequence[str]]) -> int:
    """Total distinct (item, label) pairs collected."""
    return sum(len(set(item_labels))
               for item_labels in labels.values())
