"""Observed engagement statistics from a finished campaign.

The engagement *model* sets lifetime budgets a priori; these helpers
measure what actually happened — the observed play-time distribution,
its concentration (the paper notes a devoted minority contributed most
hours, some exceeding 50 h/week), and return/retention behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:   # annotation-only: a runtime import would close
    # the cycle games -> platform -> obs.live -> analytics -> sim ->
    # games.
    from repro.sim.engine import CampaignResult


@dataclass(frozen=True)
class EngagementStats:
    """Observed per-player engagement summary.

    Attributes:
        players: distinct participants.
        observed_alp_s: mean play seconds per participant.
        median_play_s: median play seconds.
        top_decile_share: fraction of total play time contributed by
            the most-engaged 10% of players.
        max_sessions: most sessions by any single player.
        returning_fraction: players with more than one session.
    """

    players: int
    observed_alp_s: float
    median_play_s: float
    top_decile_share: float
    max_sessions: int
    returning_fraction: float


def _play_time_by_player(result: CampaignResult) -> Dict[str, float]:
    times: Dict[str, float] = {}
    for outcome in result.outcomes:
        for player in outcome.players:
            if player.startswith("recorded:"):
                continue
            times[player] = times.get(player, 0.0) + outcome.duration_s
    return times


def _sessions_by_player(result: CampaignResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for outcome in result.outcomes:
        for player in outcome.players:
            if player.startswith("recorded:"):
                continue
            counts[player] = counts.get(player, 0) + 1
    return counts


def engagement_stats(result: CampaignResult) -> EngagementStats:
    """Summarize observed engagement for a finished campaign."""
    times = _play_time_by_player(result)
    if not times:
        raise SimulationError(
            "campaign produced no sessions to analyze")
    values = sorted(times.values())
    total = sum(values)
    n = len(values)
    decile = max(1, n // 10)
    top_share = sum(values[-decile:]) / total if total > 0 else 0.0
    sessions = _sessions_by_player(result)
    returning = sum(1 for count in sessions.values() if count > 1)
    return EngagementStats(
        players=n,
        observed_alp_s=total / n,
        median_play_s=values[n // 2],
        top_decile_share=top_share,
        max_sessions=max(sessions.values()),
        returning_fraction=returning / n)


def play_time_distribution(result: CampaignResult,
                           buckets: Sequence[float] = (
                               60.0, 300.0, 900.0, 3600.0, 14400.0)
                           ) -> List[Tuple[str, int]]:
    """Histogram of per-player total play time.

    Returns (bucket label, player count) pairs; the last bucket is
    open-ended.
    """
    times = _play_time_by_player(result)
    edges = sorted(buckets)
    counts = [0] * (len(edges) + 1)
    for value in times.values():
        placed = False
        for index, edge in enumerate(edges):
            if value < edge:
                counts[index] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    labels = []
    previous = 0.0
    for edge in edges:
        labels.append(f"{previous / 60:.0f}-{edge / 60:.0f} min")
        previous = edge
    labels.append(f">{previous / 60:.0f} min")
    return list(zip(labels, counts))
