"""Uncertainty estimates for campaign metrics.

Simulated campaigns are stochastic; a single run's throughput or
precision is a point estimate.  This module provides the two tools the
benchmarks and reports use to qualify such numbers:

- :func:`bootstrap_ci` — percentile bootstrap confidence interval of
  any statistic of a sample (e.g. per-session throughput).
- :func:`proportion_ci` — Wilson score interval for success counts
  (e.g. label precision, agreement rates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import rng as _rng
from repro.errors import SimulationError


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise SimulationError(
                f"interval reversed: [{self.low}, {self.high}]")

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(sample: Sequence[float],
                 statistic: Callable[[Sequence[float]], float] = None,
                 confidence: float = 0.95, resamples: int = 2000,
                 seed: _rng.SeedLike = 0) -> Interval:
    """Percentile-bootstrap CI of ``statistic`` over ``sample``.

    Args:
        sample: observed values (>= 2).
        statistic: reducer (default: mean).
        confidence: interval mass, in (0, 1).
        resamples: bootstrap resamples.
        seed: RNG seed (bootstrap is deterministic under it).
    """
    if len(sample) < 2:
        raise SimulationError(
            f"bootstrap needs >= 2 observations, got {len(sample)}")
    if not 0.0 < confidence < 1.0:
        raise SimulationError(
            f"confidence must be in (0,1), got {confidence}")
    if resamples < 10:
        raise SimulationError(
            f"resamples must be >= 10, got {resamples}")
    if statistic is None:
        statistic = lambda values: sum(values) / len(values)  # noqa: E731
    rng = _rng.make_rng(seed)
    n = len(sample)
    estimates = []
    for _ in range(resamples):
        resample = [sample[rng.randrange(n)] for _ in range(n)]
        estimates.append(statistic(resample))
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * resamples)
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return Interval(estimate=statistic(sample),
                    low=estimates[low_index],
                    high=estimates[high_index],
                    confidence=confidence)


# Normal quantiles for the Wilson interval at common confidences.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def proportion_ci(successes: int, trials: int,
                  confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or all successes), unlike the
    normal approximation — important because promoted-label precision
    is frequently exactly 1.0 in small campaigns.
    """
    if trials <= 0:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise SimulationError(
            f"successes ({successes}) outside [0, {trials}]")
    if confidence not in _Z:
        raise SimulationError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}")
    z = _Z[confidence]
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # Snap floating-point residue at the boundaries so degenerate
    # proportions (0 or 1) sit inside their own interval.
    if low < 1e-12:
        low = 0.0
    if high > 1.0 - 1e-12:
        high = 1.0
    return Interval(estimate=p, low=low, high=high,
                    confidence=confidence)
