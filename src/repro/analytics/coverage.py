"""Corpus coverage: how much of the item space has verified output.

The overview's scaling argument — "with enough play, virtually all
images will be labeled" — is a coverage claim.  These helpers compute
the fraction of a corpus with at least ``k`` verified outputs, and the
coverage-over-time curve behind figure F2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.entities import Contribution
from repro.errors import SimulationError


def coverage_fraction(contributions: Sequence[Contribution],
                      corpus_size: int, min_outputs: int = 1,
                      verified_only: bool = True) -> float:
    """Fraction of items with >= ``min_outputs`` (verified) outputs."""
    if corpus_size <= 0:
        raise SimulationError(
            f"corpus_size must be >= 1, got {corpus_size}")
    if min_outputs < 1:
        raise SimulationError(
            f"min_outputs must be >= 1, got {min_outputs}")
    counts: Dict[str, int] = {}
    for contribution in contributions:
        if verified_only and not contribution.verified:
            continue
        counts[contribution.item_id] = counts.get(
            contribution.item_id, 0) + 1
    covered = sum(1 for count in counts.values()
                  if count >= min_outputs)
    return covered / corpus_size


def coverage_curve(contributions: Sequence[Contribution],
                   corpus_size: int, bucket_s: float = 3600.0,
                   min_outputs: int = 1, verified_only: bool = True
                   ) -> List[Tuple[float, float]]:
    """Coverage fraction at the end of each time bucket.

    Returns (bucket_end_s, coverage) points, cumulative over time.
    """
    if bucket_s <= 0:
        raise SimulationError(f"bucket_s must be > 0, got {bucket_s}")
    usable = [c for c in contributions
              if c.verified or not verified_only]
    if not usable:
        return []
    usable.sort(key=lambda c: c.timestamp)
    horizon = usable[-1].timestamp
    buckets = int(horizon // bucket_s) + 1
    counts: Dict[str, int] = {}
    curve: List[Tuple[float, float]] = []
    index = 0
    for bucket in range(buckets):
        end = (bucket + 1) * bucket_s
        while index < len(usable) and usable[index].timestamp < end:
            item = usable[index].item_id
            counts[item] = counts.get(item, 0) + 1
            index += 1
        covered = sum(1 for count in counts.values()
                      if count >= min_outputs)
        curve.append((end, covered / corpus_size))
    return curve
