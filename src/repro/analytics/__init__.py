"""Evaluation metrics for human-computation systems.

Implements the paper's GWAP evaluation framework and the label-quality
measurements the benchmarks report:

- :mod:`repro.analytics.throughput` — throughput, average lifetime play
  (ALP) and expected contribution.
- :mod:`repro.analytics.quality` — precision/recall of collected labels
  against corpus ground truth, label-set entropy and novelty.
- :mod:`repro.analytics.coverage` — item coverage curves (fraction of
  the corpus with >= k verified outputs over time).
- :mod:`repro.analytics.timeseries` — cumulative-count series utilities
  behind the growth figures.
"""

from repro.analytics.throughput import (GwapMetrics, expected_contribution,
                                        gwap_metrics)
from repro.analytics.quality import (label_entropy, label_novelty,
                                     label_precision_recall)
from repro.analytics.coverage import coverage_curve, coverage_fraction
from repro.analytics.timeseries import (Series, cumulative_counts,
                                        rate_per_hour)
from repro.analytics.stats import Interval, bootstrap_ci, proportion_ci
from repro.analytics.retention import (EngagementStats, engagement_stats,
                                       play_time_distribution)
from repro.analytics.report import campaign_report
from repro.analytics.events import (label_growth_from_events,
                                    player_activity,
                                    promotions_by_item,
                                    replay_consistency_check,
                                    session_summary)

__all__ = [
    "Interval", "bootstrap_ci", "proportion_ci",
    "EngagementStats", "engagement_stats", "play_time_distribution",
    "campaign_report",
    "label_growth_from_events", "promotions_by_item",
    "session_summary", "player_activity", "replay_consistency_check",
    "GwapMetrics", "expected_contribution", "gwap_metrics",
    "label_precision_recall", "label_entropy", "label_novelty",
    "coverage_curve", "coverage_fraction",
    "Series", "cumulative_counts", "rate_per_hour",
]
