"""Analytics straight from a game's event log.

Games append structured events (``label``, ``promotion``, ``session``,
game-specific rounds) to their :class:`~repro.core.events.EventLog`.
These helpers turn a (possibly reloaded) log back into the standard
analyses, so a dumped log file is a sufficient record of a campaign —
no live game object needed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analytics.timeseries import Series, cumulative_counts
from repro.core.events import EventLog
from repro.errors import SimulationError


def label_growth_from_events(log: EventLog,
                             bucket_s: float = 3600.0,
                             kind: str = "label") -> Series:
    """Cumulative verified-label series from ``label`` events."""
    stamps = [event.at_s for event in log.of_kind(kind)]
    if not stamps:
        return Series(points=())
    return cumulative_counts(stamps, bucket_s=bucket_s)


def promotions_by_item(log: EventLog) -> Dict[str, List[str]]:
    """item -> promoted labels, in promotion order, from the log."""
    out: Dict[str, List[str]] = {}
    for event in log.of_kind("promotion"):
        out.setdefault(event.data["item"], []).append(
            event.data["label"])
    return out


def session_summary(log: EventLog) -> Dict[str, float]:
    """Aggregate session statistics from ``session`` events."""
    sessions = log.of_kind("session")
    if not sessions:
        raise SimulationError("log contains no session events")
    rounds = sum(event.data.get("rounds", 0) for event in sessions)
    successes = sum(event.data.get("successes", 0)
                    for event in sessions)
    return {
        "sessions": float(len(sessions)),
        "rounds": float(rounds),
        "successes": float(successes),
        "agreement_rate": successes / rounds if rounds else 0.0,
        "rounds_per_session": rounds / len(sessions),
    }


def player_activity(log: EventLog) -> Dict[str, int]:
    """player -> sessions participated, from ``session`` events."""
    out: Dict[str, int] = {}
    for event in log.of_kind("session"):
        for player in event.data.get("players", []):
            out[player] = out.get(player, 0) + 1
    return out


def replay_consistency_check(log: EventLog) -> List[str]:
    """Sanity-check a log: every promotion must follow enough labels.

    Returns a list of human-readable inconsistencies (empty = clean).
    Used to validate reloaded logs before analysis.
    """
    problems: List[str] = []
    label_counts: Dict[Tuple[str, str], int] = {}
    for event in log:
        if event.kind == "label":
            key = (event.data["item"], event.data["label"])
            label_counts[key] = label_counts.get(key, 0) + 1
        elif event.kind == "promotion":
            key = (event.data["item"], event.data["label"])
            if label_counts.get(key, 0) < 1:
                problems.append(
                    f"promotion of {key[1]!r} on {key[0]!r} at "
                    f"{event.at_s:.1f}s has no preceding label event")
    return problems
