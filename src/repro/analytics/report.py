"""Campaign reports: one call, the full picture as text.

:func:`campaign_report` renders everything a campaign operator wants to
see — GWAP metrics, label quality, engagement, growth — as a plain-text
report (the format the CLI prints and tests can assert on).  All
sections degrade gracefully when their inputs are absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analytics.coverage import coverage_fraction
from repro.analytics.quality import label_precision_recall
from repro.analytics.retention import (engagement_stats,
                                       play_time_distribution)
from repro.analytics.stats import proportion_ci
from repro.analytics.throughput import gwap_metrics
from repro.analytics.timeseries import cumulative_counts
from repro.errors import SimulationError
from repro.players.base import PlayerModel
from repro.players.engagement import EngagementModel

if TYPE_CHECKING:   # annotation-only: a runtime import would close
    # the cycle games -> platform -> obs.live -> analytics -> sim ->
    # games.
    from repro.sim.engine import CampaignResult


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def campaign_report(game_name: str, result: CampaignResult,
                    population: Sequence[PlayerModel],
                    engagement: Optional[EngagementModel] = None,
                    corpus=None, game=None,
                    bucket_s: float = 3600.0) -> str:
    """Render a full text report for a finished campaign.

    Args:
        game_name: display name.
        result: the campaign result.
        population: the player pool.
        engagement: optional engagement model (for model-based ALP).
        corpus: optional image corpus (enables quality + coverage
            sections).
        game: optional :class:`~repro.games.esp.EspGame` (enables the
            promoted-label section).
        bucket_s: time bucket for the growth series.
    """
    if not result.outcomes:
        raise SimulationError("cannot report an empty campaign")
    lines: List[str] = []
    out = lines.append
    out(f"=== campaign report: {game_name} ===")
    out("")

    metrics = gwap_metrics(game_name, result, population, engagement)
    out("-- GWAP metrics --")
    out(f"sessions:              {metrics.sessions}")
    out(f"human hours:           {metrics.human_hours:.1f}")
    out(f"throughput:            "
        f"{metrics.throughput_per_hour:.1f} verified/human-hour")
    out(f"avg lifetime play:     {metrics.alp_hours:.2f} h")
    out(f"expected contribution: {metrics.expected_contribution:.0f}")
    out("")

    if corpus is not None and game is not None:
        promoted = {item: list(labels)
                    for item, labels in game.good_labels().items()}
        out("-- label quality --")
        if promoted:
            pr = label_precision_recall(promoted, corpus)
            interval = proportion_ci(
                int(round(pr.precision * pr.labels)),
                max(1, pr.labels))
            out(f"promoted labels:       {pr.labels}")
            out(f"precision:             {pr.precision:.3f} "
                f"(95% CI [{interval.low:.3f}, {interval.high:.3f}])")
            out(f"salience recall:       {pr.recall:.3f}")
        else:
            out("promoted labels:       0")
        coverage = coverage_fraction(result.contributions, len(corpus))
        out(f"coverage (k=1):        {coverage:.2f}  "
            f"[{_bar(coverage)}]")
        out("")

    out("-- engagement --")
    stats = engagement_stats(result)
    out(f"players active:        {stats.players}")
    out(f"observed ALP:          {stats.observed_alp_s / 60:.1f} min")
    out(f"top-decile share:      {stats.top_decile_share:.0%} of all "
        "play time")
    out(f"returning players:     {stats.returning_fraction:.0%}")
    out("play-time distribution:")
    histogram = play_time_distribution(result)
    peak = max(count for _, count in histogram) or 1
    for label, count in histogram:
        out(f"  {label:>12}: {count:4d} [{_bar(count / peak, 20)}]")
    out("")

    out("-- output growth --")
    stamps = [c.timestamp for c in result.verified_contributions]
    if stamps:
        series = cumulative_counts(stamps, bucket_s=bucket_s)
        final = series.final or 1.0
        for end, count in series:
            out(f"  {end / 3600.0:5.1f}h {int(count):7d} "
                f"[{_bar(count / final, 20)}]")
    else:
        out("  (no verified output)")
    return "\n".join(lines)
