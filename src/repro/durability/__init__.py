"""Crash-safe persistence: write-ahead log, checkpoints, fsck.

The platform appends every mutating operation to a
:class:`~repro.durability.log.DurabilityLog` before acknowledging it,
rotates checkpoints at a record threshold, and recovers by loading the
newest valid checkpoint and replaying the WAL tail.  ``repro fsck``
diagnoses a durability directory offline.
"""

from repro.durability.fsck import (FsckIssue, FsckReport, cluster_fsck,
                                   fsck)
from repro.durability.log import (CHECKPOINT_FORMAT,
                                  DEFAULT_CHECKPOINT_EVERY,
                                  DurabilityLog)
from repro.durability.wal import (FRAME_HEADER, SegmentScan, WalRecord,
                                  atomic_write_bytes, atomic_write_text,
                                  crc32c, decode_frame, encode_frame,
                                  encode_record, scan_segment)

__all__ = [
    "CHECKPOINT_FORMAT",
    "DEFAULT_CHECKPOINT_EVERY",
    "DurabilityLog",
    "FRAME_HEADER",
    "FsckIssue",
    "FsckReport",
    "SegmentScan",
    "WalRecord",
    "atomic_write_bytes",
    "atomic_write_text",
    "cluster_fsck",
    "crc32c",
    "decode_frame",
    "encode_frame",
    "encode_record",
    "fsck",
    "scan_segment",
]
