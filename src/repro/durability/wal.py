"""The write-ahead-log record format and file primitives.

One WAL *frame* is::

    [4 bytes  payload length, big-endian]
    [4 bytes  CRC32C of the payload, big-endian]
    [N bytes  payload: canonical JSON {"seq", "op", "data"}, UTF-8]

Frames are strictly appended; a crash can therefore only ever leave a
*prefix* of the intended bytes on disk, which is why a torn final frame
is recoverable (truncate it) while a CRC mismatch anywhere else is real
corruption (the bytes changed after they were written).  Checkpoints
reuse the same frame so every byte of durable state — snapshot and log
alike — is covered by a checksum.

CRC32C (the Castagnoli polynomial, the variant used by ext4, iSCSI and
LevelDB's log format) is implemented here table-driven in pure Python:
records are small and the stdlib only ships CRC32.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import StoreCorruptError

#: Frame header: payload length then payload CRC32C, both uint32 BE.
FRAME_HEADER = struct.Struct(">II")

#: Upper bound on a single record's payload — a framing sanity check,
#: not a practical limit (a length field this large means corruption).
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024


def _build_crc32c_table() -> List[int]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ 0x82F63B78 if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, chainable via ``crc``."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32C_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record.

    ``batch`` is the group-commit marker: the first record of a
    multi-frame commit batch carries the batch's frame count; every
    other record (including all single-frame commits) carries None.
    Recovery ignores it — it exists so ``repro fsck`` can reconstruct
    batch framing after the fact.
    """

    seq: int
    op: str
    data: Dict[str, Any]
    batch: Optional[int] = None


def encode_record(seq: int, op: str, data: Dict[str, Any],
                  batch: Optional[int] = None) -> bytes:
    """Frame one record (header + canonical JSON payload).

    ``batch`` stamps the group-commit marker onto the payload; omit it
    (the default) for single-frame commits so their byte layout is
    identical to the pre-group-commit format.
    """
    document: Dict[str, Any] = {"seq": seq, "op": op, "data": data}
    if batch is not None:
        document["batch"] = batch
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return FRAME_HEADER.pack(len(payload), crc32c(payload)) + payload


def encode_frame(document: Dict[str, Any]) -> bytes:
    """Frame an arbitrary JSON document (checkpoint files)."""
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return FRAME_HEADER.pack(len(payload), crc32c(payload)) + payload


def decode_frame(raw: bytes) -> Dict[str, Any]:
    """Decode a whole buffer holding exactly one frame.

    Raises :class:`~repro.errors.StoreCorruptError` on a short buffer,
    CRC mismatch, trailing bytes, or non-JSON payload.
    """
    if len(raw) < FRAME_HEADER.size:
        raise StoreCorruptError(
            f"frame truncated: {len(raw)} bytes < "
            f"{FRAME_HEADER.size}-byte header")
    length, checksum = FRAME_HEADER.unpack_from(raw)
    if length > MAX_PAYLOAD_BYTES:
        raise StoreCorruptError(
            f"frame length {length} exceeds sanity bound")
    payload = raw[FRAME_HEADER.size:FRAME_HEADER.size + length]
    if len(payload) < length:
        raise StoreCorruptError(
            f"frame truncated: payload {len(payload)}/{length} bytes")
    if len(raw) != FRAME_HEADER.size + length:
        raise StoreCorruptError(
            f"{len(raw) - FRAME_HEADER.size - length} trailing bytes "
            "after frame")
    if crc32c(payload) != checksum:
        raise StoreCorruptError("frame checksum mismatch")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"frame payload is not JSON: {exc}") from exc


@dataclass
class SegmentScan:
    """Everything a scan of one WAL segment file learned.

    Attributes:
        records: the frames that decoded cleanly, in file order.
        good_bytes: offset of the first byte not covered by a clean
            frame (the file size when the segment is clean).
        torn: the file ended mid-frame — the signature of a crash
            during an append; recovery truncates to ``good_bytes``.
        error: a non-torn defect (CRC mismatch, insane length, bad
            JSON, seq regression) at ``good_bytes``, or None.  Unlike a
            torn tail this cannot come from a crashed append, so it is
            never silently healed.
    """

    records: List[WalRecord]
    good_bytes: int
    torn: bool = False
    error: Optional[str] = None


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Decode every clean frame of a segment, stopping at the first
    torn or corrupt one."""
    raw = Path(path).read_bytes()
    records: List[WalRecord] = []
    offset = 0
    last_seq: Optional[int] = None
    while offset < len(raw):
        remaining = len(raw) - offset
        if remaining < FRAME_HEADER.size:
            return SegmentScan(records, offset, torn=True)
        length, checksum = FRAME_HEADER.unpack_from(raw, offset)
        if length > MAX_PAYLOAD_BYTES:
            return SegmentScan(
                records, offset,
                error=f"frame length {length} exceeds sanity bound")
        if remaining < FRAME_HEADER.size + length:
            return SegmentScan(records, offset, torn=True)
        payload = raw[offset + FRAME_HEADER.size:
                      offset + FRAME_HEADER.size + length]
        if crc32c(payload) != checksum:
            return SegmentScan(records, offset,
                               error="frame checksum mismatch")
        try:
            doc = json.loads(payload.decode("utf-8"))
            batch = doc.get("batch")
            record = WalRecord(seq=int(doc["seq"]), op=str(doc["op"]),
                               data=dict(doc["data"]),
                               batch=None if batch is None else int(batch))
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError, ValueError) as exc:
            return SegmentScan(records, offset,
                               error=f"undecodable record: {exc}")
        if last_seq is not None and record.seq != last_seq + 1:
            return SegmentScan(
                records, offset,
                error=f"sequence jump {last_seq} -> {record.seq}")
        last_seq = record.seq
        records.append(record)
        offset += FRAME_HEADER.size + length
    return SegmentScan(records, offset)


# ----------------------------------------------------------------------
# Durable file helpers
# ----------------------------------------------------------------------

def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a rename inside it is durable (no-op on
    platforms whose directories cannot be opened)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write a file atomically: temp sibling, fsync, ``os.replace``.

    A crash at any point leaves either the old file or the new one,
    never a truncated hybrid.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_dir(target.parent)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"))
