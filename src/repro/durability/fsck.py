"""Offline integrity checker for a durability directory.

:func:`fsck` walks every checkpoint and WAL segment byte by byte and
reports everything wrong with them, without mutating anything:

- **Framing / checksum** — undersized or oversized frames, CRC32C
  mismatches, undecodable payloads, torn tails.  Because every durable
  byte lives inside a checksummed frame (checkpoints included), any
  flipped byte surfaces here.
- **Sequencing** — gaps or regressions in the record stream, a WAL
  tail that does not meet its covering checkpoint, segments whose
  first record disagrees with their filename.
- **References** — records naming jobs/tasks that neither the
  checkpoint nor an earlier record created (orphans), and unknown
  operation kinds.

A clean directory produces an empty report; ``repro fsck`` prints
nothing and exits 0 on one, and prints one line per issue and exits 1
otherwise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.errors import StoreCorruptError
from repro.durability.log import (CHECKPOINT_FORMAT, _CHECKPOINT_RE,
                                  _SEGMENT_RE)
from repro.durability.wal import decode_frame, scan_segment

#: Operations the platform writes, with the references each one makes.
KNOWN_OPS = frozenset({
    "register", "create_job", "add_task", "start_job", "archive_job",
    "assign", "answer", "dedupe", "disconnect", "promotion",
})


@dataclass(frozen=True)
class FsckIssue:
    """One diagnostic: where, what kind, and the detail."""

    path: str
    kind: str
    detail: str
    seq: Optional[int] = None
    offset: Optional[int] = None

    def line(self) -> str:
        where = self.path
        if self.offset is not None:
            where += f" @byte {self.offset}"
        if self.seq is not None:
            where += f" seq {self.seq}"
        return f"{where}: {self.kind}: {self.detail}"


@dataclass
class FsckReport:
    """Everything :func:`fsck` learned about one directory."""

    root: str
    checkpoints: int = 0
    segments: int = 0
    records: int = 0
    checkpoint_seq: int = 0
    last_seq: int = 0
    issues: List[FsckIssue] = field(default_factory=list)
    #: Group-commit framing: frames-per-batch -> number of batches
    #: (records with no ``batch`` marker count as 1-frame batches).
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    #: Torn batches: a marker declared N frames but the log ends
    #: early.  Informational, not an issue — a crash between the
    #: batch's write and its fsync legitimately leaves this shape,
    #: and recovery replays the durable prefix.
    torn_batches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def lines(self) -> List[str]:
        return [issue.line() for issue in self.issues]

    def summary(self) -> str:
        state = "clean" if self.ok else f"{len(self.issues)} issue(s)"
        return (f"{self.root}: {state} — {self.checkpoints} "
                f"checkpoint(s), {self.segments} segment(s), "
                f"{self.records} record(s), checkpoint seq "
                f"{self.checkpoint_seq}, last seq {self.last_seq}")

    def batch_lines(self) -> List[str]:
        """Human-readable group-commit framing report."""
        out = []
        for frames in sorted(self.batch_histogram):
            count = self.batch_histogram[frames]
            out.append(f"batches of {frames} frame(s): {count}")
        out.extend(f"torn batch: {detail}"
                   for detail in self.torn_batches)
        return out


def _check_checkpoint(path: Path, seq: int,
                      report: FsckReport) -> Optional[Dict[str, Any]]:
    """Validate one checkpoint file; returns its state when clean."""
    try:
        document = decode_frame(path.read_bytes())
    except StoreCorruptError as exc:
        report.issues.append(FsckIssue(
            path.name, "checkpoint-corrupt", str(exc), seq=seq))
        return None
    if (not isinstance(document, dict)
            or document.get("format") != CHECKPOINT_FORMAT
            or not isinstance(document.get("state"), dict)
            or document.get("seq") != seq):
        report.issues.append(FsckIssue(
            path.name, "checkpoint-corrupt",
            "decoded but structurally invalid "
            "(format/seq/state fields)", seq=seq))
        return None
    return document["state"]


def _reference_sets(state: Optional[Dict[str, Any]]
                    ) -> Dict[str, Set[str]]:
    """Known job/task ids seeded from a checkpoint's store document."""
    jobs: Set[str] = set()
    tasks: Set[str] = set()
    store = (state or {}).get("store", {})
    for raw in store.get("jobs", []):
        if isinstance(raw, dict) and "job_id" in raw:
            jobs.add(str(raw["job_id"]))
    for raw in store.get("tasks", []):
        if isinstance(raw, dict) and "task_id" in raw:
            tasks.add(str(raw["task_id"]))
    return {"jobs": jobs, "tasks": tasks}


def _check_references(record, refs: Dict[str, Set[str]], name: str,
                      report: FsckReport) -> None:
    """Orphan-reference diagnostics for one record."""
    data = record.data
    op = record.op

    def missing(kind: str, key: str) -> None:
        ident = data.get(key)
        if ident is None:
            report.issues.append(FsckIssue(
                name, "orphan-ref", f"{op} record lacks {key!r}",
                seq=record.seq))
        elif str(ident) not in refs[kind]:
            report.issues.append(FsckIssue(
                name, "orphan-ref",
                f"{op} references unknown {kind[:-1]} {ident!r}",
                seq=record.seq))

    if op not in KNOWN_OPS:
        report.issues.append(FsckIssue(
            name, "unknown-op", f"unknown operation {op!r}",
            seq=record.seq))
        return
    if op == "create_job":
        if "job_id" in data:
            refs["jobs"].add(str(data["job_id"]))
    elif op == "add_task":
        missing("jobs", "job_id")
        if "task_id" in data:
            refs["tasks"].add(str(data["task_id"]))
    elif op in ("start_job", "archive_job", "promotion"):
        missing("jobs", "job_id")
    elif op == "assign":
        missing("jobs", "job_id")
        missing("tasks", "task_id")
    elif op in ("answer", "dedupe"):
        missing("tasks", "task_id")


def fsck(root: Union[str, Path]) -> FsckReport:
    """Diagnose one durability directory without mutating it."""
    root = Path(root)
    report = FsckReport(root=str(root))
    if not root.is_dir():
        report.issues.append(FsckIssue(
            str(root), "missing", "not a directory"))
        return report

    for stale in sorted(root.glob("*.tmp")):
        report.issues.append(FsckIssue(
            stale.name, "stale-tmp",
            "leftover temp file from an interrupted checkpoint"))

    checkpoints = []
    segments = []
    for path in sorted(root.iterdir()):
        match = _CHECKPOINT_RE.match(path.name)
        if match:
            checkpoints.append((int(match.group(1)), path))
            continue
        match = _SEGMENT_RE.match(path.name)
        if match:
            segments.append((int(match.group(1)), path))
    checkpoints.sort()
    segments.sort()
    report.checkpoints = len(checkpoints)
    report.segments = len(segments)

    newest_state: Optional[Dict[str, Any]] = None
    for seq, path in checkpoints:
        state = _check_checkpoint(path, seq, report)
        if state is not None:
            newest_state = state
            report.checkpoint_seq = seq
    refs = _reference_sets(newest_state)

    expected: Optional[int] = None
    batches = _BatchTracker(report)
    for index, (first_seq, path) in enumerate(segments):
        scan = scan_segment(path)
        if scan.error is not None:
            report.issues.append(FsckIssue(
                path.name, "corrupt-record", scan.error,
                offset=scan.good_bytes))
        elif scan.torn:
            kind = ("torn-tail" if index == len(segments) - 1
                    else "torn-record")
            report.issues.append(FsckIssue(
                path.name, kind,
                "file ends inside a record (crashed append; recovery "
                "truncates this)" if kind == "torn-tail"
                else "record torn in a non-final segment",
                offset=scan.good_bytes))
        if scan.records and scan.records[0].seq != first_seq:
            report.issues.append(FsckIssue(
                path.name, "seq-gap",
                f"first record is seq {scan.records[0].seq}, "
                f"filename claims {first_seq}"))
        for record in scan.records:
            report.records += 1
            batches.feed(record)
            report.last_seq = max(report.last_seq, record.seq)
            if expected is not None and record.seq != expected:
                report.issues.append(FsckIssue(
                    path.name, "seq-gap",
                    f"expected seq {expected}, found {record.seq}",
                    seq=record.seq))
            expected = record.seq + 1
            if record.seq > report.checkpoint_seq:
                _check_references(record, refs, path.name, report)

    if (report.checkpoint_seq and segments
            and report.last_seq > report.checkpoint_seq):
        first_tail = min(
            (record_seq for record_seq in _all_seqs(segments)
             if record_seq > report.checkpoint_seq), default=None)
        if first_tail is not None and first_tail != \
                report.checkpoint_seq + 1:
            report.issues.append(FsckIssue(
                str(root), "seq-gap",
                f"WAL tail starts at seq {first_tail}; checkpoint "
                f"covers {report.checkpoint_seq}"))
    batches.finish()
    return report


class _BatchTracker:
    """Reconstructs group-commit batches from ``batch`` markers.

    A group commit stamps its frame count on the batch's first record;
    the following ``count - 1`` records belong to it.  Unmarked
    records are single-frame batches.  A marker whose frames never
    fully arrive (crash between write and fsync truncated the tail)
    is *informational* — recovery handles it — so it lands in
    :attr:`FsckReport.torn_batches`, never in ``issues``.
    """

    def __init__(self, report: FsckReport) -> None:
        self._report = report
        self._remaining = 0
        self._declared = 0
        self._start_seq = 0

    def feed(self, record) -> None:
        if self._remaining:
            if record.batch is None:
                self._remaining -= 1
                if not self._remaining:
                    self._count(self._declared)
                return
            # A new marker inside an unfinished batch: the rest of
            # the previous batch is missing (torn mid-batch).
            self._torn()
        if record.batch is not None and record.batch > 1:
            self._declared = int(record.batch)
            self._remaining = self._declared - 1
            self._start_seq = record.seq
        else:
            self._count(1)

    def finish(self) -> None:
        if self._remaining:
            self._torn()

    def _count(self, frames: int) -> None:
        histogram = self._report.batch_histogram
        histogram[frames] = histogram.get(frames, 0) + 1

    def _torn(self) -> None:
        got = self._declared - self._remaining
        self._count(got)
        self._report.torn_batches.append(
            f"batch at seq {self._start_seq} declared "
            f"{self._declared} frame(s), only {got} present")
        self._remaining = 0
        self._declared = 0


def _all_seqs(segments) -> List[int]:
    seqs: List[int] = []
    for _, path in segments:
        seqs.extend(record.seq for record in
                    scan_segment(path).records)
    return seqs


#: Node durability directories under a cluster root (see
#: ``repro.cluster.supervisor.NODE_DIR_FORMAT``).
_NODE_DIR_RE = re.compile(r"node-(\d+)$")


def cluster_fsck(root: Union[str, Path]) -> Dict[int, FsckReport]:
    """Diagnose every node directory under a cluster root.

    Walks ``root/node-*/`` (the layout ``repro.cluster`` writes, one
    durability directory per shard-owning node) and runs :func:`fsck`
    on each.  Returns reports keyed by node index; an empty dict
    means the root holds no node directories — callers should treat
    that as a configuration error rather than a clean cluster.
    """
    root = Path(root)
    reports: Dict[int, FsckReport] = {}
    for path in sorted(root.iterdir()) if root.is_dir() else []:
        match = _NODE_DIR_RE.match(path.name)
        if match and path.is_dir():
            reports[int(match.group(1))] = fsck(path)
    return reports
