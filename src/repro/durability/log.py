"""The durability log: WAL segments plus rotating checkpoints.

A :class:`DurabilityLog` owns one directory::

    data/
      checkpoint-000000000180.ckpt   # framed snapshot covering seq <= 180
      wal-000000000181.log           # records 181..N (name = first seq)

Protocol (the classic WAL discipline):

- **Append** — every mutating platform operation is framed, appended to
  the current segment, flushed and fsynced *before* the operation is
  acknowledged.  Sequence numbers are monotone and contiguous.
- **Group commit** — concurrent appenders stage their frames into a
  commit queue; one of them (the *leader*) writes the whole batch and
  issues a single fsync that acknowledges every staged frame at once,
  bounded by :class:`GroupCommitConfig` (``max_delay_s`` /
  ``max_bytes`` / ``max_frames``).  Each caller blocks only until the
  batch holding *its* frame is durable.  A single-threaded caller
  degenerates to a batch of one whose byte layout is identical to the
  pre-group-commit format; the first frame of a multi-frame batch
  carries a ``batch`` marker (its frame count) so ``repro fsck`` can
  reconstruct batch framing.
- **Checkpoint** — every ``checkpoint_every`` records the platform
  snapshots its durable state; the snapshot is framed and written
  atomically (temp + fsync + ``os.replace``), the live segment is
  rotated, and segments wholly covered by the checkpoint are deleted.
  The two newest checkpoints are kept (belt and braces); older ones
  are pruned.
- **Recover** — load the newest checkpoint that decodes cleanly, then
  replay every record with a higher sequence number.  A torn final
  record (the signature of a crash mid-append) is truncated, not
  fatal; a checksum mismatch or sequence gap anywhere else raises
  :class:`~repro.errors.StoreCorruptError` — those bytes changed after
  they were acknowledged, and silently dropping them would lose
  acknowledged work.

The log's internal lock is a leaf: nothing else is ever acquired while
it is held, so callers may append while holding any platform lock.
Crash-point faults simulate a process kill mid-write:

- ``wal.append`` (``at_byte`` = offset into the *batch* buffer): the
  batch's first ``at_byte`` bytes reach disk, then
  :class:`~repro.errors.InjectedCrash` propagates to the leader and
  every staged follower.  ``at_byte=0`` is the staged-not-synced kill;
  a mid-buffer offset is the mid-batch-fsync kill.
- ``wal.ack``: the batch is fully written *and fsynced* but the crash
  lands before any caller is acknowledged — the durable-but-unacked
  case the recovery contract explicitly permits.
- ``wal.checkpoint``: dies mid-snapshot (only the temp file is
  touched).

Once a crash fires the log is *dead*: every in-flight and subsequent
append re-raises the original error until a fresh instance recovers
the directory.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import InjectedCrash, StoreCorruptError
from repro.durability.wal import (FRAME_HEADER, SegmentScan, WalRecord,
                                  atomic_write_bytes, decode_frame,
                                  encode_frame, encode_record,
                                  fsync_dir, scan_segment)

#: Checkpoint snapshot document format version.
CHECKPOINT_FORMAT = 1

#: Default record count between automatic checkpoints.
DEFAULT_CHECKPOINT_EVERY = 512

#: How many checkpoint generations survive a rotation.
KEPT_CHECKPOINTS = 2

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")
_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.log$")


@dataclass(frozen=True)
class GroupCommitConfig:
    """Tuning knobs for WAL group commit.

    Attributes:
        max_delay_s: how long the commit leader may linger collecting
            more frames before forcing the fsync.  0 (the default)
            relies on *natural* batching: whatever stages while the
            previous fsync is in flight forms the next batch — no
            added latency, near-ideal batching under contention.
        max_frames: hard cap on frames per batch.
        max_bytes: soft cap on batch payload bytes; a batch closes
            once staged frames reach it (a single oversized frame
            still commits alone).
    """

    max_delay_s: float = 0.0
    max_frames: int = 128
    max_bytes: int = 1 << 20


@dataclass(frozen=True)
class _Staged:
    """One frame parked in the commit queue."""

    seq: int
    op: str
    data: Dict[str, Any]
    frame: bytes


def _checkpoint_name(seq: int) -> str:
    return f"checkpoint-{seq:012d}.ckpt"


def _segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:012d}.log"


class DurabilityLog:
    """Append-only WAL with checkpoint rotation over one directory.

    Args:
        root: the data directory (created if missing).  Stale ``*.tmp``
            files from interrupted checkpoints are removed on open, and
            a torn final record in the newest segment is truncated.
        checkpoint_every: records between automatic checkpoints
            (consulted by the platform via :meth:`should_checkpoint`).
        fsync: fsync after every append.  Leave on for real
            durability; ``False`` trades crash safety for speed in
            throwaway simulations.
        faults: optional :class:`~repro.faults.FaultInjector` consulted
            at the ``wal.append`` and ``wal.checkpoint`` crash-point
            sites.
        registry: metrics registry for ``wal.appends``,
            ``wal.checkpoints``, ``wal.truncated_tails``, the
            ``wal.*_latency_s`` histograms and ``wal.*_bytes``
            counters (the process default if omitted).
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  When set
            (the platform wires its own in), each append runs inside a
            ``wal.append`` span with a nested ``wal.fsync`` span, and
            checkpoints inside ``wal.checkpoint`` — so a trace shows
            exactly where the disk time went.  None = no spans.
        group_commit: ``True`` (the default) enables group commit with
            :class:`GroupCommitConfig` defaults; pass a
            :class:`GroupCommitConfig` to tune the batching knobs, or
            ``False`` for the legacy one-fsync-per-append path.
    """

    def __init__(self, root: Union[str, Path],
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 fsync: bool = True,
                 faults=None,
                 registry=None,
                 tracer=None,
                 group_commit: Union[bool, GroupCommitConfig] = True
                 ) -> None:
        if checkpoint_every < 1:
            raise StoreCorruptError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.faults = faults
        self.tracer = tracer
        from repro.obs.metrics import default_registry
        self.registry = (registry if registry is not None
                         else default_registry())
        self._m_appends = self.registry.counter(
            "wal.appends", "WAL records appended, by op")
        self._m_checkpoints = self.registry.counter(
            "wal.checkpoints", "checkpoints written")
        self._m_truncated = self.registry.counter(
            "wal.truncated_tails",
            "torn WAL tails truncated during recovery")
        self._m_append_latency = self.registry.histogram(
            "wal.append_latency_s",
            "full append latency (encode + write + fsync)")
        self._m_fsync_latency = self.registry.histogram(
            "wal.fsync_latency_s", "fsync portion of each append")
        self._m_ckpt_latency = self.registry.histogram(
            "wal.checkpoint_latency_s",
            "checkpoint write + rotation latency")
        self._m_append_bytes = self.registry.counter(
            "wal.append_bytes", "bytes appended to WAL segments")
        self._m_ckpt_bytes = self.registry.counter(
            "wal.checkpoint_bytes", "bytes written to checkpoints")
        self._m_group_commits = self.registry.counter(
            "wal.group_commits", "commit batches written (one fsync each)")
        self._m_batch_frames = self.registry.histogram(
            "wal.batch_frames", "frames per group-commit batch",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
        if group_commit is True:
            self._group: Optional[GroupCommitConfig] = GroupCommitConfig()
        elif group_commit is False or group_commit is None:
            self._group = None
        else:
            self._group = group_commit
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._staged: List[_Staged] = []
        self._staged_bytes = 0
        self._leading = False
        self._dead: Optional[BaseException] = None
        self._handle = None
        self._current_segment: Optional[Path] = None
        for stale in self.root.glob("*.tmp"):
            stale.unlink()
        self._seq = 0
        self._since_checkpoint = 0
        # Monotonic timestamp of the newest checkpoint *this process*
        # wrote (or the open, when the directory already had one) —
        # feeds the ``last_checkpoint_age_s`` health field, which is
        # about checkpoint cadence, not file mtimes.
        self._checkpointed_monotonic: Optional[float] = None
        self._scan_directory()
        if self._checkpoint_files():
            self._checkpointed_monotonic = time.monotonic()
        self._next_seq = self._seq

    # ------------------------------------------------------------------
    # Directory state
    # ------------------------------------------------------------------

    def _checkpoint_files(self) -> List[Tuple[int, Path]]:
        """(seq, path) of every checkpoint file, newest first."""
        found = []
        for path in self.root.iterdir():
            match = _CHECKPOINT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found, reverse=True)

    def _segment_files(self) -> List[Tuple[int, Path]]:
        """(first_seq, path) of every WAL segment, oldest first."""
        found = []
        for path in self.root.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def _scan_directory(self) -> None:
        """Establish the next sequence number from disk, truncating a
        torn tail in the newest segment (a crashed append)."""
        checkpoint_seq = 0
        files = self._checkpoint_files()
        if files:
            checkpoint_seq = files[0][0]
        last_seq = checkpoint_seq
        records_after = 0
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            scan = scan_segment(path)
            if scan.torn:
                if index != len(segments) - 1:
                    raise StoreCorruptError(
                        f"{path.name}: torn record in a non-final "
                        "WAL segment")
                self._truncate_segment(path, scan)
            if scan.records:
                last_seq = max(last_seq, scan.records[-1].seq)
                records_after += sum(
                    1 for record in scan.records
                    if record.seq > checkpoint_seq)
        self._seq = last_seq
        self._since_checkpoint = records_after
        if segments and segments[-1][1].exists():
            self._current_segment = segments[-1][1]

    def _truncate_segment(self, path: Path, scan: SegmentScan) -> None:
        """Cut a torn final record off a segment (crash mid-append)."""
        with open(path, "r+b") as handle:
            handle.truncate(scan.good_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        self._m_truncated.inc()
        if scan.good_bytes == 0 and not scan.records:
            # Nothing durable ever landed in this segment.
            path.unlink()
            fsync_dir(self.root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the newest durable record."""
        with self._lock:
            return self._seq

    def should_checkpoint(self) -> bool:
        """Whether the rotation threshold has been reached."""
        with self._lock:
            return self._since_checkpoint >= self.checkpoint_every

    def status(self) -> Dict[str, Any]:
        """A JSON-able health summary (the ``/healthz`` payload)."""
        with self._lock:
            seq = self._seq
            since = self._since_checkpoint
        checkpoints = self._checkpoint_files()
        age = (time.monotonic() - self._checkpointed_monotonic
               if self._checkpointed_monotonic is not None else None)
        return {
            "dir": str(self.root),
            "seq": seq,
            "checkpoint_seq": checkpoints[0][0] if checkpoints else 0,
            "records_since_checkpoint": since,
            "segments": len(self._segment_files()),
            "checkpoints": len(checkpoints),
            "last_checkpoint_age_s": age,
        }

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def append(self, op: str, data: Dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (written, flushed, fsynced) before this
        returns — the platform acknowledges the operation only after.
        Under group commit the caller blocks until the batch holding
        its frame is durable; it may share that fsync with any number
        of concurrent appenders.
        """
        return self._append_many([(op, data)])[0]

    def append_batch(self, ops: List[Tuple[str, Dict[str, Any]]]
                     ) -> List[int]:
        """Durably append several records, staged together.

        All frames enter the commit queue atomically (their sequence
        numbers are contiguous) and the call returns once the last one
        is durable — with group commit enabled they share fsyncs,
        split only by the ``max_frames`` / ``max_bytes`` knobs.  A
        crash mid-batch can persist any *prefix* of the records; none
        of them were acknowledged, so nothing acknowledged is lost.
        """
        if not ops:
            return []
        return self._append_many(ops)

    def _append_many(self, ops: List[Tuple[str, Dict[str, Any]]]
                     ) -> List[int]:
        tracer = self.tracer
        first_op = ops[0][0]
        span_cm = (tracer.span("wal.append", op=first_op)
                   if tracer is not None else nullcontext(None))
        trace_id = (tracer.current_trace_id()
                    if tracer is not None else None)
        started = time.perf_counter()
        with span_cm:
            if self._group is None:
                seqs = self._append_serial(ops, trace_id)
            else:
                seqs = self._append_grouped(ops, trace_id)
        latency = time.perf_counter() - started
        for op, _ in ops:
            self._m_appends.inc(op=op)
        self._m_append_latency.observe(latency, exemplar=trace_id)
        return seqs

    def _append_serial(self, ops: List[Tuple[str, Dict[str, Any]]],
                       trace_id: Optional[str]) -> List[int]:
        """The legacy path: one write + fsync per record, serialized
        under the log lock."""
        tracer = self.tracer
        seqs: List[int] = []
        with self._lock:
            for op, data in ops:
                seq = self._seq + 1
                frame = encode_record(seq, op, data)
                handle = self._open_segment(seq)
                self._maybe_crash(handle, frame, "wal.append")
                handle.write(frame)
                handle.flush()
                if self.fsync:
                    fsync_cm = (tracer.span("wal.fsync")
                                if tracer is not None
                                else nullcontext(None))
                    fsync_started = time.perf_counter()
                    with fsync_cm:
                        os.fsync(handle.fileno())
                    self._m_fsync_latency.observe(
                        time.perf_counter() - fsync_started,
                        exemplar=trace_id)
                self._seq = seq
                self._next_seq = seq
                self._since_checkpoint += 1
                self._m_append_bytes.inc(len(frame))
                seqs.append(seq)
        return seqs

    def _append_grouped(self, ops: List[Tuple[str, Dict[str, Any]]],
                        trace_id: Optional[str]) -> List[int]:
        """Stage frames in the commit queue, then either lead the
        commit or wait for a leader to make them durable."""
        seqs: List[int] = []
        is_leader = False
        with self._cv:
            if self._dead is not None:
                raise self._dead
            for op, data in ops:
                self._next_seq += 1
                seq = self._next_seq
                frame = encode_record(seq, op, data)
                self._staged.append(_Staged(seq, op, data, frame))
                self._staged_bytes += len(frame)
                seqs.append(seq)
            last = seqs[-1]
            while True:
                if self._dead is not None:
                    raise self._dead
                if self._seq >= last:
                    return seqs
                if not self._leading:
                    # Nobody is committing: this caller leads.
                    self._leading = True
                    is_leader = True
                    break
                self._cv.wait()
        assert is_leader
        self._lead(last, trace_id)
        return seqs

    def _lead(self, my_seq: int, trace_id: Optional[str]) -> None:
        """Drain the commit queue as the batch leader.

        Runs outside the log lock (exclusivity comes from the
        ``_leading`` flag); keeps committing batches until the queue
        is empty and its own frame is durable, so the queue is never
        left leaderless while non-empty.  On any IO failure the log is
        marked dead and every waiter re-raises the same error.
        """
        gc = self._group
        try:
            while True:
                if gc.max_delay_s > 0:
                    self._linger(gc)
                with self._cv:
                    batch = self._take_batch(gc)
                    if not batch:
                        if self._seq >= my_seq:
                            return
                        continue
                self._commit_batch(batch, trace_id)
                with self._cv:
                    self._seq = batch[-1].seq
                    self._since_checkpoint += len(batch)
                    self._cv.notify_all()
                    if self._seq >= my_seq and not self._staged:
                        return
        except BaseException as exc:
            with self._cv:
                self._dead = exc
                self._cv.notify_all()
            raise
        finally:
            with self._cv:
                self._leading = False
                self._cv.notify_all()

    def _linger(self, gc: GroupCommitConfig) -> None:
        """Let more writers stage before closing the batch (only when
        ``max_delay_s`` asks for it; the default 0 relies on natural
        batching during the previous fsync)."""
        deadline = time.monotonic() + gc.max_delay_s
        while True:
            with self._cv:
                if (len(self._staged) >= gc.max_frames
                        or self._staged_bytes >= gc.max_bytes):
                    return
            now = time.monotonic()
            if now >= deadline:
                return
            time.sleep(min(0.0005, deadline - now))

    def _take_batch(self, gc: GroupCommitConfig) -> List[_Staged]:
        """Pop the next batch off the queue (lock held by caller)."""
        count = 0
        batch_bytes = 0
        for staged in self._staged:
            if count and (count >= gc.max_frames
                          or batch_bytes >= gc.max_bytes):
                break
            count += 1
            batch_bytes += len(staged.frame)
        batch = self._staged[:count]
        del self._staged[:count]
        self._staged_bytes -= batch_bytes
        return batch

    def _commit_batch(self, batch: List[_Staged],
                      trace_id: Optional[str]) -> None:
        """Write one batch and make it durable with a single fsync."""
        tracer = self.tracer
        frames = [staged.frame for staged in batch]
        if len(batch) > 1:
            # Stamp the batch marker on the first frame only, so
            # single-frame commits keep the legacy byte layout.
            head = batch[0]
            frames[0] = encode_record(head.seq, head.op, head.data,
                                      batch=len(batch))
        buffer = b"".join(frames)
        handle = self._open_segment(batch[0].seq)
        self._maybe_crash(handle, buffer, "wal.append")
        handle.write(buffer)
        handle.flush()
        if self.fsync:
            fsync_cm = (tracer.span("wal.fsync")
                        if tracer is not None else nullcontext(None))
            fsync_started = time.perf_counter()
            with fsync_cm:
                os.fsync(handle.fileno())
            self._m_fsync_latency.observe(
                time.perf_counter() - fsync_started, exemplar=trace_id)
        self._maybe_crash_ack(len(batch))
        self._m_append_bytes.inc(len(buffer))
        self._m_group_commits.inc()
        self._m_batch_frames.observe(float(len(batch)))

    def _open_segment(self, first_seq: int):
        if self._handle is None:
            if self._current_segment is None:
                self._current_segment = (
                    self.root / _segment_name(first_seq))
            self._handle = open(self._current_segment, "ab")
        return self._handle

    def _maybe_crash(self, handle, frame: bytes, site: str) -> None:
        """Simulate a process kill mid-write when a crash-point rule
        fires: the frame's first ``at_byte`` bytes reach disk, then
        :class:`~repro.errors.InjectedCrash` propagates.  ``at_byte``
        of None (or past the frame) means the write completed but the
        process died before acknowledging."""
        faults = self.faults
        if faults is None:
            return
        rule = faults.crash_point(site)
        if rule is None:
            return
        cut = len(frame) if rule.at_byte is None else min(
            max(rule.at_byte, 0), len(frame))
        handle.write(frame[:cut])
        handle.flush()
        os.fsync(handle.fileno())
        raise InjectedCrash(
            f"injected crash at {site} after {cut}/{len(frame)} bytes")

    def _maybe_crash_ack(self, frames: int) -> None:
        """The post-fsync-pre-ack crash point: the batch is fully
        durable, but the process dies before any caller hears back.
        Recovery will replay these records even though no ack was ever
        delivered — the contract allows durable-but-unacked writes."""
        faults = self.faults
        if faults is None:
            return
        rule = faults.crash_point("wal.ack")
        if rule is None:
            return
        raise InjectedCrash(
            f"injected crash at wal.ack: batch of {frames} frame(s) "
            "durable but unacknowledged")

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, state: Dict[str, Any],
                   at_seq: Optional[int] = None) -> int:
        """Write a snapshot covering records up to ``at_seq``, rotate
        the live segment, and delete segments the snapshot covers.

        ``at_seq`` must be captured *before* the state snapshot is
        taken (effects of later records may be included; replay is
        idempotent, so re-applying them is harmless — but a record
        newer than its covering checkpoint must never be skipped).
        Defaults to the current sequence number.  Returns ``at_seq``.
        """
        tracer = self.tracer
        span_cm = (tracer.span("wal.checkpoint")
                   if tracer is not None else nullcontext(None))
        trace_id = (tracer.current_trace_id()
                    if tracer is not None else None)
        started = time.perf_counter()
        with span_cm:
            with self._cv:
                # Let the commit leader finish draining: the queue is
                # guaranteed empty once nobody is leading, so the
                # rotation below never races a batch write.
                while self._leading:
                    self._cv.wait()
                if self._dead is not None:
                    raise self._dead
                seq = self._seq if at_seq is None else at_seq
                frame = encode_frame({"format": CHECKPOINT_FORMAT,
                                      "seq": seq, "state": state})
                target = self.root / _checkpoint_name(seq)
                self._checkpoint_write(target, frame)
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
                self._current_segment = None
                self._rotate(seq)
                self._since_checkpoint = self._seq - seq
                self._checkpointed_monotonic = time.monotonic()
        self._m_ckpt_latency.observe(
            time.perf_counter() - started, exemplar=trace_id)
        self._m_ckpt_bytes.inc(len(frame))
        self._m_checkpoints.inc()
        return seq

    def _checkpoint_write(self, target: Path, frame: bytes) -> None:
        faults = self.faults
        if faults is not None:
            rule = faults.crash_point("wal.checkpoint")
            if rule is not None:
                # Die mid-snapshot: only the temp file is touched, so
                # the previous checkpoint generation stays intact.
                tmp = target.with_name(target.name + ".tmp")
                cut = (len(frame) if rule.at_byte is None
                       else min(max(rule.at_byte, 0), len(frame)))
                tmp.write_bytes(frame[:cut])
                raise InjectedCrash(
                    f"injected crash at wal.checkpoint after "
                    f"{cut}/{len(frame)} bytes")
        atomic_write_bytes(target, frame)

    def _rotate(self, covered_seq: int) -> None:
        """Delete segments wholly covered by the checkpoint and prune
        old checkpoint generations."""
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            if index + 1 < len(segments):
                newest_record = segments[index + 1][0] - 1
            else:
                newest_record = self._seq
            if newest_record <= covered_seq:
                path.unlink()
        for seq, path in self._checkpoint_files()[KEPT_CHECKPOINTS:]:
            path.unlink()
        fsync_dir(self.root)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def load_checkpoint(self) -> Tuple[int, Optional[Dict[str, Any]]]:
        """The newest checkpoint that decodes cleanly.

        Returns ``(seq, state)``, or ``(0, None)`` when no valid
        checkpoint exists.  A corrupt newer generation falls back to
        the older one — replay then covers the gap from the WAL.
        """
        for seq, path in self._checkpoint_files():
            try:
                document = decode_frame(path.read_bytes())
            except StoreCorruptError:
                continue
            if (not isinstance(document, dict)
                    or document.get("format") != CHECKPOINT_FORMAT
                    or not isinstance(document.get("state"), dict)
                    or document.get("seq") != seq):
                continue
            return seq, document["state"]
        return 0, None

    def replay(self, after_seq: int) -> Iterator[WalRecord]:
        """Yield every durable record with ``seq > after_seq``.

        A torn final record was already truncated on open; a sequence
        gap or checksum failure raises
        :class:`~repro.errors.StoreCorruptError` (run ``repro fsck``
        for a full diagnosis).
        """
        expected: Optional[int] = None
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            scan = scan_segment(path)
            if scan.error is not None:
                raise StoreCorruptError(
                    f"{path.name} at byte {scan.good_bytes}: "
                    f"{scan.error}")
            if scan.torn:
                if index != len(segments) - 1:
                    raise StoreCorruptError(
                        f"{path.name}: torn record in a non-final "
                        "WAL segment")
                self._truncate_segment(path, scan)
            for record in scan.records:
                if record.seq <= after_seq:
                    continue
                if expected is not None and record.seq != expected:
                    raise StoreCorruptError(
                        f"{path.name}: WAL sequence gap "
                        f"({expected} expected, {record.seq} found)")
                if expected is None and record.seq != after_seq + 1:
                    raise StoreCorruptError(
                        f"{path.name}: WAL tail starts at "
                        f"{record.seq}, checkpoint covers {after_seq}")
                yield record
                expected = record.seq + 1

    def close(self) -> None:
        """Close the live segment handle (appends reopen it), after
        any in-flight commit batch drains."""
        with self._cv:
            while self._leading:
                self._cv.wait()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
