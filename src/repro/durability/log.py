"""The durability log: WAL segments plus rotating checkpoints.

A :class:`DurabilityLog` owns one directory::

    data/
      checkpoint-000000000180.ckpt   # framed snapshot covering seq <= 180
      wal-000000000181.log           # records 181..N (name = first seq)

Protocol (the classic WAL discipline):

- **Append** — every mutating platform operation is framed, appended to
  the current segment, flushed and fsynced *before* the operation is
  acknowledged.  Sequence numbers are monotone and contiguous.
- **Checkpoint** — every ``checkpoint_every`` records the platform
  snapshots its durable state; the snapshot is framed and written
  atomically (temp + fsync + ``os.replace``), the live segment is
  rotated, and segments wholly covered by the checkpoint are deleted.
  The two newest checkpoints are kept (belt and braces); older ones
  are pruned.
- **Recover** — load the newest checkpoint that decodes cleanly, then
  replay every record with a higher sequence number.  A torn final
  record (the signature of a crash mid-append) is truncated, not
  fatal; a checksum mismatch or sequence gap anywhere else raises
  :class:`~repro.errors.StoreCorruptError` — those bytes changed after
  they were acknowledged, and silently dropping them would lose
  acknowledged work.

The log's internal lock is a leaf: nothing else is ever acquired while
it is held, so callers may append while holding any platform lock.
Crash-point faults (``wal.append`` / ``wal.checkpoint`` sites) simulate
a process kill mid-write: the frame's first ``at_byte`` bytes reach
disk and :class:`~repro.errors.InjectedCrash` propagates.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import InjectedCrash, StoreCorruptError
from repro.durability.wal import (FRAME_HEADER, SegmentScan, WalRecord,
                                  atomic_write_bytes, decode_frame,
                                  encode_frame, encode_record,
                                  fsync_dir, scan_segment)

#: Checkpoint snapshot document format version.
CHECKPOINT_FORMAT = 1

#: Default record count between automatic checkpoints.
DEFAULT_CHECKPOINT_EVERY = 512

#: How many checkpoint generations survive a rotation.
KEPT_CHECKPOINTS = 2

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")
_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.log$")


def _checkpoint_name(seq: int) -> str:
    return f"checkpoint-{seq:012d}.ckpt"


def _segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:012d}.log"


class DurabilityLog:
    """Append-only WAL with checkpoint rotation over one directory.

    Args:
        root: the data directory (created if missing).  Stale ``*.tmp``
            files from interrupted checkpoints are removed on open, and
            a torn final record in the newest segment is truncated.
        checkpoint_every: records between automatic checkpoints
            (consulted by the platform via :meth:`should_checkpoint`).
        fsync: fsync after every append.  Leave on for real
            durability; ``False`` trades crash safety for speed in
            throwaway simulations.
        faults: optional :class:`~repro.faults.FaultInjector` consulted
            at the ``wal.append`` and ``wal.checkpoint`` crash-point
            sites.
        registry: metrics registry for ``wal.appends``,
            ``wal.checkpoints``, ``wal.truncated_tails``, the
            ``wal.*_latency_s`` histograms and ``wal.*_bytes``
            counters (the process default if omitted).
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  When set
            (the platform wires its own in), each append runs inside a
            ``wal.append`` span with a nested ``wal.fsync`` span, and
            checkpoints inside ``wal.checkpoint`` — so a trace shows
            exactly where the disk time went.  None = no spans.
    """

    def __init__(self, root: Union[str, Path],
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 fsync: bool = True,
                 faults=None,
                 registry=None,
                 tracer=None) -> None:
        if checkpoint_every < 1:
            raise StoreCorruptError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.faults = faults
        self.tracer = tracer
        from repro.obs.metrics import default_registry
        self.registry = (registry if registry is not None
                         else default_registry())
        self._m_appends = self.registry.counter(
            "wal.appends", "WAL records appended, by op")
        self._m_checkpoints = self.registry.counter(
            "wal.checkpoints", "checkpoints written")
        self._m_truncated = self.registry.counter(
            "wal.truncated_tails",
            "torn WAL tails truncated during recovery")
        self._m_append_latency = self.registry.histogram(
            "wal.append_latency_s",
            "full append latency (encode + write + fsync)")
        self._m_fsync_latency = self.registry.histogram(
            "wal.fsync_latency_s", "fsync portion of each append")
        self._m_ckpt_latency = self.registry.histogram(
            "wal.checkpoint_latency_s",
            "checkpoint write + rotation latency")
        self._m_append_bytes = self.registry.counter(
            "wal.append_bytes", "bytes appended to WAL segments")
        self._m_ckpt_bytes = self.registry.counter(
            "wal.checkpoint_bytes", "bytes written to checkpoints")
        self._lock = threading.Lock()
        self._handle = None
        self._current_segment: Optional[Path] = None
        for stale in self.root.glob("*.tmp"):
            stale.unlink()
        self._seq = 0
        self._since_checkpoint = 0
        self._scan_directory()

    # ------------------------------------------------------------------
    # Directory state
    # ------------------------------------------------------------------

    def _checkpoint_files(self) -> List[Tuple[int, Path]]:
        """(seq, path) of every checkpoint file, newest first."""
        found = []
        for path in self.root.iterdir():
            match = _CHECKPOINT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found, reverse=True)

    def _segment_files(self) -> List[Tuple[int, Path]]:
        """(first_seq, path) of every WAL segment, oldest first."""
        found = []
        for path in self.root.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def _scan_directory(self) -> None:
        """Establish the next sequence number from disk, truncating a
        torn tail in the newest segment (a crashed append)."""
        checkpoint_seq = 0
        files = self._checkpoint_files()
        if files:
            checkpoint_seq = files[0][0]
        last_seq = checkpoint_seq
        records_after = 0
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            scan = scan_segment(path)
            if scan.torn:
                if index != len(segments) - 1:
                    raise StoreCorruptError(
                        f"{path.name}: torn record in a non-final "
                        "WAL segment")
                self._truncate_segment(path, scan)
            if scan.records:
                last_seq = max(last_seq, scan.records[-1].seq)
                records_after += sum(
                    1 for record in scan.records
                    if record.seq > checkpoint_seq)
        self._seq = last_seq
        self._since_checkpoint = records_after
        if segments and segments[-1][1].exists():
            self._current_segment = segments[-1][1]

    def _truncate_segment(self, path: Path, scan: SegmentScan) -> None:
        """Cut a torn final record off a segment (crash mid-append)."""
        with open(path, "r+b") as handle:
            handle.truncate(scan.good_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        self._m_truncated.inc()
        if scan.good_bytes == 0 and not scan.records:
            # Nothing durable ever landed in this segment.
            path.unlink()
            fsync_dir(self.root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the newest durable record."""
        with self._lock:
            return self._seq

    def should_checkpoint(self) -> bool:
        """Whether the rotation threshold has been reached."""
        with self._lock:
            return self._since_checkpoint >= self.checkpoint_every

    def status(self) -> Dict[str, Any]:
        """A JSON-able health summary (the ``/healthz`` payload)."""
        with self._lock:
            seq = self._seq
            since = self._since_checkpoint
        checkpoints = self._checkpoint_files()
        return {
            "dir": str(self.root),
            "seq": seq,
            "checkpoint_seq": checkpoints[0][0] if checkpoints else 0,
            "records_since_checkpoint": since,
            "segments": len(self._segment_files()),
            "checkpoints": len(checkpoints),
        }

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------

    def append(self, op: str, data: Dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The record is on disk (written, flushed, fsynced) before this
        returns — the platform acknowledges the operation only after.
        """
        tracer = self.tracer
        span_cm = (tracer.span("wal.append", op=op)
                   if tracer is not None else nullcontext(None))
        trace_id = (tracer.current_trace_id()
                    if tracer is not None else None)
        started = time.perf_counter()
        with span_cm:
            with self._lock:
                seq = self._seq + 1
                frame = encode_record(seq, op, data)
                handle = self._open_segment(seq)
                self._maybe_crash(handle, frame, "wal.append")
                handle.write(frame)
                handle.flush()
                if self.fsync:
                    fsync_cm = (tracer.span("wal.fsync")
                                if tracer is not None
                                else nullcontext(None))
                    fsync_started = time.perf_counter()
                    with fsync_cm:
                        os.fsync(handle.fileno())
                    self._m_fsync_latency.observe(
                        time.perf_counter() - fsync_started,
                        exemplar=trace_id)
                self._seq = seq
                self._since_checkpoint += 1
        self._m_append_latency.observe(
            time.perf_counter() - started, exemplar=trace_id)
        self._m_append_bytes.inc(len(frame))
        self._m_appends.inc(op=op)
        return seq

    def _open_segment(self, first_seq: int):
        if self._handle is None:
            if self._current_segment is None:
                self._current_segment = (
                    self.root / _segment_name(first_seq))
            self._handle = open(self._current_segment, "ab")
        return self._handle

    def _maybe_crash(self, handle, frame: bytes, site: str) -> None:
        """Simulate a process kill mid-write when a crash-point rule
        fires: the frame's first ``at_byte`` bytes reach disk, then
        :class:`~repro.errors.InjectedCrash` propagates.  ``at_byte``
        of None (or past the frame) means the write completed but the
        process died before acknowledging."""
        faults = self.faults
        if faults is None:
            return
        rule = faults.crash_point(site)
        if rule is None:
            return
        cut = len(frame) if rule.at_byte is None else min(
            max(rule.at_byte, 0), len(frame))
        handle.write(frame[:cut])
        handle.flush()
        os.fsync(handle.fileno())
        raise InjectedCrash(
            f"injected crash at {site} after {cut}/{len(frame)} bytes")

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, state: Dict[str, Any],
                   at_seq: Optional[int] = None) -> int:
        """Write a snapshot covering records up to ``at_seq``, rotate
        the live segment, and delete segments the snapshot covers.

        ``at_seq`` must be captured *before* the state snapshot is
        taken (effects of later records may be included; replay is
        idempotent, so re-applying them is harmless — but a record
        newer than its covering checkpoint must never be skipped).
        Defaults to the current sequence number.  Returns ``at_seq``.
        """
        tracer = self.tracer
        span_cm = (tracer.span("wal.checkpoint")
                   if tracer is not None else nullcontext(None))
        trace_id = (tracer.current_trace_id()
                    if tracer is not None else None)
        started = time.perf_counter()
        with span_cm:
            with self._lock:
                seq = self._seq if at_seq is None else at_seq
                frame = encode_frame({"format": CHECKPOINT_FORMAT,
                                      "seq": seq, "state": state})
                target = self.root / _checkpoint_name(seq)
                self._checkpoint_write(target, frame)
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
                self._current_segment = None
                self._rotate(seq)
                self._since_checkpoint = self._seq - seq
        self._m_ckpt_latency.observe(
            time.perf_counter() - started, exemplar=trace_id)
        self._m_ckpt_bytes.inc(len(frame))
        self._m_checkpoints.inc()
        return seq

    def _checkpoint_write(self, target: Path, frame: bytes) -> None:
        faults = self.faults
        if faults is not None:
            rule = faults.crash_point("wal.checkpoint")
            if rule is not None:
                # Die mid-snapshot: only the temp file is touched, so
                # the previous checkpoint generation stays intact.
                tmp = target.with_name(target.name + ".tmp")
                cut = (len(frame) if rule.at_byte is None
                       else min(max(rule.at_byte, 0), len(frame)))
                tmp.write_bytes(frame[:cut])
                raise InjectedCrash(
                    f"injected crash at wal.checkpoint after "
                    f"{cut}/{len(frame)} bytes")
        atomic_write_bytes(target, frame)

    def _rotate(self, covered_seq: int) -> None:
        """Delete segments wholly covered by the checkpoint and prune
        old checkpoint generations."""
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            if index + 1 < len(segments):
                newest_record = segments[index + 1][0] - 1
            else:
                newest_record = self._seq
            if newest_record <= covered_seq:
                path.unlink()
        for seq, path in self._checkpoint_files()[KEPT_CHECKPOINTS:]:
            path.unlink()
        fsync_dir(self.root)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def load_checkpoint(self) -> Tuple[int, Optional[Dict[str, Any]]]:
        """The newest checkpoint that decodes cleanly.

        Returns ``(seq, state)``, or ``(0, None)`` when no valid
        checkpoint exists.  A corrupt newer generation falls back to
        the older one — replay then covers the gap from the WAL.
        """
        for seq, path in self._checkpoint_files():
            try:
                document = decode_frame(path.read_bytes())
            except StoreCorruptError:
                continue
            if (not isinstance(document, dict)
                    or document.get("format") != CHECKPOINT_FORMAT
                    or not isinstance(document.get("state"), dict)
                    or document.get("seq") != seq):
                continue
            return seq, document["state"]
        return 0, None

    def replay(self, after_seq: int) -> Iterator[WalRecord]:
        """Yield every durable record with ``seq > after_seq``.

        A torn final record was already truncated on open; a sequence
        gap or checksum failure raises
        :class:`~repro.errors.StoreCorruptError` (run ``repro fsck``
        for a full diagnosis).
        """
        expected: Optional[int] = None
        segments = self._segment_files()
        for index, (first_seq, path) in enumerate(segments):
            scan = scan_segment(path)
            if scan.error is not None:
                raise StoreCorruptError(
                    f"{path.name} at byte {scan.good_bytes}: "
                    f"{scan.error}")
            if scan.torn:
                if index != len(segments) - 1:
                    raise StoreCorruptError(
                        f"{path.name}: torn record in a non-final "
                        "WAL segment")
                self._truncate_segment(path, scan)
            for record in scan.records:
                if record.seq <= after_seq:
                    continue
                if expected is not None and record.seq != expected:
                    raise StoreCorruptError(
                        f"{path.name}: WAL sequence gap "
                        f"({expected} expected, {record.seq} found)")
                if expected is None and record.seq != after_seq + 1:
                    raise StoreCorruptError(
                        f"{path.name}: WAL tail starts at "
                        f"{record.seq}, checkpoint covers {after_seq}")
                yield record
                expected = record.seq + 1

    def close(self) -> None:
        """Close the live segment handle (appends reopen it)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
