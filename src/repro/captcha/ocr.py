"""Simulated OCR engines.

An OCR engine reads each character of a scanned word correctly with
probability driven by the word's legibility, scaled by the engine's
strength; errors substitute visually confusable characters, with
occasional deletions and insertions.  Two engines with independent error
draws disagree exactly on the damaged tail of the corpus — the population
reCAPTCHA harvests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import rng as _rng
from repro.corpus.ocr import OcrCorpus, ScannedWord
from repro.errors import ConfigError

# Visually confusable substitution classes (lowercase synthetic alphabet).
_CONFUSABLE = {
    "a": "eo", "b": "dh", "c": "eo", "d": "bp", "e": "ac", "f": "t",
    "g": "q", "h": "bn", "i": "jl", "j": "i", "k": "h", "l": "i",
    "m": "n", "n": "mh", "o": "ac", "p": "d", "q": "g", "r": "n",
    "s": "z", "t": "f", "u": "v", "v": "u", "w": "v", "z": "s",
}
_ALPHABET = "abcdefghijklmnopqrstuvwz"


class OcrEngine:
    """A character-error-model OCR engine.

    Args:
        name: engine id (used as a vote source).
        strength: 0..1; how much of a word's illegibility the engine
            overcomes (0 = raw legibility, 1 = perfect).  Real OCR is
            *worse* than raw legibility on damaged print, so strengths
            are typically small or negative-leaning via ``penalty``.
        penalty: extra per-character error probability on damaged words
            (models OCR's brittleness to noise humans shrug off).
        seed: RNG seed; reads are deterministic per (engine, word).
    """

    def __init__(self, name: str, strength: float = 0.2,
                 penalty: float = 0.15, seed: _rng.SeedLike = 0) -> None:
        if not 0.0 <= strength <= 1.0:
            raise ConfigError(
                f"strength must be in [0,1], got {strength}")
        if not 0.0 <= penalty <= 1.0:
            raise ConfigError(f"penalty must be in [0,1], got {penalty}")
        self.name = name
        self.strength = strength
        self.penalty = penalty
        self._seed_base = _rng.make_rng(seed).getrandbits(64)

    def _word_rng(self, word: ScannedWord):
        return _rng.make_rng(f"{self.name}:{self._seed_base}:"
                             f"{word.word_id}")

    def char_accuracy(self, word: ScannedWord) -> float:
        """Per-character read accuracy on this word."""
        base = word.legibility + (1.0 - word.legibility) * self.strength
        damage = 1.0 - word.legibility
        return max(0.05, min(0.999, base - self.penalty * damage))

    def read(self, word: ScannedWord) -> str:
        """Transcribe the word (deterministic per engine and word)."""
        rng = self._word_rng(word)
        accuracy = self.char_accuracy(word)
        out: List[str] = []
        for char in word.truth:
            roll = rng.random()
            if roll < accuracy:
                out.append(char)
                continue
            kind = rng.random()
            if kind < 0.7:
                # Substitution with a confusable (or random) character.
                pool = _CONFUSABLE.get(char, _ALPHABET)
                out.append(rng.choice(pool))
            elif kind < 0.85:
                # Deletion.
                continue
            else:
                # Insertion then the (mis)read character.
                out.append(rng.choice(_ALPHABET))
                out.append(char)
        return "".join(out) or rng.choice(_ALPHABET)

    def word_accuracy(self, corpus: OcrCorpus) -> float:
        """Fraction of corpus words transcribed exactly."""
        if len(corpus) == 0:
            return 0.0
        correct = sum(1 for word in corpus
                      if self.read(word) == word.truth)
        return correct / len(corpus)


def ocr_disagreements(corpus: OcrCorpus, engine_a: OcrEngine,
                      engine_b: OcrEngine
                      ) -> Tuple[List[ScannedWord], List[ScannedWord],
                                 Dict[str, Tuple[str, str]]]:
    """Split a corpus by whether two engines agree.

    Returns:
        (agreed, disagreed, readings): ``agreed`` words both engines read
        identically (reCAPTCHA's control candidates), ``disagreed`` words
        they conflict on (the unknown-word pool), and each word's pair of
        readings.
    """
    agreed: List[ScannedWord] = []
    disagreed: List[ScannedWord] = []
    readings: Dict[str, Tuple[str, str]] = {}
    for word in corpus:
        read_a = engine_a.read(word)
        read_b = engine_b.read(word)
        readings[word.word_id] = (read_a, read_b)
        if read_a == read_b:
            agreed.append(word)
        else:
            disagreed.append(word)
    return agreed, disagreed, readings
