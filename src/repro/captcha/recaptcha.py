"""reCAPTCHA: the paired control/unknown word protocol.

Pipeline (as in the real system):

1. Two OCR engines read the whole scanned corpus.  Words they *agree* on
   and that are highly legible become **control** words (answer treated
   as known); words they *disagree* on become the **unknown** pool.
2. Each served challenge pairs one control word with one unknown word,
   in random order.  The solver does not know which is which.
3. The control answer verifies humanity.  If it passes, the unknown
   answer is recorded as a vote, alongside the OCR readings at half a
   vote each.
4. A word resolves when the vote consensus reaches quorum; resolved
   words can be promoted into the control pool, compounding the system.

:class:`ReCaptchaService` implements all four stages and reports the
paper's headline metric: resolved-word accuracy versus the OCR baseline.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import rng as _rng
from repro.aggregation.strings import (StringConsensus, TranscriptionResult,
                                       normalize_answer)
from repro.captcha.ocr import OcrEngine, ocr_disagreements
from repro.corpus.ocr import OcrCorpus, ScannedWord
from repro.errors import ConfigError, QualityError

_challenge_counter = itertools.count()


class WordStatus(enum.Enum):
    """Lifecycle of an unknown word."""

    UNKNOWN = "unknown"
    RESOLVED = "resolved"
    PROMOTED = "promoted"   # resolved and now serving as a control word


@dataclass(frozen=True)
class ReCaptchaChallenge:
    """One two-word challenge.

    Attributes:
        challenge_id: unique id.
        words: the two scanned words, in presentation order.
        control_index: which of the two is the control (server-side
            knowledge; not shown to solvers).
    """

    challenge_id: str
    words: Tuple[ScannedWord, ScannedWord]
    control_index: int

    @property
    def control_word(self) -> ScannedWord:
        return self.words[self.control_index]

    @property
    def unknown_word(self) -> ScannedWord:
        return self.words[1 - self.control_index]


class ReCaptchaService:
    """The full reCAPTCHA digitization service.

    Args:
        corpus: the scanned book.
        engine_a / engine_b: the two OCR engines.
        control_legibility: minimum legibility for initial control words
            (agreed *and* clean — so control answers are reliable).
        quorum: weighted votes needed to resolve an unknown word.
        ocr_vote_weight: weight of each OCR engine's seeded guess.
        promote_resolved: feed resolved words back into the control pool.
        seed: RNG seed for challenge assembly.
    """

    def __init__(self, corpus: OcrCorpus, engine_a: OcrEngine,
                 engine_b: OcrEngine, control_legibility: float = 0.9,
                 quorum: float = 2.5, ocr_vote_weight: float = 0.5,
                 promote_resolved: bool = True,
                 seed: _rng.SeedLike = 0) -> None:
        if quorum <= 0:
            raise ConfigError(f"quorum must be > 0, got {quorum}")
        self.corpus = corpus
        self.engine_a = engine_a
        self.engine_b = engine_b
        self.promote_resolved = promote_resolved
        self._rng = _rng.make_rng(seed)
        agreed, disagreed, readings = ocr_disagreements(
            corpus, engine_a, engine_b)
        self._readings = readings
        # Control pool: agreed + clean. Their "known answer" is the OCR
        # consensus (which on clean agreed words is almost surely right).
        self._controls: Dict[str, str] = {
            w.word_id: readings[w.word_id][0]
            for w in agreed if w.legibility >= control_legibility}
        self._unknowns: Dict[str, ScannedWord] = {
            w.word_id: w for w in disagreed}
        self._status: Dict[str, WordStatus] = {
            w.word_id: WordStatus.UNKNOWN for w in disagreed}
        self._votes: Dict[str, List[Tuple[str, str]]] = {}
        self._resolutions: Dict[str, TranscriptionResult] = {}
        self._consensus = StringConsensus(
            quorum=quorum, min_confidence=0.5,
            weights={engine_a.name: ocr_vote_weight,
                     engine_b.name: ocr_vote_weight})
        # Seed unknown words with the OCR readings.
        for word_id in self._unknowns:
            read_a, read_b = readings[word_id]
            self._votes[word_id] = [(engine_a.name, read_a),
                                    (engine_b.name, read_b)]
        self._open: Dict[str, ReCaptchaChallenge] = {}
        self._human_passes = 0
        self._human_failures = 0

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def control_pool_size(self) -> int:
        return len(self._controls)

    @property
    def unknown_pool_size(self) -> int:
        return sum(1 for status in self._status.values()
                   if status is WordStatus.UNKNOWN)

    def issue(self) -> ReCaptchaChallenge:
        """Assemble one control+unknown challenge in random order."""
        if not self._controls:
            raise QualityError("control pool is empty")
        pending = [word_id for word_id, status in self._status.items()
                   if status is WordStatus.UNKNOWN]
        if not pending:
            raise QualityError("no unknown words left to serve")
        control_id = self._rng.choice(sorted(self._controls))
        unknown_id = self._rng.choice(sorted(pending))
        control = self.corpus.word(control_id)
        unknown = self._unknowns[unknown_id]
        control_index = self._rng.randrange(2)
        words = ((control, unknown) if control_index == 0
                 else (unknown, control))
        challenge = ReCaptchaChallenge(
            challenge_id=f"rc-{next(_challenge_counter):08d}",
            words=words, control_index=control_index)
        self._open[challenge.challenge_id] = challenge
        return challenge

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------

    def submit(self, solver_id: str, challenge_id: str,
               answers: Tuple[str, str]) -> bool:
        """Submit both answers; returns whether the solver passed.

        A pass requires the control answer to match the control pool's
        known transcription; only then does the unknown answer count as
        a vote.
        """
        challenge = self._open.pop(challenge_id, None)
        if challenge is None:
            raise QualityError(
                f"unknown or consumed challenge: {challenge_id!r}")
        control_answer = answers[challenge.control_index]
        unknown_answer = answers[1 - challenge.control_index]
        expected = self._controls[challenge.control_word.word_id]
        passed = (normalize_answer(control_answer)
                  == normalize_answer(expected))
        if not passed:
            self._human_failures += 1
            return False
        self._human_passes += 1
        unknown_id = challenge.unknown_word.word_id
        if self._status.get(unknown_id) is WordStatus.UNKNOWN:
            self._votes[unknown_id].append((solver_id, unknown_answer))
            self._try_resolve(unknown_id)
        return True

    def _try_resolve(self, word_id: str) -> None:
        result = self._consensus.resolve(word_id, self._votes[word_id])
        if not result.resolved:
            return
        self._resolutions[word_id] = result
        if self.promote_resolved:
            self._controls[word_id] = result.text
            self._status[word_id] = WordStatus.PROMOTED
        else:
            self._status[word_id] = WordStatus.RESOLVED

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def status(self, word_id: str) -> WordStatus:
        try:
            return self._status[word_id]
        except KeyError:
            raise QualityError(
                f"{word_id!r} is not an unknown word") from None

    def resolved_words(self) -> Dict[str, str]:
        """word_id -> resolved transcription."""
        return {word_id: result.text
                for word_id, result in self._resolutions.items()}

    def resolution_accuracy(self) -> float:
        """Fraction of resolved words matching ground truth."""
        if not self._resolutions:
            return 0.0
        correct = sum(
            1 for word_id, result in self._resolutions.items()
            if result.text == normalize_answer(
                self.corpus.word(word_id).truth))
        return correct / len(self._resolutions)

    def ocr_baseline_accuracy(self) -> float:
        """Single-engine word accuracy over the whole corpus (mean of
        the two engines) — the number the paper contrasts with."""
        return 0.5 * (self.engine_a.word_accuracy(self.corpus)
                      + self.engine_b.word_accuracy(self.corpus))

    def human_pass_rate(self) -> float:
        total = self._human_passes + self._human_failures
        if total == 0:
            return 0.0
        return self._human_passes / total

    def digitization_progress(self) -> float:
        """Fraction of the original unknown pool now resolved."""
        if not self._status:
            return 1.0
        done = sum(1 for status in self._status.values()
                   if status is not WordStatus.UNKNOWN)
        return done / len(self._status)
