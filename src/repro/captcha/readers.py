"""Human reader simulation for CAPTCHA solving and word transcription.

Humans see through print damage far better than OCR: a human's
per-character accuracy on a damaged word stays high where an engine's
collapses.  :class:`HumanReader` wraps a
:class:`~repro.players.base.PlayerModel`; honest readers transcribe with
skill-boosted accuracy, adversarial solvers (bots trying to pass, lazy
humans mashing keys) type junk.
"""

from __future__ import annotations

from typing import List

from repro import rng as _rng
from repro.captcha.ocr import _ALPHABET, _CONFUSABLE
from repro.corpus.ocr import ScannedWord
from repro.errors import ConfigError
from repro.players.base import Behavior, PlayerModel


class HumanReader:
    """A simulated human transcriber.

    Args:
        model: the underlying player (behavior decides honesty).
        damage_recovery: fraction of a word's illegibility a fully
            skilled human overcomes (default 0.9 — humans are the gold
            standard readers the paper leans on).
        seed: RNG stream for this reader's transcriptions.
    """

    def __init__(self, model: PlayerModel, damage_recovery: float = 0.9,
                 seed: _rng.SeedLike = 0) -> None:
        if not 0.0 <= damage_recovery <= 1.0:
            raise ConfigError(
                f"damage_recovery must be in [0,1], got {damage_recovery}")
        self.model = model
        self.reader_id = model.player_id
        self.damage_recovery = damage_recovery
        self._rng = _rng.make_rng(seed)

    def char_accuracy(self, word: ScannedWord) -> float:
        """Per-character accuracy of this reader on this word."""
        recovery = self.damage_recovery * self.model.skill
        return min(0.999,
                   word.legibility + (1.0 - word.legibility) * recovery)

    def read(self, word: ScannedWord) -> str:
        """Transcribe the word (honest) or emit junk (adversarial)."""
        if self.model.behavior in (Behavior.SPAMMER, Behavior.RANDOM_BOT):
            length = max(1, len(word.truth) + self._rng.randint(-2, 2))
            return "".join(self._rng.choice(_ALPHABET)
                           for _ in range(length))
        accuracy = self.char_accuracy(word)
        out: List[str] = []
        for char in word.truth:
            if self._rng.random() < accuracy:
                out.append(char)
                continue
            pool = _CONFUSABLE.get(char, _ALPHABET)
            out.append(self._rng.choice(pool))
        return "".join(out)

    def word_accuracy_estimate(self, word: ScannedWord) -> float:
        """Probability this reader gets the whole word right."""
        return self.char_accuracy(word) ** max(1, len(word.truth))
