"""CAPTCHA and reCAPTCHA: channeling human cycles into digitization.

The overview's second pillar: a CAPTCHA is a test humans pass and
programs fail, and reCAPTCHA makes the wasted human effort useful by
pairing a *control* word (known answer, used to verify the solver is
human) with an *unknown* word (from a scanned book both OCR engines
failed on).  Human votes on unknown words resolve transcriptions at
accuracy standard OCR cannot reach.

- :mod:`repro.captcha.ocr` — simulated OCR engines with character-level
  error models over the scanned-word corpus.
- :mod:`repro.captcha.readers` — human reader simulation (sees through
  damage far better than OCR; adversarial solvers type junk).
- :mod:`repro.captcha.challenge` — the plain CAPTCHA test (distorted
  word, verify human vs bot).
- :mod:`repro.captcha.recaptcha` — the full two-word protocol with vote
  resolution.
"""

from repro.captcha.ocr import OcrEngine, ocr_disagreements
from repro.captcha.readers import HumanReader
from repro.captcha.challenge import CaptchaChallenge, CaptchaService
from repro.captcha.recaptcha import ReCaptchaService, WordStatus

__all__ = [
    "OcrEngine", "ocr_disagreements",
    "HumanReader",
    "CaptchaChallenge", "CaptchaService",
    "ReCaptchaService", "WordStatus",
]
