"""Plain CAPTCHA: a test humans pass and programs fail.

A challenge is a scanned word rendered with extra distortion (its
effective legibility is pushed down).  Humans still read it; OCR-based
bots mostly cannot.  :class:`CaptchaService` issues challenges, verifies
answers, and tracks pass rates per solver — giving the library the
"are you human" primitive reCAPTCHA extends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Tuple

from repro import rng as _rng
from repro.aggregation.strings import normalize_answer
from repro.corpus.ocr import OcrCorpus, ScannedWord
from repro.errors import ConfigError, QualityError

_challenge_counter = itertools.count()


@dataclass(frozen=True)
class CaptchaChallenge:
    """One issued challenge.

    Attributes:
        challenge_id: unique id (answers must reference it).
        word: the distorted scanned word presented.
    """

    challenge_id: str
    word: ScannedWord


class CaptchaService:
    """Issues and verifies distorted-word challenges.

    Args:
        corpus: source words.
        distortion: how much each challenge's legibility is reduced
            (0.35 means a 0.9-legibility word is served at 0.55).
        max_attempts: verification attempts allowed per challenge.
        seed: RNG seed for word selection.
    """

    def __init__(self, corpus: OcrCorpus, distortion: float = 0.35,
                 max_attempts: int = 3, seed: _rng.SeedLike = 0) -> None:
        if not 0.0 <= distortion < 1.0:
            raise ConfigError(
                f"distortion must be in [0,1), got {distortion}")
        if max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.corpus = corpus
        self.distortion = distortion
        self.max_attempts = max_attempts
        self._rng = _rng.make_rng(seed)
        self._open: Dict[str, Tuple[ScannedWord, int]] = {}
        self._passes: Dict[str, int] = {}
        self._failures: Dict[str, int] = {}

    def issue(self) -> CaptchaChallenge:
        """Issue a fresh challenge with distortion applied."""
        base = self._rng.choice(list(self.corpus.words))
        distorted = ScannedWord(
            word_id=base.word_id, truth=base.truth,
            legibility=max(0.05, base.legibility * (1 - self.distortion)),
            page=base.page)
        challenge_id = f"captcha-{next(_challenge_counter):08d}"
        self._open[challenge_id] = (distorted, 0)
        return CaptchaChallenge(challenge_id=challenge_id, word=distorted)

    def verify(self, solver_id: str, challenge_id: str,
               answer: str) -> bool:
        """Check an answer; consumes the challenge on success/exhaustion."""
        if challenge_id not in self._open:
            raise QualityError(
                f"unknown or consumed challenge: {challenge_id!r}")
        word, attempts = self._open[challenge_id]
        passed = normalize_answer(answer) == normalize_answer(word.truth)
        attempts += 1
        if passed:
            del self._open[challenge_id]
            self._passes[solver_id] = self._passes.get(solver_id, 0) + 1
        elif attempts >= self.max_attempts:
            del self._open[challenge_id]
            self._failures[solver_id] = (
                self._failures.get(solver_id, 0) + 1)
        else:
            self._open[challenge_id] = (word, attempts)
        return passed

    def pass_rate(self, solver_id: str) -> float:
        """Fraction of this solver's consumed challenges they passed."""
        passes = self._passes.get(solver_id, 0)
        failures = self._failures.get(solver_id, 0)
        total = passes + failures
        if total == 0:
            return 0.0
        return passes / total

    def open_challenges(self) -> int:
        return len(self._open)
