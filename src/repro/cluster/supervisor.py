"""Node process supervision: spawn, watch, respawn, chaos verdicts.

The supervisor owns the cluster's worker processes.  Each node runs
``python -m repro.cluster.node`` on a pre-assigned port (so a restart
comes back at the same address and the router's node table never
changes), logs to ``node.log`` in its data directory, and signals
readiness by writing ``node.json`` once its listener is bound and its
WAL replayed.

A monitor thread polls liveness: a node that dies while the
supervisor is running (SIGKILLed by a chaos campaign, OOMed, crashed)
is respawned on the same port and directory, which makes it recover —
:meth:`~repro.platform.facade.Platform.recover` replays the WAL it
left behind.  Restarts are counted in ``cluster.node_restarts`` so a
campaign can assert its kills actually happened.  The chaos fault
kinds map to methods here: ``NODE_KILL`` → :meth:`kill_node`,
``NODE_PAUSE`` → :meth:`pause_node` / :meth:`resume_node`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import repro
from repro.cluster.node import NodeConfig, READY_FILE
from repro.obs.metrics import MetricsRegistry, default_registry

#: Node data directories under a cluster root: ``node-00``,
#: ``node-01``, ...  (two digits keeps listings sorted; the fsck
#: glob accepts any width).
NODE_DIR_FORMAT = "node-%02d"


def node_dir(cluster_dir, index: int) -> Path:
    """The data directory of node ``index`` under a cluster root."""
    return Path(cluster_dir) / (NODE_DIR_FORMAT % index)


def _subprocess_env() -> Dict[str, str]:
    """The child's environment, with this repro importable.

    The node entry point imports ``repro``; tests run from a source
    tree where only ``PYTHONPATH`` makes that work, so the parent's
    resolved package root is prepended explicitly rather than trusting
    the inherited value.
    """
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    return env


class NodeProcess:
    """One supervised node: its config, current process, generation."""

    def __init__(self, config: NodeConfig) -> None:
        if config.port == 0:
            raise ValueError(
                "supervised nodes need a pre-assigned port (port 0 "
                "would come back elsewhere after a restart)")
        self.config = config
        self.proc: Optional[subprocess.Popen] = None
        #: How many times this node has been (re)spawned.
        self.generation = 0

    # -- lifecycle -----------------------------------------------------

    def spawn(self) -> None:
        """Start (or restart) the node process."""
        data_dir = Path(self.config.data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        ready = data_dir / READY_FILE
        try:
            ready.unlink()
        except FileNotFoundError:
            pass
        # The log handle is inherited by the child; closing our copy
        # immediately keeps the parent's fd table flat across many
        # restarts.
        with open(data_dir / "node.log", "ab") as log:
            self.proc = subprocess.Popen(
                self.config.argv(), stdout=log,
                stderr=subprocess.STDOUT, stdin=subprocess.DEVNULL,
                env=_subprocess_env())
        self.generation += 1

    def wait_ready(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Block until the node publishes its ready file.

        Returns the readiness document.  Raises if the process exits
        first (with the tail of its log — the only place a crashed
        child's traceback lives) or the deadline passes.
        """
        assert self.proc is not None, "spawn() first"
        deadline = time.monotonic() + timeout_s
        ready = Path(self.config.data_dir) / READY_FILE
        while time.monotonic() < deadline:
            code = self.proc.poll()
            if code is not None:
                raise RuntimeError(
                    f"node {self.config.index} exited with code "
                    f"{code} during startup\n{self._log_tail()}")
            if ready.exists():
                try:
                    doc = json.loads(ready.read_text(encoding="utf-8"))
                except (ValueError, OSError):
                    doc = None  # torn read of a concurrent rename
                if doc and doc.get("pid") == self.proc.pid:
                    return doc
            time.sleep(0.01)
        raise TimeoutError(
            f"node {self.config.index} not ready within {timeout_s}s"
            f"\n{self._log_tail()}")

    def _log_tail(self, lines: int = 20) -> str:
        log = Path(self.config.data_dir) / "node.log"
        try:
            tail = log.read_text(encoding="utf-8",
                                 errors="replace").splitlines()
        except OSError:
            return "(no node.log)"
        return "\n".join(tail[-lines:])

    # -- state ---------------------------------------------------------

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    # -- chaos verdicts ------------------------------------------------

    def kill(self) -> None:
        """SIGKILL: the crash the WAL exists for."""
        if self.proc is not None:
            self.proc.kill()

    def pause(self) -> None:
        """SIGSTOP: alive but unresponsive (deadline fodder)."""
        if self.alive():
            os.kill(self.proc.pid, signal.SIGSTOP)

    def resume(self) -> None:
        if self.alive():
            os.kill(self.proc.pid, signal.SIGCONT)

    def terminate(self) -> None:
        """SIGTERM: graceful drain + final checkpoint."""
        if self.alive():
            self.proc.terminate()

    def wait(self, timeout_s: Optional[float] = None) -> Optional[int]:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            return None


class NodeSupervisor:
    """Spawns a set of nodes and keeps them alive.

    Args:
        configs: one :class:`NodeConfig` per node, ports pre-assigned.
        auto_restart: respawn nodes that die (the production posture;
            chaos tests rely on it).  Restart keeps the port and data
            directory, so recovery is implicit.
        poll_interval_s: liveness poll cadence.
        registry: lands ``cluster.node_restarts`` (by node).
        on_restart: optional callback ``(index) -> None`` fired after
            a respawn (before the node is necessarily ready).
    """

    def __init__(self, configs: Sequence[NodeConfig],
                 auto_restart: bool = True,
                 poll_interval_s: float = 0.05,
                 registry: Optional[MetricsRegistry] = None,
                 on_restart: Optional[Callable[[int], None]] = None
                 ) -> None:
        self.nodes: List[NodeProcess] = [NodeProcess(config)
                                         for config in configs]
        self.auto_restart = auto_restart
        self.poll_interval_s = poll_interval_s
        self.registry = (registry if registry is not None
                         else default_registry())
        self._on_restart = on_restart
        self._m_restarts = self.registry.counter(
            "cluster.node_restarts",
            "node processes respawned after dying, by node")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self, ready_timeout_s: float = 30.0) -> None:
        """Spawn every node, wait for readiness, start the monitor."""
        for node in self.nodes:
            node.spawn()
        for node in self.nodes:
            node.wait_ready(timeout_s=ready_timeout_s)
        self._thread = threading.Thread(
            target=self._monitor, name="cluster-supervisor",
            daemon=True)
        self._thread.start()

    def _monitor(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                for node in self.nodes:
                    if self._stop.is_set():
                        break
                    if node.proc is None or node.alive():
                        continue
                    if not self.auto_restart:
                        continue
                    node.spawn()
                    self._m_restarts.inc(
                        node=f"node-{node.config.index}")
                    if self._on_restart is not None:
                        self._on_restart(node.config.index)
            self._stop.wait(self.poll_interval_s)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Gracefully stop every node (SIGTERM, then SIGKILL)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        with self._lock:
            for node in self.nodes:
                node.terminate()
            deadline = time.monotonic() + timeout_s
            for node in self.nodes:
                remaining = max(0.1, deadline - time.monotonic())
                if node.wait(timeout_s=remaining) is None:
                    node.kill()
                    node.wait(timeout_s=5.0)

    # -- chaos verdicts ------------------------------------------------

    def kill_node(self, index: int) -> None:
        """SIGKILL node ``index``; the monitor respawns it."""
        self.nodes[index].kill()

    def pause_node(self, index: int) -> None:
        self.nodes[index].pause()

    def resume_node(self, index: int) -> None:
        self.nodes[index].resume()

    def wait_node_ready(self, index: int,
                        timeout_s: float = 30.0) -> Dict[str, Any]:
        """Block until node ``index``'s current process is ready.

        After a kill, the monitor may not have respawned it yet; poll
        through that window instead of racing it.
        """
        deadline = time.monotonic() + timeout_s
        node = self.nodes[index]
        while time.monotonic() < deadline:
            if node.alive():
                try:
                    return node.wait_ready(
                        timeout_s=max(0.1,
                                      deadline - time.monotonic()))
                except RuntimeError:
                    pass  # died again mid-wait; keep polling
            time.sleep(0.01)
        raise TimeoutError(
            f"node {index} not back within {timeout_s}s")

    # -- introspection -------------------------------------------------

    def restarts(self) -> Dict[int, int]:
        """Respawn counts per node index (first spawn excluded)."""
        return {node.config.index: max(0, node.generation - 1)
                for node in self.nodes}
