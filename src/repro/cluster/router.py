"""The cluster router: consistent-hash request routing over N nodes.

The router is shaped like an :class:`~repro.service.api.ApiServer`
(``handle(ApiRequest) -> ApiResponse`` plus ``registry`` / ``tracer``
/ ``faults``), so the same :class:`~repro.service.http.AsyncHttpServer`
front door serves it — pass ``offload="thread"`` since its handlers
block on downstream HTTP.

Routing is a pure function of the id in the path: nodes only mint ids
that hash into their own slice (see ``Platform(shard_range=...)``), so
``shard_of(job_id, n)`` / ``shard_of(task_id, n)`` *is* the owner and
the router keeps no placement table at all.  The full map:

========================================  ==============================
request                                   routing
========================================  ==============================
``POST /jobs``                            round-robin (owner = creator)
``* /jobs/{job_id}...``                   ``shard_of(job_id)``
``POST /tasks/{task_id}/answers``         ``shard_of(task_id)``
``POST /tasks:batch-assign``              ``shard_of(body.job_id)``
``POST /answers:batch``                   split by ``shard_of(task_id)``,
                                          reassembled in order
``POST /workers[...]``                    broadcast to every node
``GET /jobs, /leaderboard,``              scatter-gather, merged;
``/workers/flagged, /workers/{id}``       any node failure → 503
``GET /healthz /metrics /dashboard``      per-node aggregation (down
                                          nodes reported, not hidden)
``GET /health``                           router-local
``GET /debug/traces``                     cluster-merged: spans from
                                          every node's flight recorder
                                          stitched by trace id
``GET /debug/profile``                    cluster-merged: per-node
                                          profiles, stack counts summed
``GET /debug/*?node=I``                   forwarded to node I
========================================  ==============================

Observability: the router *continues* the client's W3C trace.  Every
data request runs inside a ``router.<METHOD> <route>`` span, each
node attempt is a ``router.forward`` child carrying a ``traceparent``
header minted from that child — so the node's ``service.*`` tree links
back to the exact attempt that sent it, failover retries show up as
sibling ``router.forward`` spans under one trace, and scatter-gather
legs become parallel children.  One trace id follows client → router →
node handler → platform verb → WAL fsync; the cluster-merged
``GET /debug/traces`` (see :mod:`repro.obs.stitch`) reassembles the
fragments.  Ops routes (``/metrics``, ``/healthz``, ``/dashboard``,
``/debug/*``) stay untraced, mirroring the node-side contract:
reading telemetry must not write it.

Metrics federation: the JSON ``/metrics`` aggregation keeps the
summed counter/gauge rollup and adds a ``federated`` view in which
every per-node series keeps its labels plus ``node="node-i"``, and a
``histograms`` view where per-node raw bucket counts merge into
cluster-exact percentiles
(:func:`repro.obs.metrics.merged_histogram_snapshot`).
``format=prometheus`` renders the router's own registry followed by
every node's snapshot with the ``node`` label attached.

Failover contract: a request to an unreachable node is transparently
retried against the *same* node (its data lives nowhere else) while
the supervisor restarts it — but only when replay is safe: GETs, and
POSTs whose body carries an ``idempotency_key`` the node's dedupe
table absorbs.  Anything else fails fast with ``503 + Retry-After``
so the caller's retry policy owns the at-least-once decision.  A
per-node circuit breaker sheds work from a node that keeps failing,
and a background probe thread tracks per-node health from the
enriched ``/healthz`` (WAL seq, checkpoint age, shard range).
"""

from __future__ import annotations

import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.exposition import (PROMETHEUS_CONTENT_TYPE, negotiate,
                                  render_json, render_prometheus,
                                  render_prometheus_snapshot)
from repro.obs.live import LiveAnalytics
from repro.obs.metrics import (MetricsRegistry, default_registry,
                               merged_histogram_snapshot)
from repro.obs.profiler import collapsed_text, merge_profiles
from repro.obs.propagation import parse_traceparent
from repro.obs.sketch import QuantileSketch
from repro.obs.stitch import stitch_traces, stitched_jsonl
from repro.obs.tracing import Tracer, default_tracer
from repro.platform.sharding import shard_of
from repro.service.client import HttpClient
from repro.service.retry import CircuitBreaker
from repro.service.wire import ApiRequest, ApiResponse, error_body

_JOB_PATH = re.compile(r"^/jobs/([^/]+)(?:/.*)?$")
_ANSWER_PATH = re.compile(r"^/tasks/([^/]+)/answers$")
_WORKER_PATH = re.compile(r"^/workers/([^/]+)$")
_DISCONNECT_PATH = re.compile(r"^/workers/([^/]+)/disconnect$")

#: Mirror of the single-node batch cap; the router enforces it before
#: splitting so an oversized batch is rejected whole, not per-shard.
MAX_BATCH_ITEMS = 512

#: Mirror of the node-side JSONL content type for merged trace dumps.
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"

#: Plain-text content type for collapsed-stack profile dumps.
COLLAPSED_CONTENT_TYPE = "text/plain; charset=utf-8"

#: Router paths that must not open spans: they read the telemetry the
#: spans would land in (same contract as the node-side
#: ``_UNTRACED_ROUTES``).  ``/debug/*`` is matched by prefix.
_UNTRACED_PATHS = frozenset({
    "/health", "/healthz", "/metrics", "/dashboard"})


def _parse_limit(raw: Optional[str]) -> Optional[int]:
    """``?limit=N`` (newest N); garbage means no limit — mirrors the
    node-side parser so merged and per-node views agree."""
    if raw is None:
        return None
    try:
        limit = int(raw)
    except (TypeError, ValueError):
        return None
    return limit if limit > 0 else None


class _NodeState:
    """One downstream node: clients, breaker, probed health."""

    def __init__(self, index: int, base_url: str,
                 client: HttpClient, probe_client: HttpClient,
                 breaker: CircuitBreaker) -> None:
        self.index = index
        self.name = f"node-{index}"
        self.base_url = base_url
        self.client = client
        self.probe_client = probe_client
        self.breaker = breaker
        self.lock = threading.Lock()
        # Optimistic until the first probe lands: a router booted
        # against a ready cluster must not 503 its first requests.
        self.healthy = True
        self.consecutive_failures = 0
        self.wal_seq: Optional[int] = None
        self.last_checkpoint_age_s: Optional[float] = None
        self.shard_range: Optional[List[int]] = None
        self.last_error: Optional[str] = None
        self.partitioned_until = 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self.lock:
            return {
                "index": self.index,
                "url": self.base_url,
                "healthy": self.healthy,
                "consecutive_failures": self.consecutive_failures,
                "wal_seq": self.wal_seq,
                "last_checkpoint_age_s": self.last_checkpoint_age_s,
                "shard_range": self.shard_range,
                "error": self.last_error,
            }


class ClusterRouter:
    """Thin, stateless-by-construction front for a node set.

    Args:
        node_urls: base URLs indexed by node (position = shard index).
        registry / tracer / faults: the usual observability trio; the
            front door reads all three off this object.
        retry_after_s: advisory backoff attached to 503s.
        failover_retries: transparent same-node retries for
            replay-safe requests while the supervisor restarts it.
        failover_backoff_s: base sleep between those retries (grows
            linearly with the attempt number).
        probe_interval_s: health-probe cadence.
        down_after: consecutive probe failures before a node is
            marked unhealthy.
        connect_timeout_s / read_timeout_s: per-request deadlines on
            the node clients (a hung node costs one deadline, never a
            blocked router thread).
        breaker_threshold / breaker_reset_s: per-node circuit breaker
            tuning; the reset is short because a restarting node is
            usually back within a second.
        live: the router-side :class:`~repro.obs.live.LiveAnalytics`
            engine — fed every routed request, it runs the cluster's
            SLO burn rules and anomaly detectors over the full
            client-visible request stream (every request passes the
            router, so its stream *is* the cluster rollup).  None
            (default) builds one on this router's registry; ``False``
            disables it.
        profiler: optional started
            :class:`~repro.obs.profiler.SamplingProfiler` for the
            router process itself; when set, its profile joins the
            per-node profiles in the cluster-merged
            ``GET /debug/profile``.
        clock / sleep: injectable time for tests.
    """

    def __init__(self, node_urls: List[str], *,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 faults=None,
                 live: Any = None,
                 profiler=None,
                 retry_after_s: float = 0.5,
                 failover_retries: int = 10,
                 failover_backoff_s: float = 0.1,
                 probe_interval_s: float = 0.25,
                 down_after: int = 2,
                 connect_timeout_s: float = 1.0,
                 read_timeout_s: float = 10.0,
                 breaker_threshold: int = 8,
                 breaker_reset_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not node_urls:
            raise ValueError("a cluster needs at least one node")
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self.faults = faults
        self.retry_after_s = retry_after_s
        self.failover_retries = failover_retries
        self.failover_backoff_s = failover_backoff_s
        self.probe_interval_s = probe_interval_s
        self.down_after = down_after
        self._clock = clock
        self._sleep = sleep
        # The front door's offload="auto" probe reads
        # api.platform.durability; the router has no platform, so a
        # stand-in keeps that path harmless (callers should still
        # pass offload="thread" explicitly).
        self.platform = type("_NoPlatform", (),
                             {"durability": None})()
        self.nodes: List[_NodeState] = []
        for index, url in enumerate(node_urls):
            # No retry policy on the node clients: the router's
            # failover loop owns retries, so client attempts stay
            # single-shot and deadlines stay predictable.
            client = HttpClient(
                url, connect_timeout_s=connect_timeout_s,
                read_timeout_s=read_timeout_s,
                registry=self.registry, tracer=self.tracer)
            probe = HttpClient(
                url, connect_timeout_s=connect_timeout_s,
                read_timeout_s=max(1.0, connect_timeout_s),
                registry=self.registry, tracer=self.tracer)
            breaker = CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout_s=breaker_reset_s,
                name=f"router-{index}", registry=self.registry)
            self.nodes.append(_NodeState(index, url, client, probe,
                                         breaker))
        self.n_nodes = len(self.nodes)
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.n_nodes),
            thread_name_prefix="router-scatter")
        self._rr_lock = threading.Lock()
        self._rr = 0
        self._stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()
        self._m_requests = self.registry.counter(
            "router.requests", "router requests, by route/status")
        self._m_latency = self.registry.histogram(
            "router.latency_s", "router request latency, by route")
        self._m_failovers = self.registry.counter(
            "router.failovers",
            "transparent same-node replays after a transport "
            "failure, by node")
        self._m_unavailable = self.registry.counter(
            "router.unavailable",
            "requests answered 503 for a down node, by node/reason")
        if live is False:
            self.live = None
        elif live is None:
            self.live = LiveAnalytics(registry=self.registry)
        else:
            self.live = live
        self.profiler = profiler

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ClusterRouter":
        """Start the background health-probe thread."""
        if self._probe_thread is None:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="router-probe",
                daemon=True)
            self._probe_thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
            self._probe_thread = None
        self._pool.shutdown(wait=False)
        for node in self.nodes:
            node.client.close()
            node.probe_client.close()

    # -- health --------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.is_set():
            for node in self.nodes:
                if self._stop.is_set():
                    break
                self.probe_node(node)
            self._stop.wait(self.probe_interval_s)

    def probe_node(self, node: _NodeState) -> bool:
        """One health probe; returns whether the node looked healthy."""
        if self._clock() < node.partitioned_until:
            with node.lock:
                node.healthy = False
                node.last_error = "partitioned"
            return False
        try:
            response = node.probe_client.forward("GET", "/healthz")
        except ServiceError as exc:
            self._mark_down(node, str(exc))
            return False
        if response.status != 200:
            self._mark_down(node, f"healthz status {response.status}")
            return False
        body = response.body
        with node.lock:
            node.healthy = True
            node.consecutive_failures = 0
            node.last_error = None
            node.wal_seq = body.get("wal_seq")
            node.last_checkpoint_age_s = body.get(
                "last_checkpoint_age_s")
            node.shard_range = body.get("shard_range")
        # A live probe is direct evidence the node is back; close the
        # breaker instead of waiting out its reset timeout.
        node.breaker.record_success()
        return True

    def _mark_down(self, node: _NodeState, error: str) -> None:
        with node.lock:
            node.consecutive_failures += 1
            node.last_error = error
            if node.consecutive_failures >= self.down_after:
                node.healthy = False

    def set_partition(self, index: int, duration_s: float) -> None:
        """Hide node ``index`` for ``duration_s`` seconds (the
        ``PARTITION`` fault kind): requests answer 503 + Retry-After
        while the node itself keeps running."""
        node = self.nodes[index]
        node.partitioned_until = self._clock() + duration_s
        with node.lock:
            node.healthy = False
            node.last_error = "partitioned"

    def nodes_snapshot(self) -> List[Dict[str, Any]]:
        return [node.snapshot() for node in self.nodes]

    # -- the one entry point -------------------------------------------

    def handle(self, request: ApiRequest) -> ApiResponse:
        started = time.perf_counter()
        route = "other"
        path = request.path
        untraced = (path in _UNTRACED_PATHS
                    or path.startswith("/debug/"))
        if untraced:
            remote_cm = nullcontext()
            span_cm = nullcontext(None)
        else:
            ctx = parse_traceparent(
                request.headers.get("traceparent"))
            remote_cm = self.tracer.continue_trace(ctx)
            span_cm = self.tracer.span("router.request")
        with remote_cm, span_cm as span:
            try:
                route, response = self._route(request)
            except ServiceError as exc:
                response = ApiResponse(exc.status,
                                       error_body(str(exc)))
            except Exception as exc:  # noqa: BLE001 - must answer
                response = ApiResponse(
                    500, error_body(f"router error: {exc}"))
            if span is not None:
                # The route name is only known after routing; rename
                # before the root closes so exports carry it.
                span.name = f"router.{request.method} {route}"
                span.attributes["status"] = response.status
        elapsed = time.perf_counter() - started
        self._m_requests.inc(route=route,
                             status=str(response.status))
        self._m_latency.observe(elapsed, route=route)
        if self.live is not None and not untraced:
            self.live.observe_request(
                route, request.method, response.status, elapsed,
                at_s=started,
                trace_id=span.trace_id if span is not None else None)
        return response

    def _route(self, request: ApiRequest
               ) -> Tuple[str, ApiResponse]:
        method, path = request.method, request.path
        if path == "/health":
            return "health", ApiResponse(200, {
                "status": "ok", "role": "router",
                "nodes": self.n_nodes})
        if path == "/healthz":
            return "healthz", self._healthz()
        if path == "/metrics":
            return "metrics", self._metrics(request)
        if path == "/dashboard":
            return "dashboard", self._dashboard(request)
        if path.startswith("/debug/"):
            return "debug", self._debug(request)
        if path == "/jobs":
            if method == "POST":
                return "create_job", self._create_job(request)
            if method == "GET":
                return "list_jobs", self._list_jobs(request)
        if path == "/leaderboard" and method == "GET":
            return "leaderboard", self._leaderboard(request)
        if path == "/workers/flagged" and method == "GET":
            return "flagged", self._flagged(request)
        if path == "/workers" and method == "POST":
            return "register", self._register_worker(request)
        match = _DISCONNECT_PATH.match(path)
        if match and method == "POST":
            return "disconnect", self._disconnect(request)
        match = _WORKER_PATH.match(path)
        if match and method == "GET":
            return "worker_stats", self._worker_stats(
                request, match.group(1))
        if path == "/tasks:batch-assign" and method == "POST":
            return "batch_assign", self._batch_assign(request)
        if path == "/answers:batch" and method == "POST":
            return "batch_answers", self._batch_answers(request)
        match = _ANSWER_PATH.match(path)
        if match and method == "POST":
            node = self._owner(match.group(1))
            return "answer", self._forward(
                node, method, path, body=request.body,
                query=request.query)
        match = _JOB_PATH.match(path)
        if match:
            node = self._owner(match.group(1))
            return "job_scoped", self._forward(
                node, method, path, body=request.body,
                query=request.query)
        return "other", ApiResponse(
            404, error_body(f"no route for {method} {path}"))

    # -- forwarding core -----------------------------------------------

    def _owner(self, key: str) -> _NodeState:
        return self.nodes[shard_of(key, self.n_nodes)]

    def _forward(self, node: _NodeState, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 query: Optional[Dict[str, str]] = None,
                 replay_safe: Optional[bool] = None) -> ApiResponse:
        """One request to one node, with bounded same-node failover.

        Replay-safe requests (GETs; bodies carrying an
        ``idempotency_key``; callers asserting safety) ride out a node
        restart: each transport failure trips the breaker, sleeps, and
        tries again up to ``failover_retries`` times.  Everything else
        surfaces the first failure as ``503 + Retry-After`` — the
        at-least-once decision belongs to the caller.

        When a trace is active on this thread (the router span opened
        by :meth:`handle`, or the context a scatter leg inherited),
        every attempt runs inside a ``router.forward`` child span and
        the request carries a ``traceparent`` minted from *that* span —
        so the node's tree links to the exact attempt that reached it,
        and failover retries are sibling spans under one trace id.
        Ops aggregation (untraced routes) has no active trace, so its
        fan-out stays out of the flight recorder it reads.
        """
        if replay_safe is None:
            replay_safe = (method == "GET"
                           or (isinstance(body, dict)
                               and bool(body.get("idempotency_key"))))
        attempts = (self.failover_retries + 1) if replay_safe else 1
        traced = self._trace_active()
        for attempt in range(attempts):
            final = attempt + 1 >= attempts
            if self._clock() < node.partitioned_until:
                if not final:
                    self._sleep(self.failover_backoff_s)
                    continue
                return self._unavailable(node, "partitioned")
            if not node.breaker.allow():
                if not final:
                    self._sleep(self.failover_backoff_s)
                    continue
                return self._unavailable(node, "circuit_open")
            span_cm = (self.tracer.span("router.forward",
                                        node=node.name,
                                        attempt=attempt)
                       if traced else nullcontext(None))
            try:
                with span_cm:
                    headers = None
                    if traced:
                        tp = self.tracer.current_traceparent()
                        if tp is not None:
                            headers = {"traceparent": tp}
                    response = node.client.forward(
                        method, path, body=body, query=query,
                        headers=headers)
            except ServiceError as exc:
                node.breaker.record_failure()
                self._mark_down(node, str(exc))
                if not final:
                    self._m_failovers.inc(node=node.name)
                    self._sleep(min(1.0, self.failover_backoff_s
                                    * (attempt + 1)))
                    continue
                return self._unavailable(node,
                                         f"unreachable ({exc})")
            node.breaker.record_success()
            return response
        raise AssertionError("unreachable: failover loop exited")

    def _trace_active(self) -> bool:
        """Whether this thread is inside a trace: a span is open, or a
        scatter leg installed an inherited context.  Reads the
        tracer's thread-local directly — there is no public probe for
        "would a new root continue an existing trace"."""
        if not self.tracer.enabled or self.tracer.sample_rate <= 0.0:
            return False
        local = self.tracer._local
        return (bool(getattr(local, "stack", None))
                or getattr(local, "remote", None) is not None)

    def _unavailable(self, node: _NodeState,
                     reason: str) -> ApiResponse:
        self._m_unavailable.inc(
            node=node.name,
            reason=reason.split(" ", 1)[0].rstrip(":"))
        body = error_body(
            f"{node.name} unavailable: {reason}; retry after "
            f"{self.retry_after_s:g}s")
        body["node"] = node.index
        return ApiResponse(
            503, body,
            headers={"Retry-After": f"{self.retry_after_s:g}"})

    def _submit(self, node: _NodeState, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                query: Optional[Dict[str, str]] = None,
                replay_safe: Optional[bool] = None):
        """Submit one :meth:`_forward` to the scatter pool, carrying
        the submitting thread's trace context along.

        Pool threads have no span stack, so the context is captured
        here (as a ``traceparent``) and re-installed on the worker via
        :meth:`~repro.obs.tracing.Tracer.continue_trace` — each leg's
        ``router.forward`` span then records as a fragment whose
        parent is the router span, and stitching reattaches it as a
        parallel child.  Untraced routes capture None and the leg
        stays span-free.
        """
        ctx = parse_traceparent(self.tracer.current_traceparent())
        return self._pool.submit(self._leg, ctx, node, method, path,
                                 body, query, replay_safe)

    def _leg(self, ctx, node: _NodeState, method: str, path: str,
             body: Optional[Dict[str, Any]],
             query: Optional[Dict[str, str]],
             replay_safe: Optional[bool]) -> ApiResponse:
        with self.tracer.continue_trace(ctx):
            return self._forward(node, method, path, body=body,
                                 query=query, replay_safe=replay_safe)

    def _scatter(self, method: str, path: str,
                 query: Optional[Dict[str, str]] = None
                 ) -> List[ApiResponse]:
        """The same GET against every node, concurrently, in index
        order.  Callers decide whether a failed leg degrades (ops
        endpoints) or aborts (data reads: never silently truncate)."""
        futures = [self._submit(node, method, path, None, query)
                   for node in self.nodes]
        return [future.result() for future in futures]

    @staticmethod
    def _first_failure(responses: List[ApiResponse]
                       ) -> Optional[ApiResponse]:
        for response in responses:
            if not response.ok:
                return response
        return None

    # -- write routes --------------------------------------------------

    def _create_job(self, request: ApiRequest) -> ApiResponse:
        """Round-robin job placement across healthy nodes.

        The chosen node mints a ``job_id`` inside its own hash slice,
        so every later request for that job routes back to it by pure
        hashing.  Placement is deterministic when all nodes are
        healthy (call-count modulo), which keeps chaos baselines
        comparable; an unhealthy node is skipped.
        """
        with self._rr_lock:
            start = self._rr
            self._rr += 1
        last_error: Optional[ApiResponse] = None
        for offset in range(self.n_nodes):
            node = self.nodes[(start + offset) % self.n_nodes]
            with node.lock:
                healthy = node.healthy
            if not healthy and offset + 1 < self.n_nodes:
                continue
            response = self._forward(node, "POST", "/jobs",
                                     body=request.body,
                                     replay_safe=False)
            if response.status != 503:
                return response
            last_error = response
        return last_error if last_error is not None else \
            self._unavailable(self.nodes[start % self.n_nodes],
                              "no healthy nodes")

    def _register_worker(self, request: ApiRequest) -> ApiResponse:
        """Broadcast: workers exist on every node (answers for a
        worker land wherever its tasks hash).  Registration is
        idempotent on the platform, so replay is safe."""
        futures = [self._submit(node, "POST", "/workers",
                                request.body, None, True)
                   for node in self.nodes]
        responses = [future.result() for future in futures]
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        return responses[0]

    def _disconnect(self, request: ApiRequest) -> ApiResponse:
        """Broadcast: the worker's leases live on every node that ever
        assigned it a task.  Requeue counts sum."""
        futures = [self._submit(node, "POST", request.path,
                                request.body or {}, None, True)
                   for node in self.nodes]
        responses = [future.result() for future in futures]
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        merged = dict(responses[0].body)
        merged["requeued"] = sum(
            int(response.body.get("requeued", 0))
            for response in responses)
        return ApiResponse(200, merged)

    def _batch_assign(self, request: ApiRequest) -> ApiResponse:
        job_id = (request.body or {}).get("job_id")
        if not job_id:
            return ApiResponse(
                422, error_body("batch-assign needs a 'job_id'"))
        return self._forward(self._owner(str(job_id)), "POST",
                             request.path, body=request.body)

    def _batch_answers(self, request: ApiRequest) -> ApiResponse:
        """Split a batch by task owner, reassemble results in order.

        The batch is replay-safe against a restarting node exactly
        when *every* item carries an idempotency key (the client's
        ``submit_answers`` always fills them in).  A failed shard
        fails the whole batch with its error — a partial batch result
        would silently drop answers.
        """
        items = (request.body or {}).get("answers")
        if not isinstance(items, list):
            return ApiResponse(
                422, error_body("body needs an 'answers' array"))
        if len(items) > MAX_BATCH_ITEMS:
            return ApiResponse(422, error_body(
                f"batch too large: {len(items)} > {MAX_BATCH_ITEMS}"))
        groups: Dict[int, List[Tuple[int, Dict[str, Any]]]] = {}
        for position, item in enumerate(items):
            if not isinstance(item, dict) or not item.get("task_id"):
                return ApiResponse(422, error_body(
                    f"answer item {position} needs a 'task_id'"))
            owner = shard_of(str(item["task_id"]), self.n_nodes)
            groups.setdefault(owner, []).append((position, item))
        replay_safe = all(bool(item.get("idempotency_key"))
                          for item in items)
        futures = {
            owner: self._submit(
                self.nodes[owner], "POST", "/answers:batch",
                {"answers": [item for _, item in group]}, None,
                replay_safe)
            for owner, group in groups.items()}
        results: List[Optional[Dict[str, Any]]] = [None] * len(items)
        accepted = 0
        for owner, group in groups.items():
            response = futures[owner].result()
            if not response.ok:
                return response
            shard_results = response.body.get("results", [])
            if len(shard_results) != len(group):
                return ApiResponse(502, error_body(
                    f"node-{owner} returned {len(shard_results)} "
                    f"results for {len(group)} items"))
            for (position, _), outcome in zip(group, shard_results):
                results[position] = outcome
            accepted += int(response.body.get("accepted", 0))
        return ApiResponse(200, {"accepted": accepted,
                                 "results": results})

    # -- scatter-gather reads ------------------------------------------

    def _list_jobs(self, request: ApiRequest) -> ApiResponse:
        responses = self._scatter("GET", "/jobs", request.query)
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        jobs: List[Dict[str, Any]] = []
        for response in responses:
            jobs.extend(response.body.get("jobs", []))
        jobs.sort(key=lambda job: str(job.get("job_id", "")))
        return ApiResponse(200, {"jobs": jobs})

    def _leaderboard(self, request: ApiRequest) -> ApiResponse:
        """Sum points per account across nodes, then rank.

        A worker's points are split across the nodes its tasks hashed
        to, so per-node top-k lists cannot be merged directly: the
        router asks every node for its *full* board and ranks the
        summed totals.
        """
        try:
            k = int(request.query.get("k", "10"))
        except ValueError:
            return ApiResponse(422, error_body("k must be an integer"))
        responses = self._scatter("GET", "/leaderboard",
                                  {"k": str(10_000_000)})
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        totals: Dict[str, int] = {}
        for response in responses:
            for row in response.body.get("leaderboard", []):
                account = str(row.get("account_id"))
                totals[account] = (totals.get(account, 0)
                                   + int(row.get("points", 0)))
        ranked = sorted(totals.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:max(0, k)]
        return ApiResponse(200, {"leaderboard": [
            {"account_id": account, "points": points}
            for account, points in ranked]})

    def _flagged(self, request: ApiRequest) -> ApiResponse:
        responses = self._scatter("GET", "/workers/flagged")
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        flagged = set()
        for response in responses:
            flagged.update(response.body.get("flagged", []))
        return ApiResponse(200, {"flagged": sorted(flagged)})

    def _worker_stats(self, request: ApiRequest,
                      worker_id: str) -> ApiResponse:
        """Merge a worker's per-node accounts into one document.

        Points sum (they are disjoint per node); reputation averages;
        ``trusted`` requires every node's agreement; ``rank`` is
        per-node state and comes back null — the merged leaderboard is
        the cluster-wide ranking source.
        """
        responses = self._scatter("GET", f"/workers/{worker_id}")
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        reputations = [float(r.body.get("reputation", 0.0))
                       for r in responses]
        return ApiResponse(200, {
            "account_id": worker_id,
            "points": sum(int(r.body.get("points", 0))
                          for r in responses),
            "reputation": (sum(reputations) / len(reputations)
                           if reputations else 0.0),
            "trusted": all(bool(r.body.get("trusted"))
                           for r in responses),
            "rank": None,
            "nodes": [{"index": index,
                       "points": r.body.get("points", 0),
                       "reputation": r.body.get("reputation"),
                       "rank": r.body.get("rank")}
                      for index, r in enumerate(responses)]})

    # -- observability aggregation -------------------------------------

    def _healthz(self) -> ApiResponse:
        """Cluster readiness: the router's view of every node.

        Unlike data reads, a down node does not fail the probe — it
        *is* the information: status degrades and the per-node entry
        carries the error."""
        nodes = self.nodes_snapshot()
        healthy = sum(1 for node in nodes if node["healthy"])
        return ApiResponse(200, {
            "status": "ok" if healthy == self.n_nodes else "degraded",
            "role": "router",
            "uptime_s": time.monotonic() - self._started_monotonic,
            "n_nodes": self.n_nodes,
            "healthy_nodes": healthy,
            "nodes": nodes})

    def _metrics(self, request: ApiRequest) -> ApiResponse:
        """Cluster metrics: labeled federation over every node.

        The JSON document carries four views of the same scatter:

        - ``metrics`` — the blind rollup (counters and gauges summed
          per label set), kept for dashboards that want one number.
        - ``federated`` — every per-node series with its labels
          *plus* ``node="node-i"``, all kinds included: provenance is
          never erased, so a per-node drill-down (``repro top``)
          needs no second fetch.
        - ``histograms`` — per-node raw bucket counts merged into
          cluster-exact percentiles
          (:func:`~repro.obs.metrics.merged_histogram_snapshot`).
        - ``nodes`` / ``router`` — the raw per-node snapshots and the
          router's own registry.

        ``format=prometheus`` renders the router's registry followed
        by each node's snapshot with the ``node`` label merged into
        every series.
        """
        fmt = negotiate(accept=request.headers.get("accept"),
                        fmt=request.query.get("format"))
        responses = self._scatter("GET", "/metrics")
        if fmt == "prometheus":
            parts = [render_prometheus(self.registry)]
            for node, response in zip(self.nodes, responses):
                if response.ok:
                    parts.append(render_prometheus_snapshot(
                        response.body, {"node": node.name}))
            return ApiResponse(200, {},
                               text="".join(parts),
                               content_type=PROMETHEUS_CONTENT_TYPE)
        merged: Dict[str, Dict[str, Any]] = {}
        federated: Dict[str, Dict[str, Any]] = {}
        histogram_docs: Dict[str, List[Dict[str, Any]]] = {}
        per_node: Dict[str, Any] = {}
        reachable = 0
        for node, response in zip(self.nodes, responses):
            if not response.ok:
                per_node[node.name] = {
                    "error": response.body.get("error",
                                               "unreachable")}
                continue
            reachable += 1
            snapshot = response.body.get("metrics", {})
            per_node[node.name] = response.body
            for name, metric in snapshot.items():
                fed = federated.setdefault(name, {
                    "kind": metric.get("kind"),
                    "description": metric.get("description", ""),
                    "series": []})
                for series in metric.get("series", []):
                    labeled = dict(series)
                    labeled["labels"] = dict(
                        series.get("labels") or {})
                    labeled["labels"]["node"] = node.name
                    fed["series"].append(labeled)
                if metric.get("kind") == "histogram":
                    histogram_docs.setdefault(name, []).append(metric)
                if metric.get("kind") not in ("counter", "gauge"):
                    continue
                slot = merged.setdefault(name, {
                    "kind": metric["kind"],
                    "description": metric.get("description", ""),
                    "series": {}})
                for series in metric.get("series", []):
                    labels = tuple(sorted(
                        (series.get("labels") or {}).items()))
                    slot["series"][labels] = (
                        slot["series"].get(labels, 0)
                        + series.get("value", 0))
        metrics_doc = {
            name: {"kind": slot["kind"],
                   "description": slot["description"],
                   "series": [{"labels": dict(labels),
                               "value": value}
                              for labels, value
                              in sorted(slot["series"].items())]}
            for name, slot in sorted(merged.items())}
        for metric in federated.values():
            metric["series"].sort(key=lambda s: sorted(
                (s.get("labels") or {}).items()))
        merged_histograms = {
            name: doc for name, doc in
            ((name, merged_histogram_snapshot(docs))
             for name, docs in sorted(histogram_docs.items()))
            if doc is not None}
        router_own = render_json(self.registry).get("metrics", {})
        return ApiResponse(200, {
            "cluster": {"n_nodes": self.n_nodes,
                        "reachable_nodes": reachable,
                        "complete": reachable == self.n_nodes},
            "metrics": metrics_doc,
            "federated": dict(sorted(federated.items())),
            "histograms": merged_histograms,
            "router": router_own,
            "nodes": per_node})

    def _dashboard(self, request: ApiRequest) -> ApiResponse:
        """Per-node health plus cluster rollups; rendered by ``repro
        top`` as the cluster frame.  Deterministic JSON (sorted keys)
        like the single-node dashboard.

        Beyond the per-node health entries, the document now carries
        the federation rollups: ``latency.verbs`` merges every node's
        per-verb GK sketch (cluster-accurate percentiles, rank error
        bounded by the sum of the operand budgets — see
        :meth:`repro.obs.sketch.QuantileSketch.merge`), and ``slo`` /
        ``anomalies`` come from the router's own live engine, which
        watches the full client-visible request stream.

        ``?node=I`` skips the rollup and forwards to one node's own
        dashboard — the ``repro top --node I`` drill-down.
        """
        raw = request.query.get("node")
        if raw is not None:
            try:
                node = self.nodes[int(raw)]
            except (ValueError, IndexError):
                return ApiResponse(422, error_body(
                    f"node must be an index in [0, {self.n_nodes})"))
            query = {key: value
                     for key, value in request.query.items()
                     if key != "node"}
            return self._forward(node, "GET", "/dashboard",
                                 query=query)
        responses = self._scatter("GET", "/dashboard",
                                  {"sketches": "1"})
        health = {node["index"]: node
                  for node in self.nodes_snapshot()}
        nodes_doc: Dict[str, Any] = {}
        total_requests = 0
        total_errors = 0
        verb_sketches: Dict[str, QuantileSketch] = {}
        for node, response in zip(self.nodes, responses):
            entry = dict(health[node.index])
            if response.ok:
                service = response.body.get("service", {})
                entry["service"] = {
                    "requests": service.get("requests", 0),
                    "errors": service.get("errors", 0)}
                total_requests += int(service.get("requests", 0))
                total_errors += int(service.get("errors", 0))
                verbs = (response.body.get("latency") or {}).get(
                    "verbs") or {}
                for route, doc in verbs.items():
                    raw = doc.get("sketch")
                    if not isinstance(raw, dict):
                        continue
                    try:
                        sketch = QuantileSketch.from_dict(raw)
                    except (KeyError, TypeError, ValueError):
                        continue
                    have = verb_sketches.get(route)
                    if have is None:
                        verb_sketches[route] = sketch
                    else:
                        have.merge(sketch)
            elif response.status == 503 and "disabled" in str(
                    response.body.get("error", "")):
                # Live analytics off on the node: healthy, no doc.
                entry["service"] = None
            else:
                entry["error"] = response.body.get("error",
                                                   "unreachable")
            nodes_doc[f"node-{node.index}"] = entry
        doc = {
            "role": "router",
            "cluster": {
                "n_nodes": self.n_nodes,
                "healthy_nodes": sum(
                    1 for node in health.values()
                    if node["healthy"]),
                "requests": total_requests,
                "errors": total_errors},
            "latency": {"verbs": {
                route: sketch.summary()
                for route, sketch in sorted(verb_sketches.items())}},
            "nodes": nodes_doc}
        if self.live is not None:
            live = self.live.snapshot()
            doc["router"] = {"service": live["service"],
                             "latency": live["latency"]}
            doc["slo"] = live["slo"]
            doc["anomalies"] = live["anomalies"]
        return ApiResponse(200, doc,
                           text=json.dumps(doc, sort_keys=True),
                           content_type="application/json; "
                                        "charset=utf-8")

    def _debug(self, request: ApiRequest) -> ApiResponse:
        """Debug endpoints: ``?node=I`` forwards to one node; without
        a selector, ``/debug/traces`` and ``/debug/profile`` answer
        cluster-merged (the other flight-recorder views stay strictly
        per-node — a stitched lock table would be meaningless)."""
        raw = request.query.get("node")
        if raw is None:
            if request.path == "/debug/traces":
                return self._merged_traces(request)
            if request.path == "/debug/profile":
                return self._merged_profile(request)
            return ApiResponse(422, error_body(
                "debug endpoints are per-node: add ?node=<index>"))
        try:
            index = int(raw)
            node = self.nodes[index]
        except (ValueError, IndexError):
            return ApiResponse(422, error_body(
                f"node must be an index in [0, {self.n_nodes})"))
        query = {key: value for key, value in request.query.items()
                 if key != "node"}
        return self._forward(node, "GET", request.path, query=query)

    def _merged_traces(self, request: ApiRequest) -> ApiResponse:
        """Cluster-merged trace view: every node's flight recorder
        plus the router's own, stitched by trace id.

        ``?format=jsonl`` returns the canonical stitched JSONL (one
        trace per line, sorted keys) — byte-deterministic for a given
        set of recorder states, because the fan-out itself is
        untraced and the stitcher sorts on stable keys.  ``?limit=N``
        is forwarded to every recorder before stitching.
        """
        query: Dict[str, str] = {}
        raw_limit = request.query.get("limit")
        if raw_limit is not None:
            query["limit"] = raw_limit
        limit = _parse_limit(raw_limit)
        responses = self._scatter("GET", "/debug/traces",
                                  query or None)
        sources: Dict[str, Any] = {
            "router": self.tracer.recorder.trace_records(limit=limit)}
        nodes_meta: Dict[str, Any] = {}
        reachable = 0
        for node, response in zip(self.nodes, responses):
            if response.ok:
                reachable += 1
                records = response.body.get("traces", [])
                sources[node.name] = records
                nodes_meta[node.name] = {"traces": len(records)}
            else:
                nodes_meta[node.name] = {
                    "error": response.body.get("error",
                                               "unreachable")}
        traces = stitch_traces(sources)
        if request.query.get("format", "").lower() == "jsonl":
            text = stitched_jsonl(traces)
            if text:
                text += "\n"
            return ApiResponse(200, text=text,
                               content_type=NDJSON_CONTENT_TYPE)
        return ApiResponse(200, {
            "cluster": {"n_nodes": self.n_nodes,
                        "reachable_nodes": reachable,
                        "merged": True},
            "traces": traces,
            "nodes": nodes_meta})

    def _merged_profile(self, request: ApiRequest) -> ApiResponse:
        """Cluster-merged sampling profile: per-node stack counts
        summed (:func:`~repro.obs.profiler.merge_profiles`), the
        per-node docs riding along for drill-down.  ``?format=
        collapsed`` renders the merged counters as collapsed-stack
        text for ``flamegraph.pl``.  A node without a profiler (or
        unreachable) is reported and contributes nothing.
        """
        responses = self._scatter("GET", "/debug/profile")
        node_docs: Dict[str, Optional[Dict[str, Any]]] = {}
        for node, response in zip(self.nodes, responses):
            node_docs[node.name] = (response.body if response.ok
                                    else None)
        if self.profiler is not None:
            node_docs["router"] = self.profiler.snapshot()
        merged = merge_profiles(node_docs)
        if request.query.get("format", "").lower() == "collapsed":
            return ApiResponse(200, text=collapsed_text(merged),
                               content_type=COLLAPSED_CONTENT_TYPE)
        return ApiResponse(200, merged)
