"""Fault-tolerant multi-node cluster (ISSUE 9).

``repro.cluster`` shards one platform across N worker *processes*:
each node owns the contiguous slice of the key space
``shard_of(id, n_nodes) == index`` (the same BLAKE2b hash the sharded
store uses), keeps its own write-ahead log and checkpoints in its own
directory, and serves the full single-node HTTP API.  In front of the
nodes sits a thin :class:`~repro.cluster.router.ClusterRouter`:
requests naming an id are routed to its owner by pure hashing,
collection reads scatter-gather across every node, and writes to a
dead node answer ``503 + Retry-After`` while the
:class:`~repro.cluster.supervisor.NodeSupervisor` restarts it from its
WAL via :meth:`~repro.platform.facade.Platform.recover`.

The pieces compose (and are usable separately):

- :class:`~repro.cluster.node.NodeConfig` / ``python -m
  repro.cluster.node`` — one shard-owning worker process.
- :class:`~repro.cluster.supervisor.NodeSupervisor` — spawns nodes,
  respawns them when they die, and executes chaos verdicts (SIGKILL /
  SIGSTOP / SIGCONT).
- :class:`~repro.cluster.router.ClusterRouter` — consistent-hash
  routing, scatter-gather, per-node health + circuit breakers,
  failover with idempotent replay.
- :class:`~repro.cluster.cluster.Cluster` — the one-call bundle:
  supervisor + router + asyncio front door.
"""

from repro.cluster.cluster import Cluster, free_ports
from repro.cluster.node import NodeConfig, READY_FILE, build_node
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import (NODE_DIR_FORMAT, NodeProcess,
                                      NodeSupervisor, node_dir)

__all__ = [
    "Cluster",
    "ClusterRouter",
    "NodeConfig",
    "NodeProcess",
    "NodeSupervisor",
    "NODE_DIR_FORMAT",
    "READY_FILE",
    "build_node",
    "free_ports",
    "node_dir",
]
