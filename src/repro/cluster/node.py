"""One cluster node: a shard-owning worker process.

``python -m repro.cluster.node --index I --nodes N --data-dir DIR``
boots a :class:`~repro.platform.facade.Platform` restricted to the
hash slice ``shard_of(id, N) == I`` (so every id it mints is routable
by pure hashing), recovers it from the node's own durability
directory, and serves the full HTTP API on the asyncio front door.

Startup protocol: once the listener is bound *and* recovery has
replayed the WAL, the node atomically writes ``node.json`` (pid, port,
index) into its data directory — the supervisor polls for that file to
declare the node ready, and deletes it before every (re)spawn so a
stale one can never satisfy the poll.  Shutdown protocol: SIGTERM (or
SIGINT) drains in-flight connections, flushes a final checkpoint, and
exits 0; SIGKILL at any point is recoverable by construction — that is
the whole premise of the chaos matrix.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

#: Ready-file name inside the node's data directory.  The atomic
#: rename lands as ``node.json``; the temp name deliberately avoids
#: the ``*.tmp`` suffix fsck reserves for interrupted checkpoints.
READY_FILE = "node.json"


@dataclass(frozen=True)
class NodeConfig:
    """Everything that defines one node process.

    ``seed`` feeds the node's scheduler RNG; cluster campaigns that
    need byte-identical replays keep ``gold_rate`` at 0 so the stream
    is never consulted and a mid-campaign recovery (which resets it)
    cannot diverge from a fault-free run.
    """

    index: int
    n_nodes: int
    data_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    seed: int = 0
    checkpoint_every: int = 512
    fsync: bool = True
    gold_rate: float = 0.1
    spam_detection: bool = True
    sample_rate: float = 0.0
    profile: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_nodes:
            raise ValueError(
                f"node index {self.index} outside cluster of "
                f"{self.n_nodes}")

    @property
    def shard_range(self) -> Tuple[int, int]:
        return (self.index, self.n_nodes)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def argv(self) -> List[str]:
        """The subprocess command line reproducing this config."""
        cmd = [sys.executable, "-m", "repro.cluster.node",
               "--index", str(self.index),
               "--nodes", str(self.n_nodes),
               "--data-dir", str(self.data_dir),
               "--host", self.host,
               "--port", str(self.port),
               "--seed", str(self.seed),
               "--checkpoint-every", str(self.checkpoint_every),
               "--gold-rate", str(self.gold_rate),
               "--sample-rate", str(self.sample_rate)]
        if not self.fsync:
            cmd.append("--no-fsync")
        if not self.spam_detection:
            cmd.append("--no-spam")
        if self.profile:
            cmd.append("--profile")
        return cmd


def build_node(config: NodeConfig):
    """Recover the node's platform and build its (unstarted) server.

    Returns ``(platform, api, server)``.  Importing inside the
    function keeps ``repro.cluster`` importable without pulling the
    whole service stack until a node actually boots.
    """
    from repro.obs.recorder import FlightRecorder
    from repro.obs.tracing import Tracer
    from repro.platform.facade import Platform
    from repro.service.api import ApiServer
    from repro.service.http import AsyncHttpServer

    tracer = Tracer(sample_rate=config.sample_rate,
                    recorder=FlightRecorder())
    platform = Platform.recover(
        config.data_dir,
        checkpoint_every=config.checkpoint_every,
        fsync=config.fsync,
        seed=config.seed,
        gold_rate=config.gold_rate,
        spam_detection=config.spam_detection,
        tracer=tracer,
        shard_range=config.shard_range)
    profiler = None
    if config.profile:
        from repro.obs.profiler import SamplingProfiler
        profiler = SamplingProfiler().start()
    api = ApiServer(platform, tracer=tracer,
                    shard_range=config.shard_range,
                    profiler=profiler)
    # Durable platform => handlers block on the WAL; always offload.
    server = AsyncHttpServer(api, host=config.host, port=config.port,
                             offload="thread")
    return platform, api, server


def write_ready_file(config: NodeConfig, port: int,
                     pid: Optional[int] = None) -> Path:
    """Atomically publish the node's readiness document."""
    ready = Path(config.data_dir) / READY_FILE
    doc = {
        "index": config.index,
        "n_nodes": config.n_nodes,
        "pid": pid if pid is not None else os.getpid(),
        "host": config.host,
        "port": port,
        "shard_range": list(config.shard_range),
        "started_at": time.time(),
    }
    staging = ready.parent / (ready.name + ".new")
    staging.write_text(json.dumps(doc, sort_keys=True),
                       encoding="utf-8")
    os.replace(staging, ready)
    return ready


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-node",
        description="one shard-owning cluster worker process")
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--nodes", type=int, required=True)
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint-every", type=int, default=512)
    parser.add_argument("--no-fsync", action="store_true")
    parser.add_argument("--gold-rate", type=float, default=0.1)
    parser.add_argument("--no-spam", action="store_true")
    parser.add_argument("--sample-rate", type=float, default=0.0)
    parser.add_argument("--profile", action="store_true")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    config = NodeConfig(
        index=args.index, n_nodes=args.nodes,
        data_dir=Path(args.data_dir), host=args.host, port=args.port,
        seed=args.seed, checkpoint_every=args.checkpoint_every,
        fsync=not args.no_fsync, gold_rate=args.gold_rate,
        spam_detection=not args.no_spam,
        sample_rate=args.sample_rate, profile=args.profile)
    platform, api, server = build_node(config)
    server.start()

    stop = threading.Event()

    def _graceful(signum, frame):  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    write_ready_file(config, server.port)
    print(f"node {config.index}/{config.n_nodes} serving "
          f"{server.base_url} (wal seq {platform.durability.seq})",
          flush=True)
    while not stop.is_set():
        stop.wait(0.2)
    # Drain keep-alive connections first so every acked mutation is
    # in the WAL before the final checkpoint flush.
    server.shutdown()
    api.shutdown()
    if api.profiler is not None:
        api.profiler.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
