"""The one-call cluster bundle: supervisor + router + front door.

:class:`Cluster` wires the pieces together for tests, the chaos
harness and ``repro serve --cluster N``: it pre-assigns node ports
(restarts come back at the same address), writes a ``cluster.json``
manifest into the data directory (``repro fsck --cluster-dir`` and a
future boot read it), spawns and supervises the nodes, and serves a
:class:`~repro.cluster.router.ClusterRouter` on the asyncio front
door.  Chaos verdicts map 1:1: ``NODE_KILL`` → :meth:`kill_node`,
``NODE_PAUSE`` → :meth:`pause_node`/:meth:`resume_node`,
``PARTITION`` → :meth:`partition_node`.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cluster.node import NodeConfig
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import NodeSupervisor, node_dir
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer

MANIFEST_FILE = "cluster.json"
MANIFEST_FORMAT = "repro-cluster/1"


def free_ports(n: int, host: str = "127.0.0.1") -> List[int]:
    """``n`` currently-free TCP ports, reserved simultaneously.

    Binding all sockets before closing any prevents the kernel from
    handing the same port out twice.  A race with other processes
    remains possible; ``SO_REUSEADDR`` on the node listeners absorbs
    the common TIME_WAIT case.
    """
    sockets = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class Cluster:
    """N supervised worker nodes behind one routed front door.

    Args:
        n_nodes: shard count; also the modulus of ``shard_of``.
        data_dir: cluster root; node ``i`` logs to
            ``data_dir/node-0i``.
        host / router_port: front-door bind address (port 0 picks).
        seed: node scheduler seed (node ``i`` gets ``seed + i``).
        checkpoint_every / fsync: per-node WAL tuning.  ``fsync``
            defaults on: the zero-acked-but-lost guarantee under
            SIGKILL requires acknowledged answers to be on disk.
        gold_rate / spam_detection: platform knobs, forwarded to
            every node.
        sample_rate: trace head-sampling rate forwarded to every node
            (0.0, the default, keeps node tracing off; 1.0 records
            every trace — what the cross-process stitching tests use).
        profile: start a sampling profiler in every node process,
            served at each node's ``GET /debug/profile`` and merged
            at the router.
        auto_restart: respawn dead nodes (chaos recovery path).
        node_ports: explicit node ports (otherwise free ones).
        registry / tracer: router-side observability.
        router_kwargs: extra :class:`ClusterRouter` tuning.
    """

    def __init__(self, n_nodes: int, data_dir, *,
                 host: str = "127.0.0.1", router_port: int = 0,
                 seed: int = 0, checkpoint_every: int = 512,
                 fsync: bool = True, gold_rate: float = 0.1,
                 spam_detection: bool = True,
                 sample_rate: float = 0.0,
                 profile: bool = False,
                 auto_restart: bool = True,
                 node_ports: Optional[List[int]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 router_kwargs: Optional[Dict[str, Any]] = None
                 ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self.data_dir = Path(data_dir)
        self.host = host
        self.router_port = router_port
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self._router_kwargs = dict(router_kwargs or {})
        self._auto_restart = auto_restart
        if node_ports is not None and len(node_ports) != n_nodes:
            raise ValueError("need one port per node")
        ports = node_ports or free_ports(n_nodes, host)
        self.configs = [
            NodeConfig(index=index, n_nodes=n_nodes,
                       data_dir=node_dir(self.data_dir, index),
                       host=host, port=ports[index],
                       seed=seed + index,
                       checkpoint_every=checkpoint_every,
                       fsync=fsync, gold_rate=gold_rate,
                       spam_detection=spam_detection,
                       sample_rate=sample_rate, profile=profile)
            for index in range(n_nodes)]
        self.supervisor: Optional[NodeSupervisor] = None
        self.router: Optional[ClusterRouter] = None
        self.server = None

    # -- lifecycle -----------------------------------------------------

    def start(self, ready_timeout_s: float = 30.0) -> "Cluster":
        from repro.service.http import AsyncHttpServer

        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._write_manifest()
        self.supervisor = NodeSupervisor(
            self.configs, auto_restart=self._auto_restart,
            registry=self.registry)
        self.supervisor.start(ready_timeout_s=ready_timeout_s)
        self.router = ClusterRouter(
            [config.base_url for config in self.configs],
            registry=self.registry, tracer=self.tracer,
            **self._router_kwargs).start()
        # offload="thread": router handlers block on downstream HTTP.
        self.server = AsyncHttpServer(
            self.router, host=self.host, port=self.router_port,
            offload="thread",
            offload_threads=max(8, 2 * self.n_nodes))
        self.server.start()
        return self

    def shutdown(self) -> None:
        if self.server is not None:
            self.server.shutdown()
            self.server = None
        if self.router is not None:
            self.router.close()
            self.router = None
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def base_url(self) -> str:
        assert self.server is not None, "start() first"
        return self.server.base_url

    def _write_manifest(self) -> None:
        doc = {
            "format": MANIFEST_FORMAT,
            "n_nodes": self.n_nodes,
            "host": self.host,
            "nodes": [{"index": config.index, "port": config.port,
                       "dir": config.data_dir.name}
                      for config in self.configs],
        }
        (self.data_dir / MANIFEST_FILE).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    # -- chaos verdicts ------------------------------------------------

    def kill_node(self, index: int) -> None:
        """SIGKILL node ``index``; the supervisor respawns it and the
        replacement recovers from its WAL."""
        assert self.supervisor is not None, "start() first"
        self.supervisor.kill_node(index)

    def pause_node(self, index: int) -> None:
        assert self.supervisor is not None, "start() first"
        self.supervisor.pause_node(index)

    def resume_node(self, index: int) -> None:
        assert self.supervisor is not None, "start() first"
        self.supervisor.resume_node(index)

    def partition_node(self, index: int, duration_s: float) -> None:
        """Router-side partition: the node runs on, unreachable."""
        assert self.router is not None, "start() first"
        self.router.set_partition(index, duration_s)

    # -- health --------------------------------------------------------

    def wait_healthy(self, timeout_s: float = 30.0) -> None:
        """Block until the router has probed every node healthy."""
        assert self.router is not None, "start() first"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            nodes = self.router.nodes_snapshot()
            if (all(node["healthy"] for node in nodes)
                    and all(node["wal_seq"] is not None
                            for node in nodes)):
                return
            time.sleep(0.02)
        raise TimeoutError(
            f"cluster not healthy within {timeout_s}s: "
            f"{self.router.nodes_snapshot()}")

    def restarts(self) -> Dict[int, int]:
        assert self.supervisor is not None, "start() first"
        return self.supervisor.restarts()
