"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

Injection points in the service and platform layers hold an optional
injector and consult it with one cheap call per site; the default
(``faults=None`` everywhere) is a literal no-op with zero overhead.

Each rule owns an independent seeded decision stream (derived from the
plan seed and the rule's position), so whether rule A fires never
perturbs rule B's schedule, and a single-threaded campaign replays the
identical fault sequence under the same seed.  Every injection is
counted into the ``faults.injected`` metric by site and kind, so a
chaos run can assert its faults actually happened.
"""

from __future__ import annotations

import threading
import time
from fnmatch import fnmatchcase
from typing import Dict, List, Optional

from repro import rng as _rng
from repro.errors import InjectedFault
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.obs.metrics import MetricsRegistry, default_registry


class _RuleState:
    """Mutable firing state for one rule."""

    __slots__ = ("rule", "rng", "calls", "fires")

    def __init__(self, rule: FaultRule, seed_stream) -> None:
        self.rule = rule
        self.rng = seed_stream
        self.calls = 0
        self.fires = 0

    def decide(self) -> bool:
        """Advance this rule's stream for one eligible call."""
        self.calls += 1
        if self.calls <= self.rule.after:
            return False
        if (self.rule.max_fires is not None
                and self.fires >= self.rule.max_fires):
            return False
        if self.rng.random() >= self.rule.probability:
            return False
        self.fires += 1
        return True


class FaultInjector:
    """Deterministic, thread-safe executor for a fault plan.

    Args:
        plan: the schedule to execute.
        registry: metrics registry the ``faults.injected`` counter
            lands in (the process default if omitted).
        sleep: latency implementation (monkeypatchable for tests).
    """

    def __init__(self, plan: FaultPlan,
                 registry: Optional[MetricsRegistry] = None,
                 sleep=time.sleep) -> None:
        self.plan = plan
        self.registry = (registry if registry is not None
                         else default_registry())
        self._sleep = sleep
        self._lock = threading.Lock()
        base = _rng.make_rng(plan.seed)
        self._states: List[_RuleState] = [
            _RuleState(rule, _rng.derive(base, f"rule-{index}"))
            for index, rule in enumerate(plan.rules)]
        self._m_injected = self.registry.counter(
            "faults.injected", "faults injected, by site/kind")

    # ------------------------------------------------------------------
    # Core decision
    # ------------------------------------------------------------------

    def _fired(self, site: str, kind: FaultKind) -> Optional[FaultRule]:
        """The first matching rule that fires at this call, if any.

        Every matching rule's stream advances exactly once per call,
        fired or not, which is what keeps schedules independent.
        """
        hit: Optional[FaultRule] = None
        with self._lock:
            for state in self._states:
                if state.rule.kind is not kind:
                    continue
                if not fnmatchcase(site, state.rule.site):
                    continue
                if state.decide() and hit is None:
                    hit = state.rule
        if hit is not None:
            self._m_injected.inc(site=site, kind=kind.value)
        return hit

    # ------------------------------------------------------------------
    # Site-facing queries (one per fault kind)
    # ------------------------------------------------------------------

    def latency(self, site: str) -> float:
        """Injected latency at ``site`` in seconds, without sleeping.

        For transports that must not block a shared event loop: the
        asyncio front door asks here, then ``await asyncio.sleep``\\ s
        the answer itself, so one faulted connection never stalls its
        neighbors.  The rule's decision stream advances exactly as it
        does for :meth:`sleep_latency`.
        """
        rule = self._fired(site, FaultKind.LATENCY)
        return rule.latency_s if rule is not None else 0.0

    def sleep_latency(self, site: str) -> float:
        """Inject latency at ``site``; returns the seconds slept."""
        latency = self.latency(site)
        if latency > 0:
            self._sleep(latency)
        return latency

    def error(self, site: str) -> Optional[InjectedFault]:
        """An :class:`InjectedFault` to raise at ``site``, or None.

        Transient rules produce retryable statuses, permanent rules
        non-retryable ones; both are decided here so a site needs a
        single call.
        """
        rule = self._fired(site, FaultKind.TRANSIENT_ERROR)
        if rule is None:
            rule = self._fired(site, FaultKind.PERMANENT_ERROR)
        if rule is None:
            return None
        return InjectedFault(
            f"injected {rule.kind.value} at {site}", status=rule.status,
            retry_after_s=rule.retry_after_s)

    def drops_response(self, site: str) -> bool:
        """True when the response at ``site`` should be lost."""
        return self._fired(site, FaultKind.DROP_ANSWER) is not None

    def duplicates(self, site: str) -> bool:
        """True when the request at ``site`` is redelivered."""
        return self._fired(site, FaultKind.DUPLICATE) is not None

    def crashes_store(self, site: str) -> bool:
        """True when the store should crash-restart before ``site``."""
        return self._fired(site, FaultKind.STORE_CRASH) is not None

    def crash_point(self, site: str) -> Optional[FaultRule]:
        """The ``CRASH_POINT`` rule firing at ``site``, or None.

        Returns the whole rule (the durability log needs ``at_byte``
        to decide how much of the frame reaches disk).
        """
        return self._fired(site, FaultKind.CRASH_POINT)

    # The cluster kinds are consulted by the chaos harness (between
    # client operations) rather than by an in-process injection point:
    # the verdicts name whole-process failures only the harness and
    # supervisor can execute.

    def kills_node(self, site: str) -> bool:
        """True when the node named by ``site`` should be SIGKILLed."""
        return self._fired(site, FaultKind.NODE_KILL) is not None

    def pauses_node(self, site: str) -> float:
        """Seconds to SIGSTOP the node named by ``site`` (0 = no
        pause)."""
        rule = self._fired(site, FaultKind.NODE_PAUSE)
        return rule.latency_s if rule is not None else 0.0

    def partitions(self, site: str) -> float:
        """Seconds the router should lose sight of the node named by
        ``site`` (0 = no partition)."""
        rule = self._fired(site, FaultKind.PARTITION)
        return rule.latency_s if rule is not None else 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def fires(self) -> Dict[str, int]:
        """Injections so far, keyed ``"site-pattern/kind"``."""
        with self._lock:
            out: Dict[str, int] = {}
            for state in self._states:
                key = f"{state.rule.site}/{state.rule.kind.value}"
                out[key] = out.get(key, 0) + state.fires
            return out

    def total_fires(self) -> int:
        with self._lock:
            return sum(state.fires for state in self._states)
