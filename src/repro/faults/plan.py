"""Fault plans: declarative, seedable failure schedules.

A :class:`FaultPlan` is a list of :class:`FaultRule` s, each naming a
*site* (an injection point such as ``api.answer`` or
``platform.submit_answer``; shell-style wildcards allowed), a
:class:`FaultKind`, and firing controls (probability, warm-up skip,
fire cap).  Plans are pure data — building an executable injector from
one is :class:`repro.faults.injector.FaultInjector`'s job — so the same
plan can drive many runs, and a seeded plan replays the exact same
fault schedule every time.

The six fault kinds model the failures a production crowdsourcing
service sees (ISSUE 2; Ponciano et al. 2015's dependability taxonomy):

- ``LATENCY`` — the operation happens, slowly.
- ``TRANSIENT_ERROR`` — the operation is rejected with a retryable
  status (connection reset at the HTTP layer); retrying heals it.
- ``PERMANENT_ERROR`` — the operation is rejected with a
  non-retryable status; clients must give up.
- ``DROP_ANSWER`` — the operation *happens* but its response is lost,
  so the caller cannot tell success from failure (the at-least-once
  delivery hazard idempotency keys exist for).
- ``DUPLICATE`` — the request is delivered twice (at-least-once
  redelivery); the platform must dedupe.
- ``STORE_CRASH`` — the platform store crash-restarts from its JSON
  checkpoint, losing all in-memory leases.
- ``CRASH_POINT`` — the process dies mid-write: the durability log
  flushes only the first ``at_byte`` bytes of a WAL append or
  checkpoint frame, then raises
  :class:`~repro.errors.InjectedCrash`.  The crash-recovery matrix is
  built on this.

Three cluster-level kinds (ISSUE 9) drive the multi-node chaos
harness; their sites name cluster nodes (``cluster.node-2``) and the
harness — not an in-process injection point — executes the verdicts:

- ``NODE_KILL`` — SIGKILL a worker node mid-campaign; the supervisor
  restarts it via :meth:`~repro.platform.facade.Platform.recover`
  from its own WAL.
- ``NODE_PAUSE`` — SIGSTOP a node for ``latency_s`` seconds, then
  SIGCONT (the hung-but-alive failure deadlines exist for).
- ``PARTITION`` — the router loses sight of a healthy node for
  ``latency_s`` seconds (requests answered 503 + Retry-After while
  the node keeps running).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro import rng as _rng
from repro.errors import ConfigError


class FaultKind(enum.Enum):
    """What kind of failure a rule injects."""

    LATENCY = "latency"
    TRANSIENT_ERROR = "transient_error"
    PERMANENT_ERROR = "permanent_error"
    DROP_ANSWER = "drop_answer"
    DUPLICATE = "duplicate"
    STORE_CRASH = "store_crash"
    CRASH_POINT = "crash_point"
    NODE_KILL = "node_kill"
    NODE_PAUSE = "node_pause"
    PARTITION = "partition"


@dataclass(frozen=True)
class FaultRule:
    """One failure schedule entry.

    Attributes:
        site: injection-point pattern (``fnmatch`` style), e.g.
            ``"api.answer"`` or ``"platform.*"``.
        kind: the fault to inject.
        probability: chance each eligible call fires, in [0, 1].
        after: skip this many eligible calls before arming (lets a
            campaign warm up fault-free).
        max_fires: stop firing after this many injections (None =
            unlimited).
        latency_s: sleep duration for ``LATENCY`` rules.
        status: HTTP status for error rules (503 transient, 422
            permanent are the conventional picks).
        retry_after_s: advisory backoff attached to injected errors.
        at_byte: for ``CRASH_POINT`` rules, how many bytes of the
            frame reach disk before the simulated kill (None = the
            whole frame lands but the process dies before
            acknowledging).
    """

    site: str
    kind: FaultKind
    probability: float = 1.0
    after: int = 0
    max_fires: Optional[int] = None
    latency_s: float = 0.001
    status: int = 503
    retry_after_s: Optional[float] = None
    at_byte: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigError("fault rule needs a non-empty site")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0,1], got {self.probability}")
        if self.after < 0:
            raise ConfigError(f"after must be >= 0, got {self.after}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ConfigError(
                f"max_fires must be >= 0, got {self.max_fires}")
        if self.latency_s < 0:
            raise ConfigError(
                f"latency_s must be >= 0, got {self.latency_s}")
        if self.at_byte is not None:
            if self.kind is not FaultKind.CRASH_POINT:
                raise ConfigError(
                    "at_byte only applies to CRASH_POINT rules")
            if self.at_byte < 0:
                raise ConfigError(
                    f"at_byte must be >= 0, got {self.at_byte}")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable schedule of fault rules.

    The builder methods return new plans (plans are immutable), so a
    baseline plan can be specialized per campaign::

        plan = (FaultPlan(seed=3)
                .with_transient_errors("api.answer", probability=0.3)
                .with_latency("scheduler.next_task", latency_s=0.001))

    Attributes:
        seed: drives every rule's independent decision stream.
        rules: the schedule entries.
    """

    seed: _rng.SeedLike = 0
    rules: Sequence[FaultRule] = field(default_factory=tuple)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=tuple(self.rules) + (rule,))

    def with_latency(self, site: str, probability: float = 1.0,
                     latency_s: float = 0.001,
                     **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.LATENCY, probability=probability,
            latency_s=latency_s, **kw))

    def with_transient_errors(self, site: str,
                              probability: float = 1.0,
                              status: int = 503, **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.TRANSIENT_ERROR,
            probability=probability, status=status, **kw))

    def with_permanent_errors(self, site: str,
                              probability: float = 1.0,
                              status: int = 422, **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.PERMANENT_ERROR,
            probability=probability, status=status, **kw))

    def with_dropped_answers(self, site: str,
                             probability: float = 1.0,
                             **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.DROP_ANSWER,
            probability=probability, **kw))

    def with_duplicates(self, site: str, probability: float = 1.0,
                        **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.DUPLICATE,
            probability=probability, **kw))

    def with_store_crashes(self, site: str = "platform.*",
                           probability: float = 0.05,
                           max_fires: Optional[int] = 3,
                           **kw) -> "FaultPlan":
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.STORE_CRASH,
            probability=probability, max_fires=max_fires, **kw))

    def with_crash_points(self, site: str = "wal.append",
                          probability: float = 1.0,
                          after: int = 0,
                          max_fires: Optional[int] = 1,
                          at_byte: Optional[int] = None,
                          **kw) -> "FaultPlan":
        """Kill the process mid-write at a durability site
        (``wal.append`` or ``wal.checkpoint``), leaving the first
        ``at_byte`` bytes of the frame on disk."""
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.CRASH_POINT,
            probability=probability, after=after, max_fires=max_fires,
            at_byte=at_byte, **kw))

    def with_node_kills(self, site: str = "cluster.node-*",
                        probability: float = 1.0,
                        after: int = 0,
                        max_fires: Optional[int] = 1,
                        **kw) -> "FaultPlan":
        """SIGKILL a cluster node when the harness consults ``site``
        (``cluster.node-<index>``); the supervisor recovers it from
        its own WAL."""
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.NODE_KILL,
            probability=probability, after=after, max_fires=max_fires,
            **kw))

    def with_node_pauses(self, site: str = "cluster.node-*",
                         pause_s: float = 0.5,
                         probability: float = 1.0,
                         max_fires: Optional[int] = 1,
                         **kw) -> "FaultPlan":
        """SIGSTOP a node for ``pause_s`` seconds, then SIGCONT."""
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.NODE_PAUSE,
            probability=probability, latency_s=pause_s,
            max_fires=max_fires, **kw))

    def with_partitions(self, site: str = "cluster.node-*",
                        duration_s: float = 0.5,
                        probability: float = 1.0,
                        max_fires: Optional[int] = 1,
                        **kw) -> "FaultPlan":
        """Hide a healthy node from the router for ``duration_s``
        seconds (requests get 503 + Retry-After while it runs on)."""
        return self.with_rule(FaultRule(
            site=site, kind=FaultKind.PARTITION,
            probability=probability, latency_s=duration_s,
            max_fires=max_fires, **kw))

    def rules_of(self, kind: FaultKind) -> List[FaultRule]:
        return [rule for rule in self.rules if rule.kind is kind]

    def build(self, registry=None, sleep=None):
        """An executable :class:`~repro.faults.injector.FaultInjector`
        for this plan (convenience; importing here avoids a cycle)."""
        from repro.faults.injector import FaultInjector
        kwargs = {} if sleep is None else {"sleep": sleep}
        return FaultInjector(self, registry=registry, **kwargs)
