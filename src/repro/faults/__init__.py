"""Deterministic fault injection for chaos-testing the platform stack.

``repro.faults`` turns the failure modes a production GWAP service
faces — slow calls, transient rejections, lost responses, duplicate
deliveries, store crash-restarts — into a seedable, replayable
schedule.  A :class:`FaultPlan` declares *what* fails and *how often*;
a :class:`FaultInjector` executes the plan at injection points threaded
through :mod:`repro.service` and :mod:`repro.platform`.  With no
injector configured (the default), every injection point is a no-op.

See ``docs/resilience.md`` for the cookbook and ``tests/chaos/`` for
full campaigns run under each fault class.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRule

__all__ = ["FaultInjector", "FaultKind", "FaultPlan", "FaultRule"]
