"""Player arrival processes.

Visits to a GWAP site follow a Poisson process whose rate swings with the
time of day.  :class:`DiurnalProfile` is the modulation curve (quiet at
night, peaks in the evening); :class:`ArrivalProcess` produces the
timestamped visit stream a campaign consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro import rng as _rng
from repro.errors import SimulationError


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal day/night modulation of the arrival rate.

    Attributes:
        amplitude: 0 (flat) .. 1 (rate touches zero at the trough).
        peak_hour: local hour of maximum traffic (GWAP sites peak in
            the evening).
    """

    amplitude: float = 0.5
    peak_hour: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 1.0:
            raise SimulationError(
                f"amplitude must be in [0,1], got {self.amplitude}")
        if not 0.0 <= self.peak_hour < 24.0:
            raise SimulationError(
                f"peak_hour must be in [0,24), got {self.peak_hour}")

    def factor(self, at_s: float) -> float:
        """Rate multiplier at campaign time ``at_s`` (mean 1.0)."""
        hour = (at_s / 3600.0) % 24.0
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        return 1.0 + self.amplitude * math.cos(phase)


class ArrivalProcess:
    """Inhomogeneous Poisson arrivals via thinning.

    Args:
        rate_per_hour: mean visits per hour (before modulation).
        profile: optional diurnal modulation.
        seed: RNG seed.
    """

    def __init__(self, rate_per_hour: float,
                 profile: DiurnalProfile = DiurnalProfile(amplitude=0.0),
                 seed: _rng.SeedLike = 0) -> None:
        if rate_per_hour <= 0:
            raise SimulationError(
                f"rate_per_hour must be > 0, got {rate_per_hour}")
        self.rate_per_hour = rate_per_hour
        self.profile = profile
        self._rng = _rng.make_rng(seed)

    def times(self, duration_s: float) -> List[float]:
        """All arrival times in ``[0, duration_s)``.

        Uses Lewis–Shedler thinning against the peak rate, so the
        diurnal profile is honored exactly.
        """
        if duration_s <= 0:
            raise SimulationError(
                f"duration_s must be > 0, got {duration_s}")
        peak_rate = (self.rate_per_hour / 3600.0) * (
            1.0 + self.profile.amplitude)
        out: List[float] = []
        clock = 0.0
        while True:
            clock += _rng.exponential(self._rng, peak_rate)
            if clock >= duration_s:
                break
            accept = (self.rate_per_hour / 3600.0
                      * self.profile.factor(clock)) / peak_rate
            if self._rng.random() < accept:
                out.append(clock)
        return out

    def expected_count(self, duration_s: float) -> float:
        """Approximate expected arrivals over the window."""
        return self.rate_per_hour * duration_s / 3600.0
