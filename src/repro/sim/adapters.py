"""Session adapters: one uniform runner per game.

Each factory takes a configured game and returns a
``SessionRunner`` — ``(model_a, model_b, start_s) -> SessionOutcome`` —
so any game plugs into :class:`~repro.sim.engine.Campaign` unchanged.
"""

from __future__ import annotations

from typing import List

from repro.core.entities import RoundResult
from repro.games.esp import EspGame
from repro.games.matchin import MatchinGame
from repro.games.peekaboom import PeekaboomGame
from repro.games.squigl import SquiglGame
from repro.games.tagatune import TagATuneGame
from repro.games.verbosity import VerbosityGame
from repro.players.base import PlayerModel
from repro.sim.engine import SessionOutcome, SessionRunner


def _from_rounds(rounds: List[RoundResult], players,
                 gap_s: float = 2.0) -> SessionOutcome:
    contributions = []
    for result in rounds:
        contributions.extend(result.contributions)
    duration = sum(r.elapsed_s for r in rounds) + gap_s * len(rounds)
    return SessionOutcome(
        contributions=tuple(contributions), rounds=len(rounds),
        successes=sum(1 for r in rounds if r.succeeded),
        duration_s=duration, players=tuple(players))


def _esp_outcome(session) -> SessionOutcome:
    contributions = []
    for result in session.rounds:
        contributions.extend(result.contributions)
    return SessionOutcome(
        contributions=tuple(contributions),
        rounds=len(session.rounds), successes=session.successes,
        duration_s=session.duration_s,
        players=tuple(session.players))


def esp_session_runner(game: EspGame,
                       record: bool = False) -> SessionRunner:
    """Runner for ESP sessions (uses the game's own session clock).

    With ``record=True`` live guess streams are banked in the game's
    lobby, enabling the recorded-partner solo fallback
    (:func:`esp_solo_runner`).
    """

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        session = game.play_session_agents(
            game.make_agent(model_a), game.make_agent(model_b),
            start_s=start_s, record=record)
        return _esp_outcome(session)

    return run


def esp_solo_runner(game: EspGame):
    """Single-player fallback runner for :class:`Campaign`.

    Plays the lone visitor against a recorded partner from the game's
    lobby bank; raises (and the campaign drops the visitor) while the
    bank is still empty.
    """

    def run(model: PlayerModel, start_s: float) -> SessionOutcome:
        return _esp_outcome(
            game.play_single_session(model, start_s=start_s))

    return run


def peekaboom_session_runner(game: PeekaboomGame,
                             rounds: int = 6) -> SessionRunner:
    """Runner for Peekaboom matches of ``rounds`` alternating rounds."""

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        results = game.play_match(model_a, model_b, rounds=rounds,
                                  start_s=start_s)
        return _from_rounds(results,
                            (model_a.player_id, model_b.player_id))

    return run


def verbosity_session_runner(game: VerbosityGame,
                             rounds: int = 4) -> SessionRunner:
    """Runner for Verbosity matches."""

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        results = game.play_match(model_a, model_b, rounds=rounds,
                                  start_s=start_s)
        return _from_rounds(results,
                            (model_a.player_id, model_b.player_id))

    return run


def tagatune_session_runner(game: TagATuneGame,
                            rounds: int = 8) -> SessionRunner:
    """Runner for TagATune matches."""

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        results = game.play_match(model_a, model_b, rounds=rounds,
                                  start_s=start_s)
        return _from_rounds(results,
                            (model_a.player_id, model_b.player_id))

    return run


def matchin_session_runner(game: MatchinGame,
                           rounds: int = 20) -> SessionRunner:
    """Runner for Matchin matches."""

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        results = game.play_match(model_a, model_b, rounds=rounds,
                                  start_s=start_s)
        return _from_rounds(results,
                            (model_a.player_id, model_b.player_id),
                            gap_s=1.0)

    return run


def squigl_session_runner(game: SquiglGame,
                          rounds: int = 10) -> SessionRunner:
    """Runner for Squigl matches."""

    def run(model_a: PlayerModel, model_b: PlayerModel,
            start_s: float) -> SessionOutcome:
        results = game.play_match(model_a, model_b, rounds=rounds,
                                  start_s=start_s)
        return _from_rounds(results,
                            (model_a.player_id, model_b.player_id),
                            gap_s=1.0)

    return run
