"""The campaign loop.

A campaign pairs arriving players and hands each pair to a *session
runner* — a callable ``(model_a, model_b, start_s) -> SessionOutcome``
(see :mod:`repro.sim.adapters` for per-game runners).  Arrivals queue in
a waiting pool; a pair forms as soon as two players wait (random partner
choice denied, as in real GWAP matchmaking); a lone player who waits past
``max_wait_s`` is dropped unless the runner supports recorded partners.

Per-player lifetime budgets from the engagement model bound how many
sessions a player returns for, which is what makes throughput × ALP the
right decomposition of a campaign's total output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import time

from repro import rng as _rng
from repro.core.entities import Contribution
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.players.base import PlayerModel
from repro.players.engagement import EngagementModel
from repro.sim.arrivals import ArrivalProcess, DiurnalProfile


@dataclass(frozen=True)
class SessionOutcome:
    """Uniform result of one session, whatever the game.

    Attributes:
        contributions: contributions emitted by the session.
        rounds: rounds played.
        successes: rounds that reached agreement/completion.
        duration_s: session wall-clock length.
        players: participant ids.
    """

    contributions: Tuple[Contribution, ...]
    rounds: int
    successes: int
    duration_s: float
    players: Tuple[str, ...]


SessionRunner = Callable[[PlayerModel, PlayerModel, float], SessionOutcome]


@dataclass
class CampaignResult:
    """Everything a finished campaign produced.

    Attributes:
        outcomes: per-session outcomes, in start order.
        session_starts: campaign times sessions began.
        human_seconds: total player-time spent (2 players × duration).
        arrivals: visits generated.
        dropped: visitors who left unpaired.
    """

    outcomes: List[SessionOutcome] = field(default_factory=list)
    session_starts: List[float] = field(default_factory=list)
    human_seconds: float = 0.0
    arrivals: int = 0
    dropped: int = 0

    @property
    def contributions(self) -> List[Contribution]:
        out: List[Contribution] = []
        for outcome in self.outcomes:
            out.extend(outcome.contributions)
        return out

    @property
    def verified_contributions(self) -> List[Contribution]:
        return [c for c in self.contributions if c.verified]

    @property
    def total_rounds(self) -> int:
        return sum(o.rounds for o in self.outcomes)

    @property
    def total_successes(self) -> int:
        return sum(o.successes for o in self.outcomes)

    @property
    def human_hours(self) -> float:
        return self.human_seconds / 3600.0

    def throughput_per_hour(self, verified_only: bool = True) -> float:
        """Contributions per human-hour — the paper's throughput."""
        if self.human_hours <= 0:
            return 0.0
        count = (len(self.verified_contributions) if verified_only
                 else len(self.contributions))
        return count / self.human_hours


class Campaign:
    """Pairs arriving players and runs sessions.

    Args:
        population: the player pool visitors are drawn from.
        runner: the game's session runner.
        arrival_rate_per_hour: visit rate.
        engagement: lifetime-play model (None disables budgets).
        max_wait_s: how long a lone visitor waits before leaving.
        solo_runner: optional single-player fallback — called as
            ``solo_runner(model, start_s)`` for a visitor who waited
            past ``max_wait_s`` (the recorded-partner mode of the real
            games).  Without one, such visitors are dropped.
        profile: optional diurnal modulation of the arrival rate.
        seed: campaign RNG seed.
        registry: metrics registry the engine's counters/gauges land
            in (the process default if omitted).
        tracer: span tracer; each :meth:`run` is one ``sim.run`` root
            span with nested ``sim.session`` children (the process
            default if omitted).
    """

    def __init__(self, population: Sequence[PlayerModel],
                 runner: SessionRunner,
                 arrival_rate_per_hour: float = 120.0,
                 engagement: Optional[EngagementModel] = None,
                 max_wait_s: float = 60.0,
                 solo_runner: Optional[Callable[[PlayerModel, float],
                                               SessionOutcome]] = None,
                 profile: Optional[DiurnalProfile] = None,
                 seed: _rng.SeedLike = 0,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if not population:
            raise SimulationError("campaign needs a non-empty population")
        self.population = list(population)
        self.runner = runner
        self.engagement = engagement
        self.max_wait_s = max_wait_s
        self.solo_runner = solo_runner
        self._rng = _rng.make_rng(seed)
        self.arrivals = ArrivalProcess(
            arrival_rate_per_hour,
            profile=profile or DiurnalProfile(amplitude=0.0),
            seed=_rng.derive(self._rng, "arrivals"))
        self._budgets: Dict[str, float] = {}
        if engagement is not None:
            for model in self.population:
                self._budgets[model.player_id] = engagement.draw(
                    model).total_play_s
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self._m_arrivals = self.registry.counter(
            "sim.arrivals", "visitors generated by the arrival process")
        self._m_sessions = self.registry.counter(
            "sim.sessions", "sessions run, by paired/solo")
        self._m_rounds = self.registry.counter(
            "sim.rounds", "rounds played across all sessions")
        self._m_dropped = self.registry.counter(
            "sim.dropped", "visitors who left unpaired")
        self._m_tick = self.registry.histogram(
            "sim.tick_s", "wall-clock time per event-loop tick")
        self._m_rate = self.registry.gauge(
            "sim.rounds_per_campaign_second",
            "rounds per simulated second over the last run")

    def _visitor(self) -> Optional[PlayerModel]:
        """Draw a visitor with lifetime budget remaining."""
        candidates = self.population
        if self.engagement is not None:
            candidates = [m for m in self.population
                          if self._budgets.get(m.player_id, 0.0) > 0.0]
            if not candidates:
                return None
        return candidates[self._rng.randrange(len(candidates))]

    def run(self, duration_s: float) -> CampaignResult:
        """Simulate ``duration_s`` seconds of campaign time."""
        result = CampaignResult()
        with self.tracer.span("sim.run", duration_s=duration_s):
            self._run_loop(duration_s, result)
        if duration_s > 0:
            self._m_rate.set(result.total_rounds / duration_s)
        return result

    def _run_loop(self, duration_s: float,
                  result: CampaignResult) -> None:
        waiting: Optional[Tuple[PlayerModel, float]] = None
        for at_s in self.arrivals.times(duration_s):
            tick_start = time.perf_counter()
            try:
                visitor = self._visitor()
                if visitor is None:
                    break
                result.arrivals += 1
                self._m_arrivals.inc()
                if waiting is None:
                    waiting = (visitor, at_s)
                    continue
                partner, since = waiting
                if at_s - since > self.max_wait_s:
                    # The earlier visitor waited too long: fall back
                    # to a recorded-partner session when available,
                    # else drop.
                    self._seat_or_drop(partner, since, result)
                    waiting = (visitor, at_s)
                    continue
                if partner.player_id == visitor.player_id:
                    # Same player cannot self-pair; keep them waiting.
                    continue
                waiting = None
                with self.tracer.span("sim.session", mode="paired",
                                      at_s=at_s) as span:
                    outcome = self.runner(partner, visitor, at_s)
                    if span is not None:
                        span.attributes["rounds"] = outcome.rounds
                self._m_sessions.inc(mode="paired")
                self._m_rounds.inc(outcome.rounds)
                result.outcomes.append(outcome)
                result.session_starts.append(at_s)
                result.human_seconds += outcome.duration_s * len(
                    outcome.players)
                if self.engagement is not None:
                    for model in (partner, visitor):
                        self._budgets[model.player_id] = max(
                            0.0, self._budgets[model.player_id]
                            - outcome.duration_s)
            finally:
                self._m_tick.observe(time.perf_counter() - tick_start)
        if waiting is not None:
            self._seat_or_drop(waiting[0], waiting[1], result)

    def _seat_or_drop(self, model: PlayerModel, since_s: float,
                      result: CampaignResult) -> None:
        """Seat a lonely visitor against the solo fallback, or drop."""
        if self.solo_runner is None:
            result.dropped += 1
            self._m_dropped.inc()
            return
        try:
            with self.tracer.span("sim.session", mode="solo"):
                outcome = self.solo_runner(model,
                                           since_s + self.max_wait_s)
        except Exception:
            # A fallback with no recordings yet behaves like a drop.
            result.dropped += 1
            self._m_dropped.inc()
            return
        self._m_sessions.inc(mode="solo")
        self._m_rounds.inc(outcome.rounds)
        result.outcomes.append(outcome)
        result.session_starts.append(since_s + self.max_wait_s)
        # Only the live player's time counts as human time.
        result.human_seconds += outcome.duration_s
        if self.engagement is not None:
            self._budgets[model.player_id] = max(
                0.0, self._budgets.get(model.player_id, 0.0)
                - outcome.duration_s)
