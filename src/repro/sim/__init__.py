"""Campaign simulation: player arrivals, pairing, and long-run metrics.

Replaces the live web audience: a :class:`~repro.sim.arrivals.
ArrivalProcess` generates timestamped player visits (Poisson with a
diurnal profile), the :class:`~repro.sim.engine.Campaign` pairs arrivals
and plays sessions through any game adapter, and the result carries the
contribution stream the analytics package turns into the paper's
throughput/ALP/coverage numbers.

- :mod:`repro.sim.arrivals` — arrival processes.
- :mod:`repro.sim.engine` — the campaign loop and result records.
- :mod:`repro.sim.adapters` — uniform session adapters for every game.
"""

from repro.sim.arrivals import ArrivalProcess, DiurnalProfile
from repro.sim.engine import Campaign, CampaignResult, SessionOutcome
from repro.sim.platform_sim import Workforce, WorkforceResult
from repro.sim.adapters import (esp_session_runner, esp_solo_runner,
                                matchin_session_runner,
                                peekaboom_session_runner,
                                squigl_session_runner,
                                tagatune_session_runner,
                                verbosity_session_runner)

__all__ = [
    "ArrivalProcess", "DiurnalProfile",
    "Campaign", "CampaignResult", "SessionOutcome",
    "Workforce", "WorkforceResult",
    "esp_session_runner", "esp_solo_runner", "peekaboom_session_runner",
    "verbosity_session_runner", "tagatune_session_runner",
    "matchin_session_runner", "squigl_session_runner",
]
