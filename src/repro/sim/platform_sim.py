"""Worker simulation against the task platform.

The GWAP campaigns drive *games*; this module drives the *platform*: a
simulated workforce arrives over time, fetches tasks through the
platform API (in-process client or the real HTTP client — the interface
is shared), answers with realistic delays, and leaves when the job runs
dry.  It produces the platform-side timeline (answers over time, job
completion point) and works unchanged against a remote service.

Answer content is delegated to an ``answer_fn(model, payload, rng)`` so
workloads of any kind (labels, transcriptions, judgments) reuse the same
driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import rng as _rng
from repro.errors import SimulationError
from repro.players.base import PlayerModel
from repro.players.timing import ResponseTimer
from repro.sim.arrivals import ArrivalProcess

AnswerFn = Callable[[PlayerModel, Dict[str, Any], Any], Any]


@dataclass
class WorkforceResult:
    """What the simulated workforce did.

    Attributes:
        answers: total answers submitted.
        answer_times: submission timestamps (campaign seconds).
        workers_active: workers who submitted at least one answer.
        completed_at_s: campaign time the job completed (None if not).
    """

    answers: int = 0
    answer_times: List[float] = field(default_factory=list)
    workers_active: int = 0
    completed_at_s: Optional[float] = None


class Workforce:
    """Drives a platform job with simulated workers.

    Args:
        client: anything with the service-client verbs (``next_task``,
            ``submit_answer``, ``get_job``, ``register_worker``) — an
            :class:`~repro.service.client.InProcessClient`, an
            :class:`~repro.service.client.HttpClient`, or the
            :class:`~repro.platform.facade.Platform` wrapped in one.
        population: worker pool.
        answer_fn: produces a worker's answer for a task payload.
        arrival_rate_per_hour: worker visit rate.
        tasks_per_visit: how many tasks a visiting worker attempts
            (scaled by the worker's diligence).
        seed: RNG seed.
    """

    def __init__(self, client, population: Sequence[PlayerModel],
                 answer_fn: AnswerFn,
                 arrival_rate_per_hour: float = 60.0,
                 tasks_per_visit: int = 10,
                 seed: _rng.SeedLike = 0) -> None:
        if not population:
            raise SimulationError("workforce needs a population")
        if tasks_per_visit < 1:
            raise SimulationError(
                f"tasks_per_visit must be >= 1, got {tasks_per_visit}")
        self.client = client
        self.population = list(population)
        self.answer_fn = answer_fn
        self.tasks_per_visit = tasks_per_visit
        self._rng = _rng.make_rng(seed)
        self.arrivals = ArrivalProcess(
            arrival_rate_per_hour,
            seed=_rng.derive(self._rng, "arrivals"))
        self._registered: set = set()

    def _ensure_registered(self, model: PlayerModel) -> None:
        if model.player_id in self._registered:
            return
        try:
            self.client.register_worker(model.player_id)
        except Exception:
            # Already registered on the remote side (e.g. a resumed
            # campaign): identity is what matters, not the 409.
            pass
        self._registered.add(model.player_id)

    def run(self, job_id: str, duration_s: float) -> WorkforceResult:
        """Simulate ``duration_s`` seconds of workforce traffic."""
        result = WorkforceResult()
        active: set = set()
        for at_s in self.arrivals.times(duration_s):
            model = self.population[
                self._rng.randrange(len(self.population))]
            self._ensure_registered(model)
            timer = ResponseTimer(model, first_latency_s=4.0,
                                  gap_mean_s=8.0)
            visit_rng = _rng.derive(self._rng,
                                    f"visit:{model.player_id}:{at_s}")
            budget = max(1, int(round(
                self.tasks_per_visit * (0.4 + 0.6 * model.diligence))))
            clock = at_s + timer.first_latency(visit_rng)
            for _ in range(budget):
                if clock >= duration_s:
                    break
                task = self.client.next_task(job_id, model.player_id)
                if task is None:
                    break
                answer = self.answer_fn(model, task["payload"],
                                        visit_rng)
                self.client.submit_answer(task["task_id"],
                                          model.player_id, answer,
                                          at_s=clock)
                result.answers += 1
                result.answer_times.append(clock)
                active.add(model.player_id)
                if result.completed_at_s is None:
                    job = self.client.get_job(job_id)
                    progress = job.get("progress", {})
                    if progress.get("complete_frac") == 1.0:
                        result.completed_at_s = clock
                clock += timer.gap(visit_rng)
            if result.completed_at_s is not None:
                break
        result.workers_active = len(active)
        return result
