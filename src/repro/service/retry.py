"""Client-side resilience: retry policy and circuit breaker.

:class:`RetryPolicy` computes capped exponential backoff with optional
jitter, honoring server ``Retry-After`` advice.  :class:`CircuitBreaker`
implements the classic three-state machine (closed → open → half-open)
so a client stops hammering a service that is consistently failing and
probes it gently once the reset timeout elapses.

Both are wired into :class:`repro.service.client._BaseClient`; both
report state through :mod:`repro.obs` (``client.breaker_state`` and
``client.breaker_failures`` gauges, ``client.breaker_transitions``
counter).
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, default_registry


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with partial jitter.

    Attempt *k* (0-based) sleeps
    ``min(max_delay_s, base_delay_s * multiplier**k)``, scaled into
    ``[1 - jitter, 1]`` of itself uniformly at random, then raised to
    any server-advised ``Retry-After``.

    Attributes:
        max_attempts: total tries including the first (>= 1).
        base_delay_s: backoff before the first retry.
        max_delay_s: backoff ceiling.
        multiplier: exponential growth factor.
        jitter: randomized fraction of each delay, in [0, 1]
            (0 = deterministic backoff, handy in tests).
        respect_retry_after: honor ``Retry-After`` advice as a floor.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    respect_retry_after: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"jitter must be in [0,1], got {self.jitter}")

    def backoff_s(self, attempt: int,
                  rng: Optional[random.Random] = None,
                  retry_after_s: Optional[float] = None) -> float:
        """Sleep duration before retry number ``attempt + 1``."""
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** attempt)
        if self.jitter > 0 and rng is not None:
            delay *= (1.0 - self.jitter) + rng.random() * self.jitter
        if retry_after_s is not None and self.respect_retry_after:
            delay = max(delay, retry_after_s)
        return delay


class BreakerState(enum.Enum):
    """Circuit breaker states."""

    CLOSED = "closed"        # normal operation
    OPEN = "open"            # failing fast
    HALF_OPEN = "half_open"  # probing with limited traffic

    @property
    def gauge_value(self) -> int:
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


class CircuitBreaker:
    """Three-state circuit breaker.

    CLOSED counts consecutive failures; at ``failure_threshold`` it
    OPENs and :meth:`allow` returns False until ``reset_timeout_s``
    elapses, when it HALF-OPENs and admits one probe.  A successful
    probe CLOSEs the circuit; a failed one re-OPENs it.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout_s: how long to fail fast before probing.
        name: label for this breaker's metrics series.
        clock: monotonic time source (injectable for tests).
        registry: metrics registry (the process default if omitted).
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 5.0, name: str = "client",
                 clock: Callable[[], float] = time.monotonic,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, "
                f"got {failure_threshold}")
        if reset_timeout_s < 0:
            raise ConfigError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self._clock = clock
        self.registry = (registry if registry is not None
                         else default_registry())
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._m_state = self.registry.gauge(
            "client.breaker_state",
            "breaker state (0 closed, 1 half-open, 2 open), by breaker")
        self._m_transitions = self.registry.counter(
            "client.breaker_transitions",
            "breaker state changes, by breaker/to")
        self._m_failures = self.registry.gauge(
            "client.breaker_failures",
            "consecutive failures seen by the breaker, by breaker")
        self._m_state.set(0, breaker=self.name)
        self._m_failures.set(0, breaker=self.name)

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, state: BreakerState) -> None:
        """Move to ``state`` (lock held by caller)."""
        if state is self._state:
            return
        self._state = state
        self._m_state.set(state.gauge_value, breaker=self.name)
        self._m_transitions.inc(breaker=self.name, to=state.value)

    def _maybe_half_open(self) -> None:
        if (self._state is BreakerState.OPEN
                and self._clock() - self._opened_at
                >= self.reset_timeout_s):
            self._transition(BreakerState.HALF_OPEN)
            self._probing = False

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                if self._probing:
                    return False
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._m_failures.set(0, breaker=self.name)
            self._probing = False
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.HALF_OPEN:
                self._opened_at = self._clock()
                self._probing = False
                self._transition(BreakerState.OPEN)
                return
            self._failures += 1
            self._m_failures.set(self._failures, breaker=self.name)
            if (self._state is BreakerState.CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(BreakerState.OPEN)

    def remaining_open_s(self) -> float:
        """Seconds until the breaker will probe again (0 if not open)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            return max(0.0, self.reset_timeout_s
                       - (self._clock() - self._opened_at))
