"""Wire format: request/response envelopes and serializers.

Everything crossing the service boundary is a JSON document.  The
envelopes are transport-independent, so the same
:class:`~repro.service.api.ApiServer` serves the HTTP binding and the
in-process client identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.platform.jobs import Job, TaskRecord


@dataclass(frozen=True)
class ApiRequest:
    """A transport-independent request.

    Attributes:
        method: HTTP-style verb ("GET", "POST").
        path: resource path ("/jobs/job-0001/next").
        body: parsed JSON body (empty dict for bodyless requests).
        query: query parameters (single-valued).
        headers: request headers, lower-cased keys (used for content
            negotiation; empty for in-process callers).
    """

    method: str
    path: str
    body: Dict[str, Any] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ApiResponse:
    """A transport-independent response.

    Attributes:
        status: HTTP status code.
        body: JSON body (what in-process callers consume).
        text: when set, the HTTP binding sends this raw text instead
            of serializing ``body`` (Prometheus exposition).
        content_type: overrides the transport content type when
            ``text`` is set.
        headers: extra response headers (e.g. ``Retry-After`` on a
            load-shedding 503); the HTTP binding sends them verbatim
            and in-process clients read them off the envelope.
    """

    status: int
    body: Dict[str, Any] = field(default_factory=dict)
    text: Optional[str] = None
    content_type: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


def job_to_wire(job: Job, progress: Optional[Mapping[str, Any]] = None
                ) -> Dict[str, Any]:
    """Serialize a job (optionally with progress) for responses."""
    doc = job.to_dict()
    if progress is not None:
        doc["progress"] = dict(progress)
    return doc


def task_to_wire(task: TaskRecord,
                 include_answers: bool = False) -> Dict[str, Any]:
    """Serialize a task for responses.

    By default answers and the gold answer are withheld — workers must
    not see either.
    """
    doc = {"task_id": task.task_id, "job_id": task.job_id,
           "payload": task.payload}
    if include_answers:
        doc["answers"] = [a.to_dict() for a in task.answers]
        doc["gold_answer"] = task.gold_answer
    return doc


def error_body(message: str) -> Dict[str, Any]:
    return {"error": message}
