"""REST-style service layer over the platform.

The "Flask/Django service" of the repro band, built on the standard
library so it runs offline:

- :mod:`repro.service.wire` — request/response envelopes and JSON
  serializers for platform objects.
- :mod:`repro.service.api` — the router: method+path patterns dispatched
  to handlers over a :class:`~repro.platform.facade.Platform`.
- :mod:`repro.service.http` — binds the router to a stdlib
  ``ThreadingHTTPServer``.
- :mod:`repro.service.client` — :class:`InProcessClient` (direct router
  calls, for simulations) and :class:`HttpClient` (urllib, for the real
  server) with one shared interface.
"""

from repro.service.wire import ApiRequest, ApiResponse, task_to_wire
from repro.service.api import ApiServer
from repro.service.http import serve_in_thread
from repro.service.client import HttpClient, InProcessClient

__all__ = [
    "ApiRequest", "ApiResponse", "task_to_wire",
    "ApiServer",
    "serve_in_thread",
    "HttpClient", "InProcessClient",
]
