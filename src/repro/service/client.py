"""Service clients: in-process and HTTP, one interface.

Both clients expose the platform verbs as methods returning parsed
bodies; failures raise :class:`~repro.errors.ServiceError` carrying the
HTTP status.  Simulations use :class:`InProcessClient` (no sockets);
:class:`HttpClient` exercises the real wire path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import urlencode

from repro.errors import ServiceError
from repro.service.api import ApiServer
from repro.service.wire import ApiRequest


class _BaseClient:
    """Shared verb implementations over an abstract transport."""

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              query: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        raise NotImplementedError

    # -- verbs ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def create_job(self, name: str, redundancy: int = 3,
                   **meta: Any) -> Dict[str, Any]:
        return self._call("POST", "/jobs",
                          {"name": name, "redundancy": redundancy,
                           "meta": meta})

    def list_jobs(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/jobs")["jobs"]

    def get_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")

    def add_tasks(self, job_id: str,
                  tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._call("POST", f"/jobs/{job_id}/tasks",
                          {"tasks": tasks})["tasks"]

    def start_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/jobs/{job_id}/start", {})

    def register_worker(self, worker_id: str,
                        display_name: Optional[str] = None,
                        **attributes: Any) -> Dict[str, Any]:
        return self._call("POST", "/workers",
                          {"worker_id": worker_id,
                           "display_name": display_name,
                           "attributes": attributes})

    def next_task(self, job_id: str,
                  worker_id: str) -> Optional[Dict[str, Any]]:
        """The worker's next task, or None when none remain."""
        try:
            return self._call("GET", f"/jobs/{job_id}/next",
                              query={"worker": worker_id})
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def submit_answer(self, task_id: str, worker_id: str, answer: Any,
                      at_s: float = 0.0) -> Dict[str, Any]:
        return self._call("POST", f"/tasks/{task_id}/answers",
                          {"worker_id": worker_id, "answer": answer,
                           "at_s": at_s})

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}/results")["results"]

    def worker_stats(self, worker_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/workers/{worker_id}")

    def leaderboard(self, k: int = 10) -> List[Dict[str, Any]]:
        return self._call("GET", "/leaderboard",
                          query={"k": str(k)})["leaderboard"]


class InProcessClient(_BaseClient):
    """Calls the router directly — no sockets, no serialization cost
    beyond the JSON-shaped dicts themselves."""

    def __init__(self, api: ApiServer) -> None:
        self.api = api

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              query: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        response = self.api.handle(ApiRequest(
            method=method, path=path, body=body or {},
            query=query or {}))
        if not response.ok:
            raise ServiceError(
                response.body.get("error", "request failed"),
                status=response.status)
        return response.body


class HttpClient(_BaseClient):
    """Talks to a running HTTP server via urllib."""

    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              query: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None and method != "GET":
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urlrequest.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urlrequest.urlopen(request,
                                    timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceError(message, status=exc.code) from None
        except urlerror.URLError as exc:
            raise ServiceError(f"connection failed: {exc.reason}",
                               status=503) from None
