"""Service clients: in-process and HTTP, one interface.

Both clients expose the platform verbs as methods returning parsed
bodies; failures raise :class:`~repro.errors.ServiceError` carrying the
HTTP status.  Simulations use :class:`InProcessClient` (no sockets);
:class:`HttpClient` exercises the real wire path.

Both are resilient when given a :class:`~repro.service.retry.RetryPolicy`:
retryable failures (connection resets, 429/5xx — see
:func:`repro.errors.is_retryable`) are retried with exponential backoff
and jitter, a :class:`~repro.service.retry.CircuitBreaker` can fail fast
when the service is down, and every ``submit_answer`` carries an
idempotency key so an at-least-once retry can never double-count an
answer.  Per-attempt outcomes land in ``client.*`` metrics.

Every verb is traced: a ``client.<METHOD> <path>`` root span with one
``client.attempt`` child per try (tagged with the attempt number and
idempotency key), so retries show up as sibling children of one trace.
The attempt's identity rides to the server as a W3C ``traceparent``
header, which the :class:`~repro.service.api.ApiServer` continues —
one connected trace from the first client attempt down to the WAL
fsync that acknowledged it.
"""

from __future__ import annotations

import json
import time
from http import client as http_client
from typing import Any, Callable, Dict, List, Optional
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import urlencode

from repro import rng as _rng
from repro.errors import (CircuitOpenError, ServiceError,
                          TransientServiceError, is_retryable)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.service.api import ApiServer
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.wire import ApiRequest


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header value, if parseable."""
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class _BaseClient:
    """Shared verb implementations and retry loop over an abstract
    transport (:meth:`_send`).

    Args:
        retry_policy: enables retries when given (None = single-shot,
            the historical behavior).
        breaker: optional circuit breaker consulted before each
            attempt; trips on retryable failures only (4xx rejections
            mean the service is healthy).
        registry: metrics registry for the ``client.*`` series (the
            process default if omitted).
        tracer: span tracer for the verb/attempt spans (the process
            default if omitted).
        sleep: backoff sleep implementation (injectable for tests).
        seed: jitter RNG seed.
    """

    def __init__(self, retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 seed: _rng.SeedLike = 0) -> None:
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self._sleep = sleep
        self._rng = _rng.make_rng(seed)
        self._m_attempts = self.registry.counter(
            "client.attempts", "request attempts, by outcome")
        self._m_retries = self.registry.counter(
            "client.retries", "retries issued, by method")
        self._m_backoff = self.registry.histogram(
            "client.backoff_s", "backoff slept between attempts")

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        raise NotImplementedError

    def _trace_headers(self) -> Optional[Dict[str, str]]:
        """Outgoing headers carrying the current span's identity."""
        traceparent = self.tracer.current_traceparent()
        if traceparent is None:
            return None
        return {"traceparent": traceparent}

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              query: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        """One verb: a single attempt, or a retry loop under a policy.

        Traced as one ``client.<METHOD> <path>`` root with a
        ``client.attempt`` child per try — retries are sibling spans,
        each stamped with its attempt number (and the idempotency key
        when the body carries one), each propagated to the server via
        ``traceparent`` so the server's handler span links back to the
        exact attempt that reached it.
        """
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        idempotency_key = (body.get("idempotency_key")
                           if isinstance(body, dict) else None)
        with self.tracer.span(f"client.{method} {path}"):
            for attempt in range(attempts):
                if (self.breaker is not None
                        and not self.breaker.allow()):
                    self._m_attempts.inc(outcome="breaker_open")
                    raise CircuitOpenError(
                        retry_after_s=self.breaker.remaining_open_s())
                attempt_attrs: Dict[str, Any] = {"attempt": attempt}
                if idempotency_key is not None:
                    attempt_attrs["idempotency_key"] = idempotency_key
                try:
                    with self.tracer.span("client.attempt",
                                          **attempt_attrs):
                        result = self._send(
                            method, path, body, query,
                            headers=self._trace_headers())
                except ServiceError as exc:
                    retryable = is_retryable(exc)
                    if self.breaker is not None and retryable:
                        self.breaker.record_failure()
                    self._m_attempts.inc(
                        outcome="retryable" if retryable else "fatal")
                    if not retryable or attempt + 1 >= attempts:
                        raise
                    delay = policy.backoff_s(
                        attempt, rng=self._rng,
                        retry_after_s=exc.retry_after_s)
                    self._m_retries.inc(method=method)
                    self._m_backoff.observe(delay)
                    if delay > 0:
                        self._sleep(delay)
                    continue
                if self.breaker is not None:
                    self.breaker.record_success()
                self._m_attempts.inc(outcome="ok")
                return result
        raise AssertionError("unreachable: retry loop exited")

    # -- verbs ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def create_job(self, name: str, redundancy: int = 3,
                   **meta: Any) -> Dict[str, Any]:
        return self._call("POST", "/jobs",
                          {"name": name, "redundancy": redundancy,
                           "meta": meta})

    def list_jobs(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/jobs")["jobs"]

    def get_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")

    def add_tasks(self, job_id: str,
                  tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._call("POST", f"/jobs/{job_id}/tasks",
                          {"tasks": tasks})["tasks"]

    def start_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/jobs/{job_id}/start", {})

    def register_worker(self, worker_id: str,
                        display_name: Optional[str] = None,
                        **attributes: Any) -> Dict[str, Any]:
        return self._call("POST", "/workers",
                          {"worker_id": worker_id,
                           "display_name": display_name,
                           "attributes": attributes})

    def next_task(self, job_id: str,
                  worker_id: str) -> Optional[Dict[str, Any]]:
        """The worker's next task, or None when none remain."""
        try:
            return self._call("GET", f"/jobs/{job_id}/next",
                              query={"worker": worker_id})
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def submit_answer(self, task_id: str, worker_id: str, answer: Any,
                      at_s: float = 0.0,
                      idempotency_key: Optional[str] = None
                      ) -> Dict[str, Any]:
        """Submit an answer, safely retryable.

        A worker answers a task at most once, so ``task_id/worker_id``
        is a natural idempotency key: the platform treats a redelivery
        under the same key as the original submission and never
        double-counts.  Pass ``idempotency_key`` to override.
        """
        if idempotency_key is None:
            idempotency_key = f"{task_id}/{worker_id}"
        return self._call("POST", f"/tasks/{task_id}/answers",
                          {"worker_id": worker_id, "answer": answer,
                           "at_s": at_s,
                           "idempotency_key": idempotency_key})

    def batch_assign(self, job_id: str,
                     workers: List[str]) -> List[Dict[str, Any]]:
        """Next tasks for many workers of one job, one round-trip.

        Returns one ``{"worker_id", "task"}`` entry per worker;
        ``task`` is None when the job has nothing left for that
        worker.  The wire-amortized form of N ``next_task`` calls.
        """
        body = self._call("POST", "/tasks:batch-assign",
                          {"job_id": job_id,
                           "workers": list(workers)})
        return body["assignments"]

    def submit_answers(self, answers: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
        """Submit many answers in one round-trip, safely retryable.

        Each item needs ``task_id``, ``worker_id`` and ``answer``
        (``at_s`` and ``idempotency_key`` optional — the natural
        ``task_id/worker_id`` key is filled in, so an at-least-once
        redelivery of the whole batch can never double-count).
        Returns per-item result documents; a failed item carries its
        own ``status``/``error`` and does not fail the batch.
        """
        items = []
        for answer in answers:
            item = dict(answer)
            if item.get("task_id") and item.get("worker_id"):
                item.setdefault(
                    "idempotency_key",
                    f"{item['task_id']}/{item['worker_id']}")
            items.append(item)
        return self._call("POST", "/answers:batch",
                          {"answers": items})["results"]

    def disconnect_worker(self, worker_id: str) -> Dict[str, Any]:
        """Report a dead session; its task leases requeue immediately."""
        return self._call("POST", f"/workers/{worker_id}/disconnect",
                          {})

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}/results")["results"]

    def worker_stats(self, worker_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/workers/{worker_id}")

    def leaderboard(self, k: int = 10) -> List[Dict[str, Any]]:
        return self._call("GET", "/leaderboard",
                          query={"k": str(k)})["leaderboard"]

    def metrics(self) -> Dict[str, Any]:
        """The service's telemetry snapshot (JSON exposition)."""
        return self._call("GET", "/metrics")


class InProcessClient(_BaseClient):
    """Calls the router directly — no sockets, no serialization cost
    beyond the JSON-shaped dicts themselves."""

    def __init__(self, api: ApiServer, **resilience: Any) -> None:
        super().__init__(**resilience)
        self.api = api

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        response = self.api.handle(ApiRequest(
            method=method, path=path, body=body or {},
            query=query or {}, headers=headers or {}))
        if not response.ok:
            raise ServiceError(
                response.body.get("error", "request failed"),
                status=response.status,
                retry_after_s=_parse_retry_after(
                    response.headers.get("Retry-After")))
        return response.body


class HttpClient(_BaseClient):
    """Talks to a running HTTP server via urllib."""

    def __init__(self, base_url: str, timeout_s: float = 10.0,
                 **resilience: Any) -> None:
        super().__init__(**resilience)
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = None
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        if body is not None and method != "GET":
            data = json.dumps(body).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        request = urlrequest.Request(url, data=data,
                                     headers=send_headers,
                                     method=method)
        try:
            with urlrequest.urlopen(request,
                                    timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc))
            except Exception:
                message = str(exc)
            raise ServiceError(
                message, status=exc.code,
                retry_after_s=_parse_retry_after(
                    exc.headers.get("Retry-After"))) from None
        except urlerror.URLError as exc:
            raise TransientServiceError(
                f"connection failed: {exc.reason}") from None
        except (http_client.HTTPException, ConnectionError,
                TimeoutError) as exc:
            # Reset mid-response (RemoteDisconnected & friends): the
            # request may or may not have been applied — retryable, and
            # idempotency keys make the replay safe.
            raise TransientServiceError(
                f"connection failed: {exc}") from None
