"""Service clients: in-process and HTTP, one interface.

Both clients expose the platform verbs as methods returning parsed
bodies; failures raise :class:`~repro.errors.ServiceError` carrying the
HTTP status.  Simulations use :class:`InProcessClient` (no sockets);
:class:`HttpClient` exercises the real wire path.

Both are resilient when given a :class:`~repro.service.retry.RetryPolicy`:
retryable failures (connection resets, 429/5xx — see
:func:`repro.errors.is_retryable`) are retried with exponential backoff
and jitter, a :class:`~repro.service.retry.CircuitBreaker` can fail fast
when the service is down, and every ``submit_answer`` carries an
idempotency key so an at-least-once retry can never double-count an
answer.  Per-attempt outcomes land in ``client.*`` metrics.

Every verb is traced: a ``client.<METHOD> <path>`` root span with one
``client.attempt`` child per try (tagged with the attempt number and
idempotency key), so retries show up as sibling children of one trace.
The attempt's identity rides to the server as a W3C ``traceparent``
header, which the :class:`~repro.service.api.ApiServer` continues —
one connected trace from the first client attempt down to the WAL
fsync that acknowledged it.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro import rng as _rng
from repro.errors import (CircuitOpenError, DeadlineExceeded,
                          ServiceError, TransientServiceError,
                          is_retryable)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, default_tracer
from repro.service.api import ApiServer
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.wire import ApiRequest, ApiResponse


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header value, if parseable."""
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class _BaseClient:
    """Shared verb implementations and retry loop over an abstract
    transport (:meth:`_send`).

    Args:
        retry_policy: enables retries when given (None = single-shot,
            the historical behavior).
        breaker: optional circuit breaker consulted before each
            attempt; trips on retryable failures only (4xx rejections
            mean the service is healthy).
        registry: metrics registry for the ``client.*`` series (the
            process default if omitted).
        tracer: span tracer for the verb/attempt spans (the process
            default if omitted).
        sleep: backoff sleep implementation (injectable for tests).
        seed: jitter RNG seed.
    """

    def __init__(self, retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 seed: _rng.SeedLike = 0) -> None:
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self._sleep = sleep
        self._rng = _rng.make_rng(seed)
        self._m_attempts = self.registry.counter(
            "client.attempts", "request attempts, by outcome")
        self._m_retries = self.registry.counter(
            "client.retries", "retries issued, by method")
        self._m_backoff = self.registry.histogram(
            "client.backoff_s", "backoff slept between attempts")

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        raise NotImplementedError

    def _trace_headers(self) -> Optional[Dict[str, str]]:
        """Outgoing headers carrying the current span's identity."""
        traceparent = self.tracer.current_traceparent()
        if traceparent is None:
            return None
        return {"traceparent": traceparent}

    def _call(self, method: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              query: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        """One verb: a single attempt, or a retry loop under a policy.

        Traced as one ``client.<METHOD> <path>`` root with a
        ``client.attempt`` child per try — retries are sibling spans,
        each stamped with its attempt number (and the idempotency key
        when the body carries one), each propagated to the server via
        ``traceparent`` so the server's handler span links back to the
        exact attempt that reached it.
        """
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        idempotency_key = (body.get("idempotency_key")
                           if isinstance(body, dict) else None)
        with self.tracer.span(f"client.{method} {path}"):
            for attempt in range(attempts):
                if (self.breaker is not None
                        and not self.breaker.allow()):
                    self._m_attempts.inc(outcome="breaker_open")
                    raise CircuitOpenError(
                        retry_after_s=self.breaker.remaining_open_s())
                attempt_attrs: Dict[str, Any] = {"attempt": attempt}
                if idempotency_key is not None:
                    attempt_attrs["idempotency_key"] = idempotency_key
                try:
                    with self.tracer.span("client.attempt",
                                          **attempt_attrs):
                        result = self._send(
                            method, path, body, query,
                            headers=self._trace_headers())
                except ServiceError as exc:
                    retryable = is_retryable(exc)
                    if self.breaker is not None and retryable:
                        self.breaker.record_failure()
                    self._m_attempts.inc(
                        outcome="retryable" if retryable else "fatal")
                    if not retryable or attempt + 1 >= attempts:
                        raise
                    delay = policy.backoff_s(
                        attempt, rng=self._rng,
                        retry_after_s=exc.retry_after_s)
                    self._m_retries.inc(method=method)
                    self._m_backoff.observe(delay)
                    if delay > 0:
                        self._sleep(delay)
                    continue
                if self.breaker is not None:
                    self.breaker.record_success()
                self._m_attempts.inc(outcome="ok")
                return result
        raise AssertionError("unreachable: retry loop exited")

    # -- verbs ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def create_job(self, name: str, redundancy: int = 3,
                   **meta: Any) -> Dict[str, Any]:
        return self._call("POST", "/jobs",
                          {"name": name, "redundancy": redundancy,
                           "meta": meta})

    def list_jobs(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/jobs")["jobs"]

    def get_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")

    def add_tasks(self, job_id: str,
                  tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._call("POST", f"/jobs/{job_id}/tasks",
                          {"tasks": tasks})["tasks"]

    def start_job(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/jobs/{job_id}/start", {})

    def register_worker(self, worker_id: str,
                        display_name: Optional[str] = None,
                        **attributes: Any) -> Dict[str, Any]:
        return self._call("POST", "/workers",
                          {"worker_id": worker_id,
                           "display_name": display_name,
                           "attributes": attributes})

    def next_task(self, job_id: str,
                  worker_id: str) -> Optional[Dict[str, Any]]:
        """The worker's next task, or None when none remain."""
        try:
            return self._call("GET", f"/jobs/{job_id}/next",
                              query={"worker": worker_id})
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def submit_answer(self, task_id: str, worker_id: str, answer: Any,
                      at_s: float = 0.0,
                      idempotency_key: Optional[str] = None
                      ) -> Dict[str, Any]:
        """Submit an answer, safely retryable.

        A worker answers a task at most once, so ``task_id/worker_id``
        is a natural idempotency key: the platform treats a redelivery
        under the same key as the original submission and never
        double-counts.  Pass ``idempotency_key`` to override.
        """
        if idempotency_key is None:
            idempotency_key = f"{task_id}/{worker_id}"
        return self._call("POST", f"/tasks/{task_id}/answers",
                          {"worker_id": worker_id, "answer": answer,
                           "at_s": at_s,
                           "idempotency_key": idempotency_key})

    def batch_assign(self, job_id: str,
                     workers: List[str]) -> List[Dict[str, Any]]:
        """Next tasks for many workers of one job, one round-trip.

        Returns one ``{"worker_id", "task"}`` entry per worker;
        ``task`` is None when the job has nothing left for that
        worker.  The wire-amortized form of N ``next_task`` calls.
        """
        body = self._call("POST", "/tasks:batch-assign",
                          {"job_id": job_id,
                           "workers": list(workers)})
        return body["assignments"]

    def submit_answers(self, answers: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
        """Submit many answers in one round-trip, safely retryable.

        Each item needs ``task_id``, ``worker_id`` and ``answer``
        (``at_s`` and ``idempotency_key`` optional — the natural
        ``task_id/worker_id`` key is filled in, so an at-least-once
        redelivery of the whole batch can never double-count).
        Returns per-item result documents; a failed item carries its
        own ``status``/``error`` and does not fail the batch.
        """
        items = []
        for answer in answers:
            item = dict(answer)
            if item.get("task_id") and item.get("worker_id"):
                item.setdefault(
                    "idempotency_key",
                    f"{item['task_id']}/{item['worker_id']}")
            items.append(item)
        return self._call("POST", "/answers:batch",
                          {"answers": items})["results"]

    def disconnect_worker(self, worker_id: str) -> Dict[str, Any]:
        """Report a dead session; its task leases requeue immediately."""
        return self._call("POST", f"/workers/{worker_id}/disconnect",
                          {})

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}/results")["results"]

    def worker_stats(self, worker_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/workers/{worker_id}")

    def leaderboard(self, k: int = 10) -> List[Dict[str, Any]]:
        return self._call("GET", "/leaderboard",
                          query={"k": str(k)})["leaderboard"]

    def metrics(self) -> Dict[str, Any]:
        """The service's telemetry snapshot (JSON exposition)."""
        return self._call("GET", "/metrics")


class InProcessClient(_BaseClient):
    """Calls the router directly — no sockets, no serialization cost
    beyond the JSON-shaped dicts themselves."""

    def __init__(self, api: ApiServer, **resilience: Any) -> None:
        super().__init__(**resilience)
        self.api = api

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        response = self.api.handle(ApiRequest(
            method=method, path=path, body=body or {},
            query=query or {}, headers=headers or {}))
        if not response.ok:
            raise ServiceError(
                response.body.get("error", "request failed"),
                status=response.status,
                retry_after_s=_parse_retry_after(
                    response.headers.get("Retry-After")))
        return response.body


#: Query keys/values that need no percent-escaping skip urlencode —
#: the worker-loop hot path is all ids and labels.
_QS_SAFE = re.compile(r"[A-Za-z0-9_.~/-]*\Z")

#: The exact response head ``AsyncHttpServer`` renders on its hot
#: path: status line, JSON content type, a length, optionally a
#: final ``Connection: close``.  Anything else (extra headers such
#: as ``Retry-After``) takes the general parse.
_FAST_HEAD = re.compile(
    rb"HTTP/1\.1 (\d{3}) [^\r\n]*\r\n"
    rb"Content-Type: application/json\r\n"
    rb"Content-Length: (\d+)"
    rb"(\r\nConnection: close)?\Z")


class _PersistentConnection:
    """One keep-alive socket to the service, with a tiny HTTP/1.1
    response reader.

    The server always frames responses with ``Content-Length`` (it
    never chunks), so the reader is: status line, headers, exactly N
    body bytes.  ``responded_bytes`` distinguishes "the request never
    got an answer" (safe to transparently replay a GET on a stale
    connection) from "the answer was torn mid-flight".
    """

    __slots__ = ("sock", "requests_sent", "last_used",
                 "responded_bytes", "_buffer")

    def __init__(self, host: str, port: int, connect_timeout_s: float,
                 read_timeout_s: float) -> None:
        # Distinct deadlines: dialing a dead node must fail within the
        # connect budget, while a slow response gets the (usually
        # longer) read budget.  The socket timeout is switched to the
        # read deadline once connected.
        self.sock = socket.create_connection(
            (host, port), timeout=connect_timeout_s)
        self.sock.settimeout(read_timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP,
                             socket.TCP_NODELAY, 1)
        self.requests_sent = 0
        self.last_used = time.monotonic()
        self.responded_bytes = 0
        self._buffer = bytearray()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __del__(self) -> None:
        # A dropped client must not leak its pooled socket into a
        # ResourceWarning from the socket finalizer.
        if getattr(self, "sock", None) is not None:
            self.close()

    def roundtrip(self, blob: bytes
                  ) -> Tuple[int, Dict[str, str], bytes, bool]:
        """Send one request, read one response.

        Returns ``(status, headers, body, keep_alive)``.  Raises
        ``OSError``/``ConnectionError`` on transport failure.
        """
        self.requests_sent += 1
        self.responded_bytes = 0
        self.sock.sendall(blob)
        head = self._read_until_headers()
        self.last_used = time.monotonic()
        # Fast path: the exact head our own front door renders —
        # one C-level regex instead of a line loop + header dict.
        # Responses carrying any other header (Retry-After, another
        # content type, a proxy's extras) fall through to the
        # general parse.
        fast = _FAST_HEAD.match(head)
        if fast is not None:
            status = int(fast.group(1))
            length = int(fast.group(2))
            body = self._read_exactly(length) if length else b""
            return status, {}, body, fast.group(3) is None
        lines = head.split(b"\n")
        status_parts = lines[0].rstrip(b"\r").split(b" ", 2)
        if len(status_parts) < 2 or not status_parts[1].isdigit():
            raise ConnectionError("malformed status line")
        status = int(status_parts[1])
        headers: Dict[str, str] = {}
        for raw in lines[1:]:
            raw = raw.rstrip(b"\r")
            if not raw:
                continue
            name, _, value = raw.partition(b":")
            headers[name.decode("latin-1").strip().lower()] = \
                value.decode("latin-1").strip()
        length = int(headers.get("content-length", "0") or "0")
        body = self._read_exactly(length)
        keep_alive = "close" not in headers.get("connection",
                                                "").lower()
        return status, headers, body, keep_alive

    def _read_until_headers(self) -> bytes:
        while True:
            end = self._buffer.find(b"\r\n\r\n")
            if end != -1:
                head = bytes(self._buffer[:end])
                del self._buffer[:end + 4]
                return head
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "connection closed before response")
            self.responded_bytes += len(chunk)
            self._buffer.extend(chunk)

    def _read_exactly(self, length: int) -> bytes:
        while len(self._buffer) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "connection closed mid-response body")
            self.responded_bytes += len(chunk)
            self._buffer.extend(chunk)
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        return body


class HttpClient(_BaseClient):
    """Talks to a running HTTP server over persistent keep-alive
    connections (one per thread).

    Connection reuse is what makes the asyncio front door pay off
    from the client side: retries, idempotency keys and traceparent
    headers all ride the same socket instead of re-handshaking TCP
    per request.  A connection idle longer than ``reuse_idle_s`` is
    proactively replaced (the server's keep-alive timeout may have
    reaped it); a *stale* reused connection that dies before sending
    any response byte is transparently replayed once when the request
    is replay-safe: every GET, and any POST carrying an
    ``idempotency_key`` in its body (the platform's dedupe table
    absorbs a double delivery).  Unkeyed POSTs surface a retryable
    :class:`TransientServiceError` so the at-least-once decision
    stays with the retry policy.

    Deadlines are explicit: ``connect_timeout_s`` bounds the TCP dial
    and ``read_timeout_s`` bounds each socket read while waiting for
    a response (both default to ``timeout_s``).  A hung node
    therefore costs at most one deadline, surfaced as a retryable
    :class:`~repro.errors.DeadlineExceeded` — never a blocked client
    thread.
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0,
                 reuse_idle_s: float = 10.0,
                 connect_timeout_s: Optional[float] = None,
                 read_timeout_s: Optional[float] = None,
                 **resilience: Any) -> None:
        super().__init__(**resilience)
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.connect_timeout_s = (connect_timeout_s
                                  if connect_timeout_s is not None
                                  else timeout_s)
        self.read_timeout_s = (read_timeout_s
                               if read_timeout_s is not None
                               else timeout_s)
        self.reuse_idle_s = reuse_idle_s
        parts = urlsplit(self.base_url)
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or (443 if parts.scheme == "https"
                                    else 80)
        self._host_header = parts.netloc
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: List[_PersistentConnection] = []
        self._m_conns_opened = self.registry.counter(
            "client.http_connections_opened",
            "client-side sockets dialed")
        self._m_stale_retries = self.registry.counter(
            "client.http_stale_retries",
            "replay-safe requests (GETs and idempotency-keyed POSTs) "
            "transparently replayed on a stale keep-alive connection")
        self._m_deadlines = self.registry.counter(
            "client.http_deadlines",
            "client deadlines exceeded, by phase")

    # -- connection management -----------------------------------------

    def _connection(self) -> _PersistentConnection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            if (time.monotonic() - conn.last_used
                    <= self.reuse_idle_s):
                return conn
            self._discard(conn)
        try:
            conn = _PersistentConnection(self._host, self._port,
                                         self.connect_timeout_s,
                                         self.read_timeout_s)
        except socket.timeout:
            self._m_deadlines.inc(phase="connect")
            raise DeadlineExceeded(
                f"connect to {self._host}:{self._port} exceeded "
                f"{self.connect_timeout_s}s deadline",
                phase="connect",
                deadline_s=self.connect_timeout_s) from None
        self._m_conns_opened.inc()
        self._local.conn = conn
        with self._conns_lock:
            self._conns.append(conn)
        return conn

    def _discard(self, conn: _PersistentConnection) -> None:
        conn.close()
        if getattr(self._local, "conn", None) is conn:
            self._local.conn = None
        with self._conns_lock:
            try:
                self._conns.remove(conn)
            except ValueError:
                pass

    def close(self) -> None:
        """Close every pooled connection (all threads)."""
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        self._local.conn = None

    # -- the wire ------------------------------------------------------

    @staticmethod
    def _encode_request(method: str, target: str, host: str,
                        headers: Dict[str, str],
                        data: Optional[bytes]) -> bytes:
        head = f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
        for key, value in headers.items():
            head += f"{key}: {value}\r\n"
        if data is None:
            return (head + "\r\n").encode("latin-1")
        return (head + f"Content-Length: {len(data)}\r\n\r\n"
                ).encode("latin-1") + data

    def _roundtrip(self, method: str, path: str,
                   body: Optional[Dict[str, Any]],
                   query: Optional[Dict[str, str]],
                   headers: Optional[Dict[str, str]] = None
                   ) -> Tuple[int, Dict[str, str], bytes]:
        """One wire exchange: ``(status, headers, payload bytes)``.

        Handles connection pooling, deadlines and the stale-connection
        replay; translates transport failures to retryable errors but
        returns HTTP error statuses as values (the router proxies them
        verbatim; :meth:`_send` turns them into exceptions for the
        verb API).
        """
        target = path
        if query:
            if all(_QS_SAFE.match(f"{k}{v}") for k, v in
                   query.items()):
                target += "?" + "&".join(
                    f"{k}={v}" for k, v in query.items())
            else:
                target += "?" + urlencode(query)
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        data = None
        if body is not None and method != "GET":
            data = json.dumps(body, separators=(",", ":")).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        blob = self._encode_request(method, target,
                                    self._host_header,
                                    send_headers, data)
        # A GET is replay-safe by definition; a POST is replay-safe
        # exactly when it carries an idempotency key the platform's
        # dedupe table will absorb.
        replay_safe = (method == "GET"
                       or (isinstance(body, dict)
                           and bool(body.get("idempotency_key"))))
        try:
            conn = self._connection()
        except DeadlineExceeded:
            raise
        except OSError as exc:
            raise TransientServiceError(
                f"connection failed: {exc}") from None
        reused = conn.requests_sent > 0
        try:
            status, resp_headers, payload, keep = conn.roundtrip(blob)
        except socket.timeout:
            self._discard(conn)
            self._m_deadlines.inc(phase="read")
            raise DeadlineExceeded(
                f"{method} {path} exceeded {self.read_timeout_s}s "
                f"read deadline", phase="read",
                deadline_s=self.read_timeout_s) from None
        except (OSError, ConnectionError) as exc:
            responded = conn.responded_bytes
            self._discard(conn)
            if reused and responded == 0 and replay_safe:
                # The server reaped this keep-alive connection
                # between requests; a replay-safe request goes out
                # again on a fresh socket without involving the
                # retry policy.
                self._m_stale_retries.inc()
                return self._roundtrip(method, path, body, query,
                                       headers=headers)
            raise TransientServiceError(
                f"connection failed: {exc}") from None
        if not keep:
            self._discard(conn)
        return status, resp_headers, payload

    def forward(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                query: Optional[Dict[str, str]] = None,
                headers: Optional[Dict[str, str]] = None
                ) -> ApiResponse:
        """Proxy-style request: the response as a value, never raised.

        Unlike the verb API, HTTP error statuses come back as an
        :class:`~repro.service.wire.ApiResponse` (body parsed when it
        is JSON) so a router can relay a node's 404/409 verbatim.
        Transport failures still raise (``TransientServiceError`` /
        ``DeadlineExceeded``) — the caller owns failover policy.
        """
        status, resp_headers, payload = self._roundtrip(
            method, path, body, query, headers=headers)
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except Exception:
            parsed = {"error": f"HTTP {status}"} if status >= 400 \
                else {}
        if not isinstance(parsed, dict):
            parsed = {"value": parsed}
        extra = {}
        retry_after = resp_headers.get("retry-after")
        if retry_after is not None:
            extra["Retry-After"] = retry_after
        return ApiResponse(status, parsed, headers=extra)

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, Any]],
              query: Optional[Dict[str, str]],
              headers: Optional[Dict[str, str]] = None
              ) -> Dict[str, Any]:
        status, resp_headers, payload = self._roundtrip(
            method, path, body, query, headers=headers)
        if 200 <= status < 300:
            try:
                return json.loads(payload.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise TransientServiceError(
                    f"undecodable response body: {exc}") from None
        try:
            message = json.loads(payload.decode("utf-8")).get(
                "error", f"HTTP {status}")
        except Exception:
            message = f"HTTP {status}"
        raise ServiceError(
            message, status=status,
            retry_after_s=_parse_retry_after(
                resp_headers.get("retry-after")))
