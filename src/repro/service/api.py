"""The router: REST endpoints over a Platform.

Endpoints (all bodies and responses are JSON):

====== =============================== =======================================
Method Path                            Action
====== =============================== =======================================
GET    /health                         liveness probe
GET    /healthz                        readiness + durability status
POST   /jobs                           create job {name, redundancy?, meta?}
GET    /jobs                           list jobs
GET    /jobs/{job_id}                  job detail + progress
POST   /jobs/{job_id}/tasks            add task(s) {payload} or {tasks: [...]}
POST   /jobs/{job_id}/start            move job to RUNNING
GET    /jobs/{job_id}/next?worker=W    next task for worker (404 if none)
GET    /jobs/{job_id}/results          aggregated results
POST   /workers                        register {worker_id, display_name?}
GET    /workers/{worker_id}            worker stats
POST   /tasks/{task_id}/answers        submit {worker_id, answer, at_s?}
POST   /tasks:batch-assign             next tasks for many workers of one job
POST   /answers:batch                  submit many answers in one round-trip
GET    /leaderboard?k=10               top accounts
GET    /metrics?format=json|prometheus telemetry snapshot
GET    /dashboard                      live analytics: paper metrics, SLOs
GET    /debug/traces?format=jsonl      flight recorder: recent traces
GET    /debug/requests                 flight recorder: slow + errored
GET    /debug/locks                    lock wait/hold timings per stripe
GET    /debug/profile                  sampling profiler snapshot
====== =============================== =======================================

Tracing: every routed request runs inside a ``service.<METHOD>
<route>`` span.  When the request carries a W3C ``traceparent`` header
(see :mod:`repro.obs.propagation`) the span *continues* the caller's
trace — same trace id, parent link back to the client attempt that
sent it — so a retried request shows up as one tree spanning both
processes.  The observability plumbing itself (``/metrics``,
``/healthz``, ``/debug/*``) is deliberately untraced: reading the
flight recorder must not write to it.

Concurrency model: requests are serialized by **lock scope**, not by
one global mutex.  Each route declares what it touches:

- ``none`` — lock-free (``/health``, ``/metrics``; the registry is
  internally thread-safe).
- ``job`` — one stripe of a :class:`~repro.platform.sharding.LockStripes`
  array, keyed by the job id.  Two requests for the same job serialize;
  requests for different jobs (almost always) run on different stripes.
- ``task`` — the task's owning job is resolved first (a store read),
  then its job stripe is taken: an answer contends only with traffic
  for the same job.
- ``registry`` — the platform's short read-mostly ``registry_lock``
  for cross-job state (worker registration and stats, the leaderboard,
  job listing/creation, disconnect sweeps).
- ``item`` — batch routes: no outer lock; the handler takes the right
  stripe per item, so one wire round-trip can span many jobs without
  holding many stripes at once.

Lock ordering (see ``docs/architecture.md``): stripe → platform
registry lock → scheduler reservation lock → store shard lock, and
never backwards.  ``lock_mode="global"`` restores the seed's single
mutex for every scoped route — the baseline configuration the perf
regression harness measures against.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Tuple)

from repro.errors import (AccountError, JobNotFound, PlatformError,
                          ServiceError, TaskNotFound)
from repro.obs.exposition import (PROMETHEUS_CONTENT_TYPE, negotiate,
                                  render_json, render_prometheus)
from repro.obs.live import LiveAnalytics
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.propagation import parse_traceparent
from repro.obs.tracing import Tracer, default_tracer
from repro.platform.facade import Platform
from repro.platform.jobs import TaskState
from repro.platform.sharding import LockStripes
from repro.service.wire import (ApiRequest, ApiResponse, error_body,
                                job_to_wire, task_to_wire)

Handler = Callable[[ApiRequest, Dict[str, str]], ApiResponse]


def _snapshot_progress(snap) -> Dict[str, Any]:
    """Completion statistics computed from one immutable
    :class:`~repro.platform.store.JobSnapshot` (same document as
    :meth:`~repro.platform.scheduler.TaskScheduler.progress`)."""
    redundancy = snap.job.redundancy
    completed = sum(1 for task in snap.tasks
                    if task.state(redundancy) is TaskState.COMPLETED)
    answers = sum(len(task.answers) for task in snap.tasks)
    total = len(snap.tasks)
    return {"tasks": total, "completed": completed,
            "answers": answers,
            "complete_frac": completed / total if total else 1.0}

#: Upper bound on items accepted by one batch request — a wire-level
#: guard against a single request monopolizing the platform.
MAX_BATCH_ITEMS = 512

#: JSONL content type for the trace dump endpoint.
NDJSON_CONTENT_TYPE = "application/x-ndjson; charset=utf-8"

#: Routes that must not generate spans: they *read* the telemetry, and
#: tracing them would perturb the very buffers they serve (fetching
#: ``/debug/traces`` twice would otherwise never return the same set).
_UNTRACED_ROUTES = frozenset({
    "/metrics", "/healthz", "/dashboard", "/debug/traces",
    "/debug/requests", "/debug/locks", "/debug/profile"})

#: Plain-text content type for collapsed-stack profile dumps.
COLLAPSED_CONTENT_TYPE = "text/plain; charset=utf-8"

#: Canonical content type for the dashboard's deterministic JSON.
DASHBOARD_CONTENT_TYPE = "application/json; charset=utf-8"


class _TimedLock:
    """Hand-rolled timed-lock context manager.

    Two of these run per striped request; a plain object with
    ``__enter__``/``__exit__`` keeps that off the ``@contextmanager``
    generator machinery the T9 profile flagged.
    """

    __slots__ = ("_server", "_lock", "_stripe", "_trace_id",
                 "_acquired")

    def __init__(self, server: "ApiServer", lock,
                 stripe: str) -> None:
        self._server = server
        self._lock = lock
        self._stripe = stripe

    def __enter__(self) -> None:
        server = self._server
        self._trace_id = server.tracer.current_trace_id()
        wait_start = time.perf_counter()
        self._lock.acquire()
        self._acquired = time.perf_counter()
        server._lock_wait.observe(self._acquired - wait_start,
                                  exemplar=self._trace_id,
                                  stripe=self._stripe)
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._server._lock_held.observe(
            time.perf_counter() - self._acquired,
            exemplar=self._trace_id, stripe=self._stripe)
        self._lock.release()
        return False


class ApiServer:
    """Dispatches :class:`ApiRequest` s against a platform.

    Every request is counted into ``registry`` (per-route request
    counters, a latency histogram, lock wait/held timings) and traced
    as a ``service.<METHOD> <route>`` span; ``GET /metrics`` exposes
    the registry.

    Args:
        platform: the platform the routes operate on.
        registry: metrics registry (the process default if omitted).
        tracer: span tracer (the process default if omitted).
        faults: optional fault injector (defaults to the platform's, so
            one plan covers the whole stack); None = zero-overhead
            no-op.
        max_pending: load-shedding bound — platform requests beyond
            this many concurrently queued/executing are refused with a
            503 + ``Retry-After`` instead of piling onto the lock
            (None = never shed).
        shed_retry_after_s: backoff advertised on shed responses.
        lock_mode: ``"striped"`` (default) serializes requests per
            lock scope — per-job stripes plus the platform's registry
            lock (see the module docstring); ``"global"`` restores the
            seed's single mutex, the perf-regression baseline.
        n_stripes: stripe count for striped mode.
        live: the :class:`~repro.obs.live.LiveAnalytics` engine behind
            ``GET /dashboard``.  None (default) builds one on this
            server's registry; ``False`` disables live analytics
            entirely (the benchmark's consumer-off cell — the
            dashboard then answers 503).  The engine is also attached
            to the platform (unless it already has one), so platform
            verbs feed the same dashboard.
        snapshot_reads: serve the read routes (job listing/detail,
            task listing, results, low-confidence, leaderboard) from
            the store's copy-on-write versioned snapshots with lock
            scope ``none`` — heavy read traffic never queues on a
            stripe or the registry lock.  ``False`` restores the
            locked read paths (the golden-trace comparison baseline).
            Defaults to True; disabled automatically if the store
            lacks snapshot support.
        shard_range: ``(node_index, n_nodes)`` when this server is one
            node of a cluster; surfaced on ``GET /healthz`` so the
            router (and ``repro top``) can display which slice of the
            consistent-hash key space each node owns.  Defaults to
            the platform's own ``shard_range`` when it has one.
        profiler: optional (already started)
            :class:`~repro.obs.profiler.SamplingProfiler`; when set,
            ``GET /debug/profile`` serves its snapshot (503 without
            one).  The server never starts or stops it — lifecycle
            belongs to whoever booted the process.
    """

    def __init__(self, platform: Platform,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 faults=None,
                 max_pending: Optional[int] = None,
                 shed_retry_after_s: float = 1.0,
                 lock_mode: str = "striped",
                 n_stripes: int = 16,
                 live: Any = None,
                 snapshot_reads: bool = True,
                 shard_range: Optional[Tuple[int, int]] = None,
                 profiler=None) -> None:
        if lock_mode not in ("striped", "global"):
            raise PlatformError(
                f"lock_mode must be 'striped' or 'global', "
                f"got {lock_mode!r}")
        self.platform = platform
        self.snapshot_reads = bool(
            snapshot_reads
            and hasattr(platform.store, "snapshot_job"))
        self.registry = (registry if registry is not None
                         else default_registry())
        self.tracer = tracer if tracer is not None else default_tracer()
        self.faults = (faults if faults is not None
                       else getattr(platform, "faults", None))
        self.max_pending = max_pending
        self.shed_retry_after_s = shed_retry_after_s
        self.profiler = profiler
        self.shard_range = (shard_range if shard_range is not None
                            else getattr(platform, "shard_range",
                                         None))
        self.lock_mode = lock_mode
        self._routes: List[
            Tuple[str, str, re.Pattern, Handler, str]] = []
        # Global mode: every scoped request serializes here, exactly as
        # the seed did.  Striped mode: per-job stripes, with the
        # platform's registry_lock covering cross-job routes.
        self._lock = threading.Lock()
        self._stripes = LockStripes(n_stripes)
        # Metric label per stripe, interned once — formatting a label
        # string per request shows up on the T9 profile.
        self._stripe_labels = tuple(f"s{i:02d}"
                                    for i in range(len(self._stripes)))
        self._pending = 0
        self._pending_lock = threading.Lock()
        # Wall clock for "since when", monotonic for "how long":
        # NTP steps must not produce negative or jumping uptime.
        self._started_at = time.time()
        self._started_monotonic = time.monotonic()
        if live is False:
            self.live = None
        elif live is None:
            self.live = LiveAnalytics(registry=self.registry)
        else:
            self.live = live
        if (self.live is not None
                and getattr(platform, "live", None) is None):
            platform.live = self.live
        self._install_routes()
        self._requests = self.registry.counter(
            "service.requests",
            "requests handled, by route/method/status")
        self._latency = self.registry.histogram(
            "service.request_latency_s", "request latency, by route")
        self._errors = self.registry.counter(
            "service.errors", "unexpected 5xx failures, by layer")
        self._lock_wait = self.registry.histogram(
            "service.lock_wait_s",
            "time spent waiting for a service lock, by stripe")
        self._lock_held = self.registry.histogram(
            "service.lock_held_s",
            "time spent holding a service lock, by stripe")
        self._m_shed = self.registry.counter(
            "service.shed",
            "requests refused by load shedding, by route")

    def _route(self, method: str, pattern: str, handler: Handler,
               scope: str = "registry") -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method, pattern, regex, handler, scope))

    def _install_routes(self) -> None:
        # Health is deliberately a scoped route: it participates in
        # pending-request accounting, so load shedding and probe
        # latency reflect real platform queueing, as in the seed.
        self._route("GET", "/health", self._health)
        # The durability probe must answer even when the platform is
        # saturated (an operator checking WAL lag mid-incident), so it
        # is lock-free like /metrics.
        self._route("GET", "/healthz", self._healthz, scope="none")
        # Read routes: with snapshot_reads (the default) they serve
        # from copy-on-write versioned snapshots and the append-only
        # leaderboard stream with no lock at all — a read storm never
        # queues behind writers on a stripe or the registry lock.
        snap = self.snapshot_reads
        self._route("POST", "/jobs", self._create_job)
        self._route("GET", "/jobs", self._list_jobs,
                    scope="none" if snap else "registry")
        self._route("GET", "/jobs/{job_id}", self._get_job,
                    scope="none" if snap else "job")
        self._route("POST", "/jobs/{job_id}/tasks", self._add_tasks,
                    scope="job")
        self._route("GET", "/jobs/{job_id}/tasks", self._list_tasks,
                    scope="none" if snap else "job")
        self._route("POST", "/jobs/{job_id}/start", self._start_job,
                    scope="job")
        self._route("POST", "/jobs/{job_id}/archive",
                    self._archive_job, scope="job")
        self._route("GET", "/jobs/{job_id}/next", self._next_task,
                    scope="job")
        self._route("GET", "/jobs/{job_id}/results", self._results,
                    scope="none" if snap else "job")
        self._route("GET", "/jobs/{job_id}/low_confidence",
                    self._low_confidence,
                    scope="none" if snap else "job")
        self._route("GET", "/workers/flagged", self._flagged_workers)
        self._route("POST", "/workers", self._register_worker)
        self._route("POST", "/workers/{worker_id}/disconnect",
                    self._disconnect_worker)
        self._route("GET", "/workers/{worker_id}", self._worker_stats)
        self._route("POST", "/tasks/{task_id}/answers", self._answer,
                    scope="task")
        self._route("POST", "/tasks:batch-assign", self._batch_assign,
                    scope="job")
        self._route("POST", "/answers:batch", self._batch_answers,
                    scope="item")
        self._route("GET", "/leaderboard", self._leaderboard,
                    scope="none" if snap else "registry")
        # The metrics reader must not queue behind platform traffic:
        # the registry is internally thread-safe, so no lock.
        self._route("GET", "/metrics", self._metrics, scope="none")
        # The live dashboard is lock-free, untraced, and excluded from
        # live request accounting: reading telemetry must not write
        # it, so two consecutive fetches are byte-identical.
        self._route("GET", "/dashboard", self._dashboard,
                    scope="none")
        # Flight-recorder views: lock-free and untraced, so an
        # operator poking at a wedged service sees the buffers as they
        # are without adding to them.
        self._route("GET", "/debug/traces", self._debug_traces,
                    scope="none")
        self._route("GET", "/debug/requests", self._debug_requests,
                    scope="none")
        self._route("GET", "/debug/locks", self._debug_locks,
                    scope="none")
        # The sampling profiler's view: lock-free, untraced, and
        # deliberately NOT a front-door hot path — a profile fetch
        # should see the service working, not itself.
        self._route("GET", "/debug/profile", self._debug_profile,
                    scope="none")

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Route one request, translating errors to status codes."""
        started = time.perf_counter()
        try:
            response, route, trace_id = self._dispatch(request)
        except Exception:
            # A handler bug escaping dispatch must still land in every
            # request ledger — counter, latency and the live
            # availability SLO — as one 500, or the SLO can never see
            # the exact failures it exists to page on.  Re-raised so
            # the transport's last-resort contract (500 JSON body,
            # service.errors{layer="http"}) is unchanged.
            self._account(request, self._match_route(request), 500,
                          time.perf_counter() - started, None, started)
            raise
        self._account(request, route, response.status,
                      time.perf_counter() - started, trace_id, started)
        if response.status >= 500:
            self._errors.inc(layer="api")
        return response

    def _match_route(self, request: ApiRequest) -> str:
        """The route pattern a request resolves to, sans dispatch."""
        for method, pattern, regex, _handler, _scope in self._routes:
            if method == request.method and regex.match(request.path):
                return pattern
        return "<unmatched>"

    def _account(self, request: ApiRequest, route: str, status: int,
                 elapsed: float, trace_id: Optional[str],
                 started: float) -> None:
        """Feed one finished request to the counters and live engine."""
        self._requests.inc(route=route, method=request.method,
                           status=str(status))
        self._latency.observe(elapsed, exemplar=trace_id, route=route)
        live = self.live
        if (live is not None and route not in _UNTRACED_ROUTES
                and route != "<unmatched>"):
            live.observe_request(route, request.method, status,
                                 elapsed, at_s=started,
                                 trace_id=trace_id)

    def _lock_for(self, scope: str, request: ApiRequest,
                  params: Dict[str, str]):
        """(lock, stripe label) a request must hold; lock is None for
        lock-free scopes.

        Global mode maps every scope (including per-item batches) to
        the single mutex.  Striped mode resolves ``job`` scope to the
        job's stripe, ``task`` scope to the owning job's stripe (one
        store read — may raise :class:`TaskNotFound`, which dispatch
        translates to a 404), and ``registry`` scope to the platform's
        registry lock.  ``item`` scope returns None: the handler takes
        stripes itself, one item at a time.  The label keys the
        per-stripe wait/hold histograms.
        """
        if scope == "none":
            return None, ""
        if self.lock_mode == "global":
            return self._lock, "global"
        if scope == "registry":
            return self.platform.registry_lock, "registry"
        if scope == "job":
            key = params.get("job_id") or str(
                request.body.get("job_id", ""))
            index = self._stripes.index_of(key)
            return (self._stripes.for_index(index),
                    self._stripe_labels[index])
        if scope == "task":
            task = self.platform.store.get_task(params["task_id"])
            index = self._stripes.index_of(task.job_id)
            return (self._stripes.for_index(index),
                    self._stripe_labels[index])
        if scope == "item":
            return None, ""
        raise PlatformError(f"unknown lock scope: {scope!r}")

    def _timed_lock(self, lock, stripe: str = "global"
                    ) -> "_TimedLock":
        """Hold ``lock``, feeding the per-stripe wait/held histograms.

        The current trace id (when a span is open) rides along as a
        histogram exemplar, so a pathological lock wait in the metrics
        names the exact trace that suffered it.
        """
        return _TimedLock(self, lock, stripe)

    @contextmanager
    def _item_guard(self, job_id: str) -> Iterator[None]:
        """Per-item stripe for batch handlers.

        In striped mode this takes (and times) the job's stripe; in
        global mode the whole batch already runs under the global
        mutex, so this is a no-op.
        """
        if self.lock_mode == "global":
            yield
            return
        index = self._stripes.index_of(job_id)
        with self._timed_lock(self._stripes.for_index(index),
                              stripe=self._stripe_labels[index]):
            yield

    def _dispatch(self, request: ApiRequest
                  ) -> Tuple[ApiResponse, str, Optional[str]]:
        """(response, route pattern, trace id) for one request."""
        for method, pattern, regex, handler, scope in self._routes:
            if method != request.method:
                continue
            match = regex.match(request.path)
            if match is None:
                continue
            params = match.groupdict()
            site = "api." + handler.__name__.lstrip("_")
            if pattern in _UNTRACED_ROUTES:
                remote_cm = nullcontext()
                span_cm = nullcontext(None)
            else:
                ctx = parse_traceparent(
                    request.headers.get("traceparent"))
                remote_cm = self.tracer.continue_trace(ctx)
                span_cm = self.tracer.span(
                    f"service.{method} {pattern}")
            with remote_cm, span_cm as span:
                trace_id = span.trace_id if span is not None else None
                try:
                    if scope == "none":
                        return self._invoke(handler, request, params,
                                            site), pattern, trace_id
                    if self.max_pending is not None:
                        with self._pending_lock:
                            if self._pending >= self.max_pending:
                                shed = self._shed(pattern)
                                return shed, pattern, trace_id
                            self._pending += 1
                    try:
                        lock, stripe = self._lock_for(scope, request,
                                                      params)
                        if lock is None:
                            return self._invoke(
                                handler, request, params,
                                site), pattern, trace_id
                        with self._timed_lock(lock, stripe=stripe):
                            return self._invoke(
                                handler, request, params,
                                site), pattern, trace_id
                    finally:
                        if self.max_pending is not None:
                            with self._pending_lock:
                                self._pending -= 1
                except (JobNotFound, TaskNotFound) as exc:
                    return ApiResponse(
                        404, error_body(str(exc))), pattern, trace_id
                except AccountError as exc:
                    return ApiResponse(
                        409, error_body(str(exc))), pattern, trace_id
                except ServiceError as exc:
                    return ApiResponse(
                        exc.status, error_body(str(exc)),
                        headers=self._retry_after_headers(
                            exc.retry_after_s)), pattern, trace_id
                except PlatformError as exc:
                    return ApiResponse(
                        400, error_body(str(exc))), pattern, trace_id
        return ApiResponse(404, error_body(
            f"no route for {request.method} {request.path}"
        )), "<unmatched>", None

    @staticmethod
    def _retry_after_headers(retry_after_s: Optional[float]
                             ) -> Dict[str, str]:
        if retry_after_s is None:
            return {}
        return {"Retry-After": f"{retry_after_s:g}"}

    def _shed(self, pattern: str) -> ApiResponse:
        """Refuse one request: the platform queue is saturated."""
        self._m_shed.inc(route=pattern)
        return ApiResponse(
            503, error_body("overloaded: platform queue is full; "
                            "retry later"),
            headers={"Retry-After": f"{self.shed_retry_after_s:g}"})

    def _invoke(self, handler: Handler, request: ApiRequest,
                params: Dict[str, str], site: str) -> ApiResponse:
        """Run one handler, consulting the fault injector around it.

        With no injector this is a plain call.  Otherwise the injector
        may add latency, reject the request outright (transient or
        permanent), redeliver a POST (at-least-once duplicate — the
        platform's idempotency layer must absorb it), or drop the
        response after the handler ran (the caller sees a retryable
        503 and cannot tell the work happened).
        """
        faults = self.faults
        if faults is None:
            return handler(request, params)
        faults.sleep_latency(site)
        fault = faults.error(site)
        if fault is not None:
            raise fault
        response = handler(request, params)
        if request.method == "POST":
            if faults.duplicates(site):
                try:
                    handler(request, params)
                except (PlatformError, ServiceError):
                    pass  # a rejected redelivery is invisible upstream
            if faults.drops_response(site):
                return ApiResponse(
                    503,
                    error_body(f"injected: response lost at {site}"),
                    headers={"Retry-After": "0"})
        return response

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _health(self, request: ApiRequest,
                params: Dict[str, str]) -> ApiResponse:
        return ApiResponse(200, {"status": "ok"})

    def _healthz(self, request: ApiRequest,
                 params: Dict[str, str]) -> ApiResponse:
        """Readiness probe with durability status (whether a WAL is
        configured, its directory, newest sequence number, checkpoint
        backlog) plus observability vitals: uptime, sampling counters,
        and flight-recorder occupancy.

        Uptime is measured on the monotonic clock — an NTP step moves
        ``started_at`` (the wall-clock timestamp reported alongside)
        but can never make ``uptime_s`` negative or jump.  Each probe
        also scores the durability-lag SLO: readiness checks are the
        natural cadence for "is the WAL checkpoint keeping up?".
        """
        durability = self.platform.durability_status()
        if self.live is not None and durability.get("enabled"):
            self.live.observe_durability(
                time.perf_counter(),
                int(durability.get("records_since_checkpoint", 0)))
        return ApiResponse(200, {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started_monotonic,
            "started_at": self._started_at,
            "durability": durability,
            # Cluster probes read these three without digging into
            # the durability sub-document: the WAL high-water mark
            # (recovery progress after a restart), checkpoint
            # freshness, and which hash slice this node owns.
            "wal_seq": durability.get("seq"),
            "last_checkpoint_age_s": durability.get(
                "last_checkpoint_age_s"),
            "shard_range": (list(self.shard_range)
                            if self.shard_range is not None else None),
            "tracing": self.tracer.stats(),
            "recorder": self.tracer.recorder.occupancy()})

    def _dashboard(self, request: ApiRequest,
                   params: Dict[str, str]) -> ApiResponse:
        """The live ops dashboard: one deterministic JSON document.

        The canonical encoding (sorted keys) is sent verbatim over
        HTTP, so ``repro top --once --json`` printing the raw body is
        byte-identical to a curl of this endpoint.  The route neither
        traces nor feeds live analytics — a pure read of the engine's
        state, which is itself a pure function of events consumed.
        """
        if self.live is None:
            return ApiResponse(503, error_body(
                "live analytics disabled on this server"))
        # ?sketches=1: attach raw per-verb GK sketch state — the
        # mergeable form the cluster router's federation consumes.
        doc = self.live.snapshot(
            include_sketches=request.query.get("sketches") == "1")
        return ApiResponse(200, doc,
                           text=json.dumps(doc, sort_keys=True),
                           content_type=DASHBOARD_CONTENT_TYPE)

    def _debug_traces(self, request: ApiRequest,
                      params: Dict[str, str]) -> ApiResponse:
        """Recently completed traces from the flight recorder.

        ``?format=jsonl`` returns the canonical JSONL dump (one trace
        record per line, sorted keys) — byte-identical to what
        ``repro trace --jsonl`` prints for the same recorder state.
        ``?limit=N`` keeps only the newest N traces.  This route is
        deliberately untraced: reading telemetry must not write it.
        """
        recorder = self.tracer.recorder
        limit = self._debug_limit(request)
        if request.query.get("format", "").lower() == "jsonl":
            text = recorder.to_jsonl(limit=limit)
            if text:
                text += "\n"
            return ApiResponse(200, text=text,
                               content_type=NDJSON_CONTENT_TYPE)
        records = recorder.trace_records(limit=limit)
        return ApiResponse(200, {"traces": records,
                                 "occupancy": recorder.occupancy()})

    def _debug_requests(self, request: ApiRequest,
                        params: Dict[str, str]) -> ApiResponse:
        """Slow-request log and recent-errors buffer."""
        recorder = self.tracer.recorder
        limit = self._debug_limit(request)
        return ApiResponse(200, {
            "slow_threshold_s": recorder.slow_threshold_s,
            "slow_requests": recorder.slow_requests(limit=limit),
            "recent_errors": recorder.recent_errors(limit=limit),
            "occupancy": recorder.occupancy()})

    def _debug_profile(self, request: ApiRequest,
                       params: Dict[str, str]) -> ApiResponse:
        """The sampling profiler's snapshot (ring windows + lifetime
        stack counts).  ``?format=collapsed`` renders the lifetime
        counters as collapsed-stack text ready for ``flamegraph.pl``.
        Answers 503 when no profiler is attached (``repro serve
        --profile`` / ``--profile`` on a cluster node turns one on).
        """
        profiler = self.profiler
        if profiler is None:
            return ApiResponse(503, error_body(
                "profiler disabled on this server"))
        if request.query.get("format", "").lower() == "collapsed":
            return ApiResponse(200, text=profiler.collapsed(),
                               content_type=COLLAPSED_CONTENT_TYPE)
        return ApiResponse(200, profiler.snapshot())

    def _debug_locks(self, request: ApiRequest,
                     params: Dict[str, str]) -> ApiResponse:
        """Per-stripe lock and shard contention snapshots."""
        doc: Dict[str, Any] = {
            "lock_mode": self.lock_mode,
            "n_stripes": len(self._stripes),
        }
        for name in ("service.lock_wait_s", "service.lock_held_s",
                     "store.shard_wait_s", "store.shard_held_s"):
            metric = self.registry.get(name)
            if metric is not None:
                doc[name] = metric.snapshot()
        return ApiResponse(200, doc)

    @staticmethod
    def _debug_limit(request: ApiRequest) -> Optional[int]:
        """Parse ``?limit=N`` (newest N); garbage means no limit."""
        raw = request.query.get("limit")
        if raw is None:
            return None
        try:
            limit = int(raw)
        except (TypeError, ValueError):
            return None
        return limit if limit > 0 else None

    def shutdown(self) -> None:
        """Graceful shutdown: flush a final checkpoint so the next
        :meth:`~repro.platform.facade.Platform.recover` starts from a
        snapshot instead of a long WAL replay.  A no-op without a
        durability log — and crash-safe to skip, since every
        acknowledged operation is already in the WAL."""
        self.platform.checkpoint()
        if self.platform.durability is not None:
            self.platform.durability.close()

    def _create_job(self, request: ApiRequest,
                    params: Dict[str, str]) -> ApiResponse:
        body = request.body
        name = body.get("name")
        if not name:
            raise ServiceError("job needs a 'name'", status=422)
        job = self.platform.create_job(
            name=name, redundancy=int(body.get("redundancy", 3)),
            **body.get("meta", {}))
        return ApiResponse(201, job_to_wire(job))

    def _list_jobs(self, request: ApiRequest,
                   params: Dict[str, str]) -> ApiResponse:
        if self.snapshot_reads:
            jobs = [job_to_wire(snap.job)
                    for snap in self.platform.store.snapshot_jobs()]
        else:
            jobs = [job_to_wire(job)
                    for job in self.platform.store.jobs()]
        return ApiResponse(200, {"jobs": jobs})

    def _get_job(self, request: ApiRequest,
                 params: Dict[str, str]) -> ApiResponse:
        if self.snapshot_reads:
            snap = self.platform.store.snapshot_job(params["job_id"])
            return ApiResponse(200, job_to_wire(
                snap.job, _snapshot_progress(snap)))
        job = self.platform.store.get_job(params["job_id"])
        progress = self.platform.progress(job.job_id)
        return ApiResponse(200, job_to_wire(job, progress))

    def _add_tasks(self, request: ApiRequest,
                   params: Dict[str, str]) -> ApiResponse:
        body = request.body
        job_id = params["job_id"]
        if "tasks" in body:
            specs = body["tasks"]
        elif "payload" in body:
            specs = [body]
        else:
            raise ServiceError(
                "body needs 'payload' or 'tasks'", status=422)
        created = []
        for spec in specs:
            task = self.platform.add_task(
                job_id, spec.get("payload", {}),
                gold_answer=spec.get("gold_answer"))
            created.append(task_to_wire(task))
        return ApiResponse(201, {"tasks": created})

    def _list_tasks(self, request: ApiRequest,
                    params: Dict[str, str]) -> ApiResponse:
        """Admin view: paginated tasks with answers and gold.

        With snapshot reads the page comes from one immutable
        :class:`~repro.platform.store.JobSnapshot` — a consistent
        prefix of the job's commit order, served without locks even
        mid write-storm.
        """
        offset = max(0, int(request.query.get("offset", "0")))
        limit = min(500, max(1, int(request.query.get("limit", "50"))))
        if self.snapshot_reads:
            snap = self.platform.store.snapshot_job(params["job_id"])
            tasks: List[Any] = list(snap.tasks)
        else:
            job = self.platform.store.get_job(params["job_id"])
            tasks = self.platform.store.tasks_for(job.job_id)
        page = tasks[offset:offset + limit]
        return ApiResponse(200, {
            "total": len(tasks), "offset": offset, "limit": limit,
            "tasks": [task_to_wire(task, include_answers=True)
                      for task in page]})

    def _start_job(self, request: ApiRequest,
                   params: Dict[str, str]) -> ApiResponse:
        job = self.platform.start_job(params["job_id"])
        return ApiResponse(200, job_to_wire(job))

    def _archive_job(self, request: ApiRequest,
                     params: Dict[str, str]) -> ApiResponse:
        job = self.platform.archive_job(params["job_id"])
        return ApiResponse(200, job_to_wire(job))

    def _next_task(self, request: ApiRequest,
                   params: Dict[str, str]) -> ApiResponse:
        worker = request.query.get("worker")
        if not worker:
            raise ServiceError("missing 'worker' query parameter",
                               status=422)
        task = self.platform.request_task(params["job_id"], worker)
        if task is None:
            return ApiResponse(404, error_body(
                "no pending tasks for this worker"))
        return ApiResponse(200, task_to_wire(task))

    def _results(self, request: ApiRequest,
                 params: Dict[str, str]) -> ApiResponse:
        results = self.platform.results(params["job_id"])
        wire = {
            task_id: {"answer": result.answer,
                      "confidence": result.confidence,
                      "margin": result.margin}
            for task_id, result in results.items()}
        return ApiResponse(200, {"results": wire})

    def _low_confidence(self, request: ApiRequest,
                        params: Dict[str, str]) -> ApiResponse:
        min_margin = float(request.query.get("min_margin", "0.34"))
        tasks = self.platform.low_confidence_tasks(
            params["job_id"], min_margin=min_margin)
        return ApiResponse(200, {"tasks": tasks,
                                 "min_margin": min_margin})

    def _flagged_workers(self, request: ApiRequest,
                         params: Dict[str, str]) -> ApiResponse:
        return ApiResponse(200, {"flagged":
                                 self.platform.flagged_workers()})

    def _register_worker(self, request: ApiRequest,
                         params: Dict[str, str]) -> ApiResponse:
        body = request.body
        worker_id = body.get("worker_id")
        if not worker_id:
            raise ServiceError("worker needs a 'worker_id'", status=422)
        account = self.platform.register_worker(
            worker_id, body.get("display_name"),
            **body.get("attributes", {}))
        return ApiResponse(201, account.to_dict())

    def _worker_stats(self, request: ApiRequest,
                      params: Dict[str, str]) -> ApiResponse:
        stats = self.platform.worker_stats(params["worker_id"])
        return ApiResponse(200, stats)

    def _disconnect_worker(self, request: ApiRequest,
                           params: Dict[str, str]) -> ApiResponse:
        """A session died: requeue every task lease it held."""
        released = self.platform.worker_disconnected(
            params["worker_id"])
        return ApiResponse(200, {"worker_id": params["worker_id"],
                                 "requeued": released})

    def _answer(self, request: ApiRequest,
                params: Dict[str, str]) -> ApiResponse:
        body = request.body
        worker_id = body.get("worker_id")
        if not worker_id:
            raise ServiceError("answer needs a 'worker_id'", status=422)
        if "answer" not in body:
            raise ServiceError("answer needs an 'answer'", status=422)
        task = self.platform.submit_answer(
            params["task_id"], worker_id, body["answer"],
            at_s=float(body.get("at_s", 0.0)),
            idempotency_key=body.get("idempotency_key"))
        return ApiResponse(201, {"task_id": task.task_id,
                                 "answers": len(task.answers)})

    # ------------------------------------------------------------------
    # Batch endpoints — one wire round-trip, many operations
    # ------------------------------------------------------------------

    @staticmethod
    def _batch_items(body: Dict, field: str) -> List:
        items = body.get(field)
        if not isinstance(items, list) or not items:
            raise ServiceError(
                f"body needs a non-empty '{field}' list", status=422)
        if len(items) > MAX_BATCH_ITEMS:
            raise ServiceError(
                f"batch too large: {len(items)} > {MAX_BATCH_ITEMS}",
                status=422)
        return items

    def _batch_assign(self, request: ApiRequest,
                      params: Dict[str, str]) -> ApiResponse:
        """Assign next tasks to many workers of one job at once.

        Body: ``{"job_id": j, "workers": [w1, w2, ...]}``.  Response
        pairs every worker with their task (or ``null`` when the job
        has nothing left for them) — the wire-amortized form of N
        ``GET /jobs/{id}/next`` calls.  Runs under the job's stripe,
        so a batch is one serialized scheduling transaction.
        """
        body = request.body
        job_id = body.get("job_id")
        if not job_id:
            raise ServiceError("batch-assign needs a 'job_id'",
                               status=422)
        workers = self._batch_items(body, "workers")
        assignments = []
        for worker_id in workers:
            if not worker_id or not isinstance(worker_id, str):
                raise ServiceError(
                    "every worker id must be a non-empty string",
                    status=422)
            task = self.platform.request_task(job_id, worker_id)
            assignments.append(
                {"worker_id": worker_id,
                 "task": task_to_wire(task) if task is not None
                 else None})
        assigned = sum(1 for a in assignments
                       if a["task"] is not None)
        return ApiResponse(200, {"job_id": job_id,
                                 "assigned": assigned,
                                 "assignments": assignments})

    def _batch_answers(self, request: ApiRequest,
                       params: Dict[str, str]) -> ApiResponse:
        """Submit many answers in one round-trip, possibly across jobs.

        Body: ``{"answers": [{task_id, worker_id, answer, at_s?,
        idempotency_key?}, ...]}``.  Items are applied independently,
        each under its own job's stripe: one bad item yields a per-item
        error entry (mirroring the single-submit status code) without
        failing the rest, so a client can retry just the failures —
        and idempotency keys make those retries safe.
        """
        items = self._batch_items(request.body, "answers")
        results = []
        accepted = 0
        for item in items:
            outcome = self._apply_one_answer(item)
            if outcome.get("status") == 201:
                accepted += 1
            results.append(outcome)
        return ApiResponse(200, {"accepted": accepted,
                                 "results": results})

    def _apply_one_answer(self, item) -> Dict:
        """One batch answer item → its per-item result document."""
        if not isinstance(item, dict):
            return {"status": 422,
                    "error": "each answer must be an object"}
        task_id = item.get("task_id")
        worker_id = item.get("worker_id")
        if not task_id or not worker_id or "answer" not in item:
            return {"task_id": task_id, "status": 422,
                    "error": "answer items need 'task_id', "
                             "'worker_id' and 'answer'"}
        try:
            # Resolve the owning job outside any stripe (store reads
            # are shard-locked), then apply under that job's stripe.
            job_id = self.platform.store.get_task(task_id).job_id
            with self._item_guard(job_id):
                task = self.platform.submit_answer(
                    task_id, worker_id, item["answer"],
                    at_s=float(item.get("at_s", 0.0)),
                    idempotency_key=item.get("idempotency_key"))
            return {"task_id": task.task_id, "status": 201,
                    "answers": len(task.answers)}
        except (JobNotFound, TaskNotFound) as exc:
            return {"task_id": task_id, "status": 404,
                    "error": str(exc)}
        except AccountError as exc:
            return {"task_id": task_id, "status": 409,
                    "error": str(exc)}
        except ServiceError as exc:
            return {"task_id": task_id, "status": exc.status,
                    "error": str(exc)}
        except PlatformError as exc:
            return {"task_id": task_id, "status": 400,
                    "error": str(exc)}

    def _leaderboard(self, request: ApiRequest,
                     params: Dict[str, str]) -> ApiResponse:
        k = int(request.query.get("k", "10"))
        top = self.platform.leaderboard.all_time(k=k)
        return ApiResponse(200, {"leaderboard": [
            {"account_id": account_id, "points": points}
            for account_id, points in top]})

    def _metrics(self, request: ApiRequest,
                 params: Dict[str, str]) -> ApiResponse:
        """Telemetry snapshot; ``?format=`` / ``Accept`` negotiated."""
        fmt = negotiate(accept=request.headers.get("accept"),
                        fmt=request.query.get("format"))
        if fmt == "prometheus":
            return ApiResponse(200, {},
                               text=render_prometheus(self.registry),
                               content_type=PROMETHEUS_CONTENT_TYPE)
        return ApiResponse(200, render_json(self.registry))
