"""Stdlib HTTP binding for the API router.

Wraps an :class:`~repro.service.api.ApiServer` in a
``ThreadingHTTPServer``: JSON in, JSON out, threaded so a simulation and
its service can share a process.  :func:`serve_in_thread` is the
one-liner examples and tests use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.service.api import ApiServer
from repro.service.wire import ApiRequest


class _InjectedConnectionReset(Exception):
    """Internal: a fault rule asked for a wire-level connection reset."""


def _make_handler(api: ApiServer):
    class Handler(BaseHTTPRequestHandler):
        """Translates HTTP to ApiRequest and back."""

        # Quiet the default stderr access log.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        def _dispatch(self, method: str) -> None:
            # Anything unexpected must come back as a 500 JSON error,
            # never escape to BaseHTTPRequestHandler (which would dump
            # a stack trace down the connection and reset it).
            try:
                response = self._handle(method)
            except _InjectedConnectionReset:
                # Slam the connection shut with no response: the client
                # sees a reset and cannot tell whether the request ran.
                self.close_connection = True
                try:
                    self.connection.close()
                except OSError:
                    pass
                return
            except Exception:  # noqa: BLE001 - the last-resort handler
                api.registry.counter("service.errors").inc(layer="http")
                response = (500, {"error": "internal server error"},
                            None, None)
            self._respond(*response)

        def _handle(self, method: str):
            faults = api.faults
            if faults is not None:
                # Wire-level faults, before the request is even parsed:
                # injected network latency and connection resets.
                faults.sleep_latency("http.request")
                if faults.error("http.request") is not None:
                    raise _InjectedConnectionReset
            parts = urlsplit(self.path)
            query = dict(parse_qsl(parts.query))
            body = {}
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                raw = self.rfile.read(length)
                try:
                    body = json.loads(raw.decode("utf-8"))
                except json.JSONDecodeError:
                    return 400, {"error": "invalid JSON body"}, \
                        None, None, None
            headers = {key.lower(): value
                       for key, value in self.headers.items()}
            request = ApiRequest(method=method, path=parts.path,
                                 body=body, query=query,
                                 headers=headers)
            response = api.handle(request)
            return (response.status, response.body, response.text,
                    response.content_type, response.headers)

        def _respond(self, status: int, body: dict,
                     text: str = None, content_type: str = None,
                     extra_headers: dict = None) -> None:
            if text is not None:
                payload = text.encode("utf-8")
                ctype = content_type or "text/plain; charset=utf-8"
            else:
                payload = json.dumps(body).encode("utf-8")
                ctype = content_type or "application/json"
            try:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                for key, value in (extra_headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-response; nothing to salvage.
                pass

        def do_GET(self) -> None:  # noqa: N802
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

    return Handler


def serve_in_thread(api: ApiServer, host: str = "127.0.0.1",
                    port: int = 0
                    ) -> Tuple[ThreadingHTTPServer, threading.Thread, str]:
    """Start the API on a daemon thread.

    Args:
        api: the router to serve.
        host: bind address.
        port: bind port (0 picks a free one).

    Returns:
        (server, thread, base_url).  Call ``server.shutdown()`` when
        done.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(api))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
    return server, thread, base_url
