"""Asyncio HTTP/1.1 front door for the API router.

The transport that turned out to matter: the seed's stdlib
``ThreadingHTTPServer`` paid a fresh TCP connection and a full
request-line/header re-parse per request, which erased the striped
core's in-process win the moment traffic crossed a socket (see
``BENCH_service.json`` before this module existed: ~3.4x in-process,
~1.0x over HTTP).  This module replaces it with a selector event-loop
server built from three pieces:

- :class:`HttpRequestParser` — an incremental, sans-IO HTTP/1.1
  request parser.  Bytes in, :class:`ParsedRequest` /
  :class:`ParseError` values out; it never raises on wire input, no
  matter how the chunks are torn.  Malformed input becomes a typed
  error the connection answers with 400/413/431/501 and a close.
- :class:`_HttpProtocol` — one per connection: persistent keep-alive,
  pipelined requests answered strictly in order, bounded read/write
  buffers with slow-client timeouts (a slowloris dribbling header
  bytes is shed with a 408; a stalled reader that never drains its
  responses is aborted), half-close tolerance, and the wire-level
  chaos hooks (injected latency via ``asyncio.sleep`` so one faulted
  connection never stalls the loop; injected errors as hard resets,
  exactly like the seed transport).
- :class:`AsyncHttpServer` — the front object: one or more event-loop
  *workers* (``SO_REUSEPORT`` sockets, kernel-balanced accepts),
  handlers dispatched to a small thread pool so the synchronous
  ``ApiServer``/``Platform`` stack runs unchanged, a pre-serialized
  hot-response cache for the observability endpoints, and a graceful
  shutdown that drains in-flight keep-alive connections before the
  owner flushes its durability checkpoint.

:func:`serve_in_thread` keeps its historical signature — the
one-liner the examples, tests and benchmarks use — but now returns an
:class:`AsyncHttpServer`.

Concurrency notes: everything inside a worker (parser state,
per-connection queues, timers) is touched only from that worker's
loop thread, so none of it is locked.  The ``ApiServer`` itself is
thread-safe (that is the point of its lock scopes), so many workers
and the executor threads can call ``api.handle`` concurrently.
"""

from __future__ import annotations

import asyncio
import json
import re
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import (Any, Callable, Dict, List, Optional, Tuple,
                    Union)
from urllib.parse import parse_qsl

from repro.errors import PlatformError
from repro.service.api import ApiServer
from repro.service.wire import ApiRequest

__all__ = ["HttpRequestParser", "ParsedRequest", "ParseError",
           "AsyncHttpServer", "serve_in_thread"]


# ----------------------------------------------------------------------
# The incremental parser (sans-IO: bytes in, values out, never raises)
# ----------------------------------------------------------------------

#: RFC 7230 token characters, valid in methods and header names.
_TOKEN_RE = re.compile(rb"[!#$%&'*+\-.^_`|~0-9A-Za-z]+\Z")

#: Query strings with no percent-escapes, ``+``-spaces or exotic
#: separators take a split-based fast path; anything else falls back
#: to ``parse_qsl``.
_PLAIN_QS = re.compile(r"[^%+;#]*\Z")

#: Supported protocol versions; anything else is a 400.
_VERSIONS = (b"HTTP/1.1", b"HTTP/1.0")


class ParsedRequest:
    """One complete request off the wire.

    Attributes:
        method: the request method, upper-cased ASCII.
        target: the raw request target (path + optional query).
        version: ``"HTTP/1.1"`` or ``"HTTP/1.0"``.
        headers: lower-cased header name -> value.
        body: the raw body bytes (may be empty).
        keep_alive: whether the connection survives this exchange
            (version default, overridden by ``Connection``).
    """

    __slots__ = ("method", "target", "version", "headers", "body",
                 "keep_alive")

    def __init__(self, method: str, target: str, version: str,
                 headers: Dict[str, str], body: bytes,
                 keep_alive: bool) -> None:
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParsedRequest({self.method} {self.target} "
                f"{self.version}, {len(self.body)}B body)")


class ParseError:
    """A wire-level protocol violation, as a value (never an exception).

    Attributes:
        status: the HTTP status the connection should answer with
            before closing (400 bad syntax, 413 oversized body,
            431 oversized header section, 501 unsupported framing).
        message: human-readable detail for the JSON error body.
    """

    __slots__ = ("status", "message")

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParseError({self.status}, {self.message!r})"


#: Parser states.
_S_HEADERS = 0
_S_BODY = 1
_S_FAILED = 2
_S_CHUNK_SIZE = 3
_S_CHUNK_DATA = 4
_S_CHUNK_TRAILERS = 5

#: A chunk-size field: 1-16 hex digits, nothing else.  ``int(_, 16)``
#: alone would admit signs and underscores.
_CHUNK_SIZE_RE = re.compile(rb"[0-9A-Fa-f]{1,16}\Z")


class HttpRequestParser:
    """Incremental HTTP/1.1 request parser.

    Feed it bytes as they arrive — in any chunking, torn anywhere —
    and it emits complete :class:`ParsedRequest` values plus at most
    one terminal :class:`ParseError`.  The contract the fuzz suite
    pins down:

    - :meth:`feed` **never raises**, whatever the input;
    - every protocol violation is a single :class:`ParseError` after
      which the parser is dead (subsequent feeds return nothing);
    - pipelined requests in one chunk all come out, in order.

    Bodies arrive either with a ``Content-Length`` or as
    ``Transfer-Encoding: chunked`` (decoded here; the handler sees the
    reassembled body and never the chunk framing).  Any other transfer
    coding is a 501; a request carrying both framings is a 400, per
    RFC 7230's request-smuggling rule.

    Args:
        max_header_bytes: cap on the request line + header section
            (and on a chunked body's trailer section); exceeding it
            yields a 431.
        max_body_bytes: cap on ``Content-Length`` or on the decoded
            length of a chunked body; exceeding it yields a 413.
    """

    def __init__(self, max_header_bytes: int = 32 * 1024,
                 max_body_bytes: int = 8 * 1024 * 1024) -> None:
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        self._state = _S_HEADERS
        self._pending: Optional[ParsedRequest] = None
        self._body_remaining = 0
        self._chunk_body = bytearray()
        self._chunk_remaining = 0

    @property
    def failed(self) -> bool:
        """True once a :class:`ParseError` has been emitted."""
        return self._state == _S_FAILED

    def has_partial(self) -> bool:
        """True when a request has started arriving but is not
        complete — the state a read (slowloris) timeout applies to."""
        if self._state in (_S_BODY, _S_CHUNK_SIZE, _S_CHUNK_DATA,
                           _S_CHUNK_TRAILERS):
            return True
        return self._state == _S_HEADERS and len(self._buffer) > 0

    def feed(self, data: bytes
             ) -> List[Union[ParsedRequest, ParseError]]:
        """Consume ``data``; return every event it completes."""
        if self._state == _S_FAILED:
            return []
        self._buffer.extend(data)
        events: List[Union[ParsedRequest, ParseError]] = []
        while True:
            if self._state == _S_HEADERS:
                event = self._try_headers()
            elif self._state == _S_BODY:
                event = self._try_body()
            else:
                event = self._try_chunked()
            if event is None:
                break
            events.append(event)
            if isinstance(event, ParseError):
                self._state = _S_FAILED
                self._buffer.clear()
                break
            if not self._buffer:
                break
        return events

    # -- header section ------------------------------------------------

    def _find_header_end(self) -> Tuple[int, int]:
        """(index, terminator length) of the header terminator, or
        (-1, 0).  Accepts CRLFCRLF and bare LFLF framing."""
        crlf = self._buffer.find(b"\r\n\r\n")
        lf = self._buffer.find(b"\n\n")
        if crlf == -1 and lf == -1:
            return -1, 0
        if crlf == -1:
            return lf, 2
        if lf == -1 or crlf <= lf:
            return crlf, 4
        return lf, 2

    def _try_headers(self
                     ) -> Optional[Union[ParsedRequest, ParseError]]:
        end, skip = self._find_header_end()
        if end == -1:
            if len(self._buffer) > self.max_header_bytes:
                return ParseError(
                    431, "request header section too large")
            return None
        if end > self.max_header_bytes:
            return ParseError(431, "request header section too large")
        block = bytes(self._buffer[:end])
        del self._buffer[:end + skip]
        lines = block.split(b"\n")
        request_line = lines[0].rstrip(b"\r")
        parsed = self._parse_request_line(request_line)
        if isinstance(parsed, ParseError):
            return parsed
        method, target, version = parsed
        headers: Dict[str, str] = {}
        for raw in lines[1:]:
            raw = raw.rstrip(b"\r")
            if not raw:
                continue
            cached = _HEADER_LINES.get(raw)
            if cached is not None:
                # Only fully validated lines are ever inserted, so a
                # hit skips the whole parse (keep-alive connections
                # repeat Host / Content-Type verbatim every request).
                key, text = cached
                if key in headers:
                    if key == "content-length" \
                            and headers[key] != text:
                        return ParseError(
                            400, "conflicting Content-Length headers")
                    headers[key] = headers[key] + ", " + text
                else:
                    headers[key] = text
                continue
            if raw[:1] in (b" ", b"\t"):
                return ParseError(
                    400, "obsolete header line folding")
            name, sep, value = raw.partition(b":")
            if not sep:
                return ParseError(400, "malformed header line")
            key = _HEADER_NAMES.get(name)
            if key is None:
                if not name or not _is_token(name):
                    return ParseError(400, "malformed header line")
                key = name.decode("ascii").lower()
                if len(_HEADER_NAMES) < 1024:
                    _HEADER_NAMES[name] = key
            text = value.strip().decode("latin-1")
            if len(_HEADER_LINES) < 1024:
                _HEADER_LINES[raw] = (key, text)
            if key in headers:
                if key == "content-length" and headers[key] != text:
                    return ParseError(
                        400, "conflicting Content-Length headers")
                headers[key] = headers[key] + ", " + text
            else:
                headers[key] = text
        chunked = False
        encoding = headers.get("transfer-encoding")
        if encoding is not None:
            if encoding.strip().lower() != "chunked":
                return ParseError(
                    501, "unsupported Transfer-Encoding")
            if "content-length" in headers:
                # Two framings on one message is the classic request
                # smuggling vector; RFC 7230 §3.3.3 says reject.
                return ParseError(
                    400,
                    "Transfer-Encoding with Content-Length")
            chunked = True
        length_text = headers.get("content-length", "0") or "0"
        # A previously merged duplicate like "5, 5" was already
        # rejected above unless the copies agreed; take the first.
        length_text = length_text.split(",")[0].strip()
        if not length_text.isdigit():
            return ParseError(400, "invalid Content-Length")
        length = int(length_text)
        if length > self.max_body_bytes:
            return ParseError(413, "request body too large")
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = "close" not in connection
        else:
            keep_alive = "keep-alive" in connection
        request = ParsedRequest(method, target, version, headers,
                                b"", keep_alive)
        if chunked:
            self._pending = request
            self._chunk_body = bytearray()
            self._chunk_remaining = 0
            self._state = _S_CHUNK_SIZE
            return self._try_chunked()
        if length == 0:
            return request
        self._pending = request
        self._body_remaining = length
        self._state = _S_BODY
        return self._try_body()

    @staticmethod
    def _parse_request_line(line: bytes
                            ) -> Union[Tuple[str, str, str],
                                       ParseError]:
        parts = line.split(b" ")
        if len(parts) != 3:
            return ParseError(400, "malformed request line")
        method, target, version = parts
        if not method or not _is_token(method):
            return ParseError(400, "invalid method")
        if version not in _VERSIONS:
            return ParseError(400, "unsupported protocol version")
        if not target or not (target.startswith(b"/")
                              or target == b"*"):
            return ParseError(400, "invalid request target")
        try:
            return (method.decode("ascii").upper(),
                    target.decode("latin-1"),
                    version.decode("ascii"))
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return ParseError(400, "undecodable request line")

    # -- body ----------------------------------------------------------

    def _try_body(self) -> Optional[ParsedRequest]:
        if len(self._buffer) < self._body_remaining:
            return None
        request = self._pending
        assert request is not None
        request.body = bytes(self._buffer[:self._body_remaining])
        del self._buffer[:self._body_remaining]
        self._pending = None
        self._body_remaining = 0
        self._state = _S_HEADERS
        return request

    def _try_chunked(self
                     ) -> Optional[Union[ParsedRequest, ParseError]]:
        """Advance the chunked-body machine as far as the buffer
        allows: size line -> data+CRLF (repeat) -> trailers."""
        while True:
            if self._state == _S_CHUNK_SIZE:
                index = self._buffer.find(b"\n")
                if index == -1:
                    # A size line is a few hex digits plus optional
                    # extensions; anything growing past the header
                    # cap is an attack, not a slow sender.
                    if len(self._buffer) > self.max_header_bytes:
                        return ParseError(400, "malformed chunk size")
                    return None
                line = bytes(self._buffer[:index]).rstrip(b"\r")
                del self._buffer[:index + 1]
                size_field = line.split(b";", 1)[0].strip()
                if not _CHUNK_SIZE_RE.match(size_field):
                    return ParseError(400, "malformed chunk size")
                size = int(size_field, 16)
                if len(self._chunk_body) + size > self.max_body_bytes:
                    return ParseError(413, "request body too large")
                if size == 0:
                    self._state = _S_CHUNK_TRAILERS
                    continue
                self._chunk_remaining = size
                self._state = _S_CHUNK_DATA
                continue
            if self._state == _S_CHUNK_DATA:
                if self._chunk_remaining:
                    take = min(len(self._buffer),
                               self._chunk_remaining)
                    self._chunk_body += self._buffer[:take]
                    del self._buffer[:take]
                    self._chunk_remaining -= take
                    if self._chunk_remaining:
                        return None
                # The chunk's own terminator, distinct from the next
                # size line's; a torn CR waits for its LF.
                if self._buffer[:2] == b"\r\n":
                    del self._buffer[:2]
                elif self._buffer[:1] == b"\n":
                    del self._buffer[:1]
                elif not self._buffer or self._buffer == b"\r":
                    return None
                else:
                    return ParseError(
                        400, "malformed chunk terminator")
                self._state = _S_CHUNK_SIZE
                continue
            # _S_CHUNK_TRAILERS: discard trailer fields up to the
            # blank line that ends the message.
            index = self._buffer.find(b"\n")
            if index == -1:
                if len(self._buffer) > self.max_header_bytes:
                    return ParseError(
                        431, "trailer section too large")
                return None
            line = bytes(self._buffer[:index]).rstrip(b"\r")
            del self._buffer[:index + 1]
            if line:
                continue
            request = self._pending
            assert request is not None
            request.body = bytes(self._chunk_body)
            self._chunk_body = bytearray()
            self._pending = None
            self._state = _S_HEADERS
            return request


def _is_token(raw: bytes) -> bool:
    return _TOKEN_RE.match(raw) is not None


#: Validated header names seen so far, raw bytes -> lowered str.
#: Names repeat heavily on a live connection (Host, Content-Type,
#: traceparent, ...), so this skips the token check + decode + lower
#: on every request after the first.  Bounded; garbage names are
#: rejected before insertion so an attacker cannot grow it.
_HEADER_NAMES: Dict[bytes, str] = {}

#: Fully validated header lines, raw bytes -> (key, value).  A
#: keep-alive connection resends most header lines byte-identically
#: (Host, Content-Type, ...); a hit skips parsing entirely.  Bounded:
#: once full (e.g. with unique per-request ``traceparent`` lines) it
#: simply stops growing, keeping the early hot entries.
_HEADER_LINES: Dict[bytes, Tuple[str, str]] = {}


# ----------------------------------------------------------------------
# Response rendering (runs on the offload pool, or inline)
# ----------------------------------------------------------------------

def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


#: Interned status-line + Content-Type prefixes, keyed by
#: (status, content_type) — the cardinality is a handful of statuses
#: times a couple of content types, and formatting them per response
#: shows up at loopback rates.
_HEAD_PREFIXES: Dict[Tuple[int, str], bytes] = {}


def _render_head(status: int, content_type: str, length: int,
                 extra: Optional[Dict[str, str]]) -> bytes:
    """The status line + headers, *without* a ``Connection`` header or
    the terminating blank line — the connection appends those, so one
    rendered (and cached) head serves both keep-alive and close."""
    prefix = _HEAD_PREFIXES.get((status, content_type))
    if prefix is None:
        prefix = (f"HTTP/1.1 {status} {_reason(status)}\r\n"
                  f"Content-Type: {content_type}\r\n"
                  f"Content-Length: ").encode("latin-1")
        _HEAD_PREFIXES[(status, content_type)] = prefix
    head = prefix + b"%d\r\n" % length
    if extra:
        for key, value in extra.items():
            head += f"{key}: {value}\r\n".encode("latin-1")
    return head


def _render_error(status: int, message: str) -> Tuple[bytes, bytes]:
    payload = json.dumps({"error": message}).encode("utf-8")
    return (_render_head(status, "application/json", len(payload),
                         None), payload)


def _render_response(api: ApiServer, parsed: ParsedRequest
                     ) -> Tuple[int, bytes, bytes]:
    """Run one parsed request through the router.

    Returns ``(status, head, payload)`` where ``head`` lacks the
    ``Connection`` header and terminator (see :func:`_render_head`).
    Anything unexpected comes back as a 500 JSON error, never an
    exception — the transport's last-resort contract, unchanged from
    the seed server.
    """
    try:
        path, _, query_string = parsed.target.partition("?")
        if not query_string:
            query: Dict[str, str] = {}
        elif _PLAIN_QS.match(query_string):
            query = dict(pair.split("=", 1)
                         for pair in query_string.split("&")
                         if "=" in pair)
        else:
            query = dict(parse_qsl(query_string))
        body: Dict[str, Any] = {}
        if parsed.body:
            try:
                body = json.loads(parsed.body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                head, payload = _render_error(400, "invalid JSON body")
                return 400, head, payload
        request = ApiRequest(method=parsed.method, path=path,
                             body=body, query=query,
                             headers=parsed.headers)
        response = api.handle(request)
        if response.text is not None:
            payload = response.text.encode("utf-8")
            ctype = (response.content_type
                     or "text/plain; charset=utf-8")
        else:
            payload = json.dumps(response.body,
                                  separators=(",", ":")).encode("utf-8")
            ctype = response.content_type or "application/json"
        head = _render_head(response.status, ctype, len(payload),
                            response.headers or None)
        return response.status, head, payload
    except Exception:  # noqa: BLE001 - the last-resort handler
        api.registry.counter("service.errors").inc(layer="http")
        head, payload = _render_error(500, "internal server error")
        return 500, head, payload


# ----------------------------------------------------------------------
# The per-connection protocol
# ----------------------------------------------------------------------

class _HttpProtocol(asyncio.Protocol):
    """One keep-alive connection on a worker's event loop.

    All state here is loop-thread-local.  Pipelined requests are
    queued and answered strictly in order by a single per-connection
    task; reading pauses past ``max_pipeline`` queued requests, so a
    flooding client is bounded by (pipeline depth x body cap).
    """

    def __init__(self, worker: "_Worker") -> None:
        self._worker = worker
        self._server = worker.server
        self._parser = HttpRequestParser(
            max_header_bytes=worker.server.max_header_bytes,
            max_body_bytes=worker.server.max_body_bytes)
        self._queue: deque = deque()
        self._task: Optional[asyncio.Task] = None
        self._transport: Optional[asyncio.Transport] = None
        self._writable: Optional[asyncio.Event] = None
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False
        self._draining = False
        self._eof = False
        self._requests_served = 0
        self._request_started: Optional[float] = None
        self._idle_since = time.monotonic()
        self._write_paused_at: Optional[float] = None
        self._error_sent = False
        self._error_blob: Optional[bytes] = None
        # Byte counters batch per connection (flushed on the timer
        # tick and at close): two registry locks per request is
        # measurable at loopback rates.
        self._bytes_read = 0
        self._bytes_written = 0

    # -- transport callbacks -------------------------------------------

    def connection_made(self, transport) -> None:
        self._transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
                if self._server.socket_sndbuf is not None:
                    sock.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_SNDBUF,
                                    self._server.socket_sndbuf)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        if self._server.write_buffer_limit is not None:
            transport.set_write_buffer_limits(
                high=self._server.write_buffer_limit)
        self._writable = asyncio.Event()
        self._writable.set()
        self._worker.connections.add(self)
        server = self._server
        server.m_conns.inc()
        server.m_opened.inc()
        if server.trace_transport:
            with server.api.tracer.span("http.accept"):
                pass
        self._arm_timer()

    def connection_lost(self, exc) -> None:
        self._closed = True
        self._flush_byte_counters()
        self._worker.connections.discard(self)
        self._server.m_conns.dec()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._writable is not None:
            self._writable.set()  # wake any stalled writer; it will
            # observe _closed and bail out.
        if self._task is not None:
            # Nothing left to answer into; the task sees _closed at
            # its next write and exits.
            self._queue.clear()

    def _flush_byte_counters(self) -> None:
        if self._bytes_read:
            self._server.m_bytes_read.inc(self._bytes_read)
            self._bytes_read = 0
        if self._bytes_written:
            self._server.m_bytes_written.inc(self._bytes_written)
            self._bytes_written = 0

    def data_received(self, data: bytes) -> None:
        server = self._server
        self._bytes_read += len(data)
        if self._parser.failed or self._closed:
            return
        if self._request_started is None and data:
            self._request_started = time.monotonic()
        if server.trace_transport:
            with server.api.tracer.span("http.parse",
                                        n_bytes=len(data)):
                events = self._parser.feed(data)
        else:
            events = self._parser.feed(data)
        for event in events:
            if isinstance(event, ParseError):
                server.m_parse_errors.inc(status=str(event.status))
                self._answer_error_and_close(event)
                return
            if self._requests_served or self._queue:
                server.m_keepalive.inc()
            self._queue.append(event)
        if not self._parser.has_partial():
            self._request_started = None
        if (len(self._queue) >= self._server.max_pipeline
                and self._transport is not None):
            try:
                self._transport.pause_reading()
            except RuntimeError:  # pragma: no cover - already closed
                pass
        if not self._queue or self._task is not None:
            return
        if (len(self._queue) == 1 and server.executor is None
                and server.api.faults is None
                and self._error_blob is None
                and not self._draining
                and self._writable is not None
                and self._writable.is_set()):
            # The hot shape — one complete request, nothing queued,
            # nothing async to wait for — skips the dispatcher task
            # entirely (task churn is measurable at loopback rates).
            self._handle_sync(self._queue.popleft())
            return
        self._task = self._worker.loop.create_task(
            self._process())

    def eof_received(self) -> Optional[bool]:
        """Client half-closed its sending side.

        With responses still owed, keep the transport open so they
        flush (``True``); a mid-request EOF orphans the partial
        request, which is simply dropped.  Idle: close.
        """
        self._eof = True
        if self._queue or self._task is not None:
            return True
        return False

    def pause_writing(self) -> None:
        self._write_paused_at = time.monotonic()
        if self._writable is not None:
            self._writable.clear()

    def resume_writing(self) -> None:
        self._write_paused_at = None
        if self._writable is not None:
            self._writable.set()

    # -- the serial dispatcher -----------------------------------------

    async def _process(self) -> None:
        try:
            while self._queue and not self._closed:
                request = self._queue.popleft()
                if (len(self._queue) < self._server.max_pipeline
                        and self._transport is not None
                        and not self._closed):
                    try:
                        self._transport.resume_reading()
                    except RuntimeError:  # pragma: no cover
                        pass
                keep = await self._handle_one(request)
                if not keep:
                    self._close()
                    return
            if self._closed:
                return
            if self._error_blob is not None:
                await self._write(self._error_blob)
                self._close()
                return
            if self._draining or self._eof:
                self._close()
                return
            self._idle_since = time.monotonic()
        finally:
            self._task = None

    def _handle_sync(self, request: ParsedRequest) -> None:
        """The task-free fast path: render and write on the loop.

        Only taken when nothing can force an await — inline offload,
        no fault hooks, write buffer open — so ordering and
        backpressure semantics are identical to :meth:`_process`.
        """
        server = self._server
        hot = server.hot_cache_get(request)
        if hot is not None:
            status, head, payload = hot
        else:
            status, head, payload = _render_response(
                server.api, request)
            server.hot_cache_put(request, status, head, payload)
        close = not request.keep_alive or self._eof
        if self._closed or self._transport is None:
            return
        blob = b"".join((
            head,
            b"Connection: close\r\n\r\n" if close else b"\r\n",
            payload))
        self._transport.write(blob)
        self._bytes_written += len(blob)
        self._requests_served += 1
        if close:
            self._close()
        else:
            self._idle_since = time.monotonic()

    async def _handle_one(self, request: ParsedRequest) -> bool:
        """Answer one request; returns False to close afterwards."""
        server = self._server
        faults = server.api.faults
        if faults is not None:
            # Wire-level chaos, before the handler sees anything:
            # latency awaits (other connections keep flowing), an
            # injected error slams the connection shut with no
            # response — the client cannot tell whether the request
            # ran, exactly the seed transport's reset semantics.
            latency = faults.latency("http.request")
            if latency > 0:
                await asyncio.sleep(latency)
            if faults.error("http.request") is not None:
                self._abort()
                return False
        hot = server.hot_cache_get(request)
        if hot is not None:
            status, head, payload = hot
        else:
            if server.executor is not None:
                status, head, payload = \
                    await self._worker.loop.run_in_executor(
                        server.executor, _render_response,
                        server.api, request)
            else:
                status, head, payload = _render_response(
                    server.api, request)
            server.hot_cache_put(request, status, head, payload)
        # Computed at write time so a drain that began mid-handler is
        # seen; while draining, queued pipelined requests are still
        # all answered — only the last one carries the close.
        close = (not request.keep_alive
                 or (self._draining and not self._queue))
        blob = b"".join((
            head,
            b"Connection: close\r\n\r\n" if close else b"\r\n",
            payload))
        if not await self._write(blob):
            return False
        self._requests_served += 1
        return not close

    async def _write(self, blob: bytes) -> bool:
        """Write with backpressure; False when the connection died."""
        writable = self._writable
        if writable is not None and not writable.is_set():
            await writable.wait()
        if self._closed or self._transport is None:
            return False
        self._transport.write(blob)
        self._bytes_written += len(blob)
        return True

    # -- error / close paths -------------------------------------------

    def _answer_error_and_close(self, error: ParseError) -> None:
        """Queue the 400/413/431/501 answer and close.

        Pipelined requests that parsed *before* the violation are
        still answered, in order; the error response always goes out
        last, then the connection closes.  The dispatcher task picks
        the blob up after the queue drains.
        """
        if self._error_sent:
            return
        self._error_sent = True
        head, payload = _render_error(error.status, error.message)
        self._error_blob = head + b"Connection: close\r\n\r\n" + payload
        if self._task is None:
            self._task = self._worker.loop.create_task(
                self._process())

    def begin_drain(self) -> None:
        """Graceful shutdown: finish what is queued, then close."""
        self._draining = True
        if self._task is None and not self._queue:
            self._close()

    def _close(self) -> None:
        if self._closed or self._transport is None:
            return
        self._closed = True
        try:
            self._transport.close()
        except RuntimeError:  # pragma: no cover - already gone
            pass

    def _abort(self) -> None:
        """Hard reset: no FIN handshake, no lingering close."""
        self._closed = True
        if self._transport is not None:
            try:
                self._transport.abort()
            except RuntimeError:  # pragma: no cover - already gone
                pass

    # -- timeouts ------------------------------------------------------

    def _arm_timer(self) -> None:
        self._timer = self._worker.loop.call_later(
            self._server.timeout_tick_s, self._on_tick)

    def _on_tick(self) -> None:
        if self._closed:
            return
        self._flush_byte_counters()
        now = time.monotonic()
        server = self._server
        stalled = self._write_paused_at
        if (stalled is not None
                and now - stalled > server.write_timeout_s):
            # A reader that stopped draining its responses: shed it
            # so its buffered bytes stop pinning memory.
            server.m_timeouts.inc(kind="write")
            self._abort()
            return
        if (self._request_started is not None
                and now - self._request_started
                > server.read_timeout_s
                and self._task is None and not self._queue):
            # Slowloris: the request began but never completed.  408
            # tells a well-meaning slow client to retry; the close
            # frees the connection either way.
            server.m_timeouts.inc(kind="read")
            head, payload = _render_error(
                408, "request timed out waiting for bytes")
            if self._transport is not None:
                blob = head + b"Connection: close\r\n\r\n" + payload
                self._transport.write(blob)
                self._bytes_written += len(blob)
            self._close()
            return
        if (self._task is None and not self._queue
                and self._request_started is None
                and now - self._idle_since
                > server.keep_alive_timeout_s):
            self._close()
            return
        self._arm_timer()


# ----------------------------------------------------------------------
# Workers and the server front object
# ----------------------------------------------------------------------

class _Worker:
    """One event loop on one thread, serving one listening socket."""

    def __init__(self, server: "AsyncHttpServer",
                 sock: socket.socket, index: int) -> None:
        self.server = server
        self.sock = sock
        self.index = index
        self.loop = asyncio.new_event_loop()
        self.connections: set = set()
        self.asyncio_server: Optional[asyncio.AbstractServer] = None
        self.ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name=f"repro-http-{index}", daemon=True)

    def _run(self) -> None:
        loop = self.loop
        try:
            self.asyncio_server = loop.run_until_complete(
                loop.create_server(lambda: _HttpProtocol(self),
                                   sock=self.sock))
            self.ready.set()
            loop.run_forever()
            # Drain already ran (shutdown schedules it before stop).
        finally:
            self.ready.set()
            try:
                loop.run_until_complete(
                    loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - teardown guard
                pass
            loop.close()

    async def drain(self, timeout_s: float) -> None:
        """Stop accepting, drain in-flight connections, abort
        stragglers — runs on this worker's loop."""
        if self.asyncio_server is not None:
            self.asyncio_server.close()
            await self.asyncio_server.wait_closed()
        for conn in list(self.connections):
            conn.begin_drain()
        deadline = time.monotonic() + timeout_s
        while self.connections and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for conn in list(self.connections):
            conn._abort()


class AsyncHttpServer:
    """The asyncio front door: event-loop workers over a thread-pool
    handler offload, in front of a synchronous :class:`ApiServer`.

    Args:
        api: the router to serve.
        host: bind address.
        port: bind port (0 picks a free one).
        workers: number of event-loop workers.  Each owns its own
            listening socket; with more than one, ``SO_REUSEPORT``
            lets the kernel balance accepted connections across them.
        offload: ``"thread"`` dispatches handlers to a small
            ``ThreadPoolExecutor`` so a slow handler (a WAL fsync, a
            contended stripe) never stalls the event loop;
            ``"inline"`` runs handlers on the loop itself — lowest
            latency for sub-millisecond handlers, at the price of
            head-of-line blocking across connections.  ``"auto"``
            (default) picks ``"thread"`` when the platform is
            durable (handlers can block on the WAL) and ``"inline"``
            otherwise.
        offload_threads: pool size for ``offload="thread"``.
        keep_alive_timeout_s: idle keep-alive connections are closed
            after this long.
        read_timeout_s: cap on receiving one complete request
            (measured from its first byte — the slowloris shed).
        write_timeout_s: cap on a stalled write (client not reading).
        max_header_bytes / max_body_bytes: parser limits (431 / 413).
        max_pipeline: queued pipelined requests per connection before
            reading pauses.
        hot_cache_ttl_s: pre-serialized response cache for the hot
            observability GETs (``/healthz``, ``/metrics``,
            ``/dashboard``); 0 disables.  Within the TTL, identical
            requests are answered from cached bytes without touching
            the router — a dashboard-poller storm costs one render.
        drain_timeout_s: graceful-shutdown bound; connections still
            busy after this are aborted.
        write_buffer_limit: transport write-buffer high mark.
        socket_sndbuf: per-connection ``SO_SNDBUF`` override (tests
            use a tiny one to provoke write stalls quickly).
        trace_transport: emit ``http.accept``/``http.parse`` spans
            (off by default: transport spans are roots with no
            request context and churn the flight recorder at high
            request rates).
    """

    #: Routes eligible for the pre-serialized hot-response cache.
    HOT_PATHS = frozenset({"/healthz", "/metrics", "/dashboard"})

    def __init__(self, api: ApiServer, host: str = "127.0.0.1",
                 port: int = 0, *, workers: int = 1,
                 offload: str = "auto",
                 offload_threads: int = 4,
                 keep_alive_timeout_s: float = 30.0,
                 read_timeout_s: float = 10.0,
                 write_timeout_s: float = 10.0,
                 max_header_bytes: int = 32 * 1024,
                 max_body_bytes: int = 8 * 1024 * 1024,
                 max_pipeline: int = 64,
                 hot_cache_ttl_s: float = 0.0,
                 drain_timeout_s: float = 5.0,
                 write_buffer_limit: Optional[int] = None,
                 socket_sndbuf: Optional[int] = None,
                 trace_transport: bool = False) -> None:
        if workers < 1:
            raise PlatformError("workers must be >= 1")
        if offload == "auto":
            # A durable platform can block a handler on a WAL fsync;
            # that must never sit on the event loop.  Pure in-memory
            # handlers are sub-millisecond, where inline dispatch
            # wins (no cross-thread hop per request).
            offload = ("thread" if api.platform.durability is not None
                       else "inline")
        if offload not in ("thread", "inline"):
            raise PlatformError(
                f"offload must be 'auto', 'thread' or 'inline', "
                f"got {offload!r}")
        if workers > 1 and not hasattr(socket, "SO_REUSEPORT"):
            raise PlatformError(  # pragma: no cover - linux has it
                "workers > 1 requires SO_REUSEPORT")
        self.api = api
        self.host = host
        self.requested_port = port
        self.n_workers = workers
        self.offload = offload
        self.keep_alive_timeout_s = keep_alive_timeout_s
        self.read_timeout_s = read_timeout_s
        self.write_timeout_s = write_timeout_s
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self.max_pipeline = max_pipeline
        self.hot_cache_ttl_s = hot_cache_ttl_s
        self.drain_timeout_s = drain_timeout_s
        self.write_buffer_limit = write_buffer_limit
        self.socket_sndbuf = socket_sndbuf
        self.trace_transport = trace_transport
        #: Timer granularity: fine enough to honor the shortest
        #: timeout promptly, coarse enough to stay cheap per tick.
        self.timeout_tick_s = max(0.01, min(
            keep_alive_timeout_s, read_timeout_s,
            write_timeout_s) / 4.0)
        self.executor = (ThreadPoolExecutor(
            max_workers=offload_threads,
            thread_name_prefix="repro-http-handler")
            if offload == "thread" else None)
        self._workers: List[_Worker] = []
        self._started = False
        self._stopped = False
        self._hot_lock = threading.Lock()
        self._hot: Dict[Tuple[str, str], Tuple[float, int, bytes,
                                               bytes]] = {}
        registry = api.registry
        self.m_conns = registry.gauge(
            "http.connections", "open HTTP connections")
        self.m_opened = registry.counter(
            "http.connections_opened", "connections accepted")
        self.m_keepalive = registry.counter(
            "http.keepalive_reuse",
            "requests carried by an already-used connection")
        self.m_parse_errors = registry.counter(
            "http.parse_errors", "protocol violations, by status")
        self.m_timeouts = registry.counter(
            "http.timeouts", "connections shed by timeout, by kind")
        self.m_bytes_read = registry.counter(
            "http.bytes_read", "request bytes received")
        self.m_bytes_written = registry.counter(
            "http.bytes_written", "response bytes sent")
        self.m_hot_cache = registry.counter(
            "http.hot_cache", "hot-response cache, by outcome")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "AsyncHttpServer":
        """Bind, spawn the worker loops, return once all accept."""
        if self._started:
            return self
        self._started = True
        port = self.requested_port
        for index in range(self.n_workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.n_workers > 1:
                sock.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEPORT, 1)
            sock.bind((self.host, port))
            sock.listen(256)
            sock.setblocking(False)
            if port == 0:
                port = sock.getsockname()[1]
            self._workers.append(_Worker(self, sock, index))
        self._port = port
        for worker in self._workers:
            worker.thread.start()
        for worker in self._workers:
            worker.ready.wait(timeout=10.0)
        return self

    @property
    def port(self) -> int:
        return self._port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self._port}"

    @property
    def server_address(self) -> Tuple[str, int]:
        """(host, port) — mirrors the stdlib server attribute the
        seed transport exposed."""
        return (self.host, self._port)

    @property
    def thread(self) -> Optional[threading.Thread]:
        """The first worker's thread (historical return slot)."""
        return self._workers[0].thread if self._workers else None

    def shutdown(self, graceful: bool = True) -> None:
        """Stop accepting, drain in-flight keep-alive connections
        (bounded by ``drain_timeout_s``), then stop the loops.

        Safe to call more than once.  Graceful ordering matters to
        durability: the owner flushes its checkpoint *after* this
        returns, so every request acknowledged over the wire is in
        the store the checkpoint captures.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        timeout = self.drain_timeout_s if graceful else 0.0
        for worker in self._workers:
            if not worker.loop.is_running():
                continue
            future = asyncio.run_coroutine_threadsafe(
                worker.drain(timeout), worker.loop)
            try:
                future.result(timeout=timeout + 5.0)
            except Exception:  # pragma: no cover - drain best-effort
                pass
        for worker in self._workers:
            if worker.loop.is_running():
                worker.loop.call_soon_threadsafe(worker.loop.stop)
            worker.thread.join(timeout=10.0)
        if self.executor is not None:
            self.executor.shutdown(wait=True)

    # -- hot-response cache --------------------------------------------

    def hot_cache_get(self, request: ParsedRequest
                      ) -> Optional[Tuple[int, bytes, bytes]]:
        if self.hot_cache_ttl_s <= 0 or request.method != "GET":
            return None
        path = request.target.partition("?")[0]
        if path not in self.HOT_PATHS:
            return None
        key = (request.target, request.headers.get("accept", ""))
        now = time.monotonic()
        with self._hot_lock:
            entry = self._hot.get(key)
            if entry is not None and now - entry[0] \
                    <= self.hot_cache_ttl_s:
                self.m_hot_cache.inc(outcome="hit")
                return entry[1], entry[2], entry[3]
        self.m_hot_cache.inc(outcome="miss")
        return None

    def hot_cache_put(self, request: ParsedRequest, status: int,
                      head: bytes, payload: bytes) -> None:
        if (self.hot_cache_ttl_s <= 0 or request.method != "GET"
                or status != 200):
            return
        path = request.target.partition("?")[0]
        if path not in self.HOT_PATHS:
            return
        key = (request.target, request.headers.get("accept", ""))
        with self._hot_lock:
            self._hot[key] = (time.monotonic(), status, head, payload)


def serve_in_thread(api: ApiServer, host: str = "127.0.0.1",
                    port: int = 0, **kwargs: Any
                    ) -> Tuple[AsyncHttpServer, threading.Thread, str]:
    """Start the API on daemon event-loop thread(s).

    Args:
        api: the router to serve.
        host: bind address.
        port: bind port (0 picks a free one).
        kwargs: forwarded to :class:`AsyncHttpServer` (timeouts,
            workers, offload mode, parser limits...).

    Returns:
        (server, thread, base_url).  Call ``server.shutdown()`` when
        done — it drains in-flight keep-alive connections first.
    """
    server = AsyncHttpServer(api, host, port, **kwargs).start()
    return server, server.thread, server.base_url
