"""Stdlib HTTP binding for the API router.

Wraps an :class:`~repro.service.api.ApiServer` in a
``ThreadingHTTPServer``: JSON in, JSON out, threaded so a simulation and
its service can share a process.  :func:`serve_in_thread` is the
one-liner examples and tests use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.service.api import ApiServer
from repro.service.wire import ApiRequest


def _make_handler(api: ApiServer):
    class Handler(BaseHTTPRequestHandler):
        """Translates HTTP to ApiRequest and back."""

        # Quiet the default stderr access log.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        def _dispatch(self, method: str) -> None:
            parts = urlsplit(self.path)
            query = dict(parse_qsl(parts.query))
            body = {}
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                raw = self.rfile.read(length)
                try:
                    body = json.loads(raw.decode("utf-8"))
                except json.JSONDecodeError:
                    self._respond(400, {"error": "invalid JSON body"})
                    return
            request = ApiRequest(method=method, path=parts.path,
                                 body=body, query=query)
            response = api.handle(request)
            self._respond(response.status, response.body)

        def _respond(self, status: int, body: dict) -> None:
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

    return Handler


def serve_in_thread(api: ApiServer, host: str = "127.0.0.1",
                    port: int = 0
                    ) -> Tuple[ThreadingHTTPServer, threading.Thread, str]:
    """Start the API on a daemon thread.

    Args:
        api: the router to serve.
        host: bind address.
        port: bind port (0 picks a free one).

    Returns:
        (server, thread, base_url).  Call ``server.shutdown()`` when
        done.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(api))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
    return server, thread, base_url
