"""W3C-style trace context propagation.

A trace that dies at the HTTP boundary is half a trace: the client
knows it retried three times, the server knows one handler was slow,
and nobody can line the two up.  This module carries the causal link
across the wire as a ``traceparent`` header in the W3C Trace Context
format (version 00)::

    traceparent: 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>

:class:`TraceContext` is the parsed form; :func:`format_traceparent`
and :func:`parse_traceparent` convert between it and the header.
Parsing is strict but *never raises*: a malformed header (wrong
length, uppercase or non-hex digits, unknown version, all-zero ids)
returns ``None``, and the receiver simply starts a fresh root trace —
a bad peer must not be able to crash the server or poison its traces.

Sampling is decided at the head (the first service to see a request)
and propagated in the flags byte: :func:`head_sampled` hashes the
trace id deterministically, so every service that sees the same trace
id makes the same keep/drop decision without coordination.
"""

from __future__ import annotations

import itertools
import os
import re
from dataclasses import dataclass
from typing import Optional

#: The only Trace Context version this implementation speaks.
TRACEPARENT_VERSION = "00"

#: Flag bit: the head sampler elected to record this trace.
FLAG_SAMPLED = 0x01

# The whole W3C grammar in one anchored match: version 00, lowercase
# hex only, field lengths 32/16/2.  One C-level regex pass is several
# times cheaper than splitting and validating field by field — this
# runs once per traced request on the server hot path.
_TRACEPARENT_RE = re.compile(
    r"\A00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})\Z")

# Span ids are process-global so spans minted by *different* Tracer
# instances (client vs server in one process, platform vs api in the
# chaos harness) can never collide inside one trace.  ``next()`` on an
# itertools.count is atomic under the GIL, so no lock is needed — one
# of these runs per span on the hot path.
_span_counter = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of a distributed trace.

    Attributes:
        trace_id: 32 lowercase hex chars identifying the whole trace.
        span_id: 16 lowercase hex chars identifying the sender's span
            (the receiver's parent).
        sampled: the head sampler's keep/drop decision.
    """

    trace_id: str
    span_id: str
    sampled: bool = True


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh process-unique 64-bit span id (16 lowercase hex chars).

    Sequential rather than random: span ids only need to be unique
    within the process, and a counter keeps span creation allocation-
    free on the hot path.
    """
    return f"{next(_span_counter):016x}"


def format_traceparent(ctx: TraceContext) -> str:
    """Render a context as a ``traceparent`` header value."""
    flags = FLAG_SAMPLED if ctx.sampled else 0
    return (f"{TRACEPARENT_VERSION}-{ctx.trace_id}-{ctx.span_id}"
            f"-{flags:02x}")


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header value, or ``None`` if invalid.

    Strict per the W3C grammar: exactly four dash-separated fields,
    version ``00``, lowercase hex only, field lengths 2/32/16/2, and
    all-zero trace or span ids rejected.  Any violation yields
    ``None`` — the caller starts a fresh root trace instead of
    trusting (or crashing on) garbage.
    """
    if not header or not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    trace_id, span_id, flags = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    sampled = bool(int(flags, 16) & FLAG_SAMPLED)
    return TraceContext(trace_id=trace_id, span_id=span_id,
                        sampled=sampled)


def head_sampled(trace_id: str, sample_rate: float) -> bool:
    """Deterministic head-sampling decision for a trace id.

    The decision is a pure function of the trace id: the top 64 bits,
    scaled into [0, 1), are compared against ``sample_rate``.  Every
    service in the request path reaches the same verdict for the same
    trace without exchanging a single byte beyond the id itself.
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    return int(trace_id[:16], 16) / 2.0 ** 64 < sample_rate
