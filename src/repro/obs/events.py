"""Structured-event telemetry from :class:`~repro.core.events.EventLog`.

Games and campaigns already append typed events ("session", "label",
"promotion", "flag", ...) to an :class:`EventLog`.  This module
normalizes those heterogeneous payloads into flat
:class:`TelemetryRecord` s — numeric fields separated from string tags —
and folds them into a :class:`~repro.obs.metrics.MetricsRegistry`:
one ``events.count`` counter series per kind, plus one histogram per
numeric field, so a dumped log and a live campaign read identically on
a dashboard.

:class:`TelemetryLogger` is the live-path variant: an
:class:`EventLog`-compatible ``append`` that mirrors every event into
the registry as it is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.events import Event, EventLog
from repro.obs.metrics import MetricsRegistry, default_registry


@dataclass(frozen=True)
class TelemetryRecord:
    """One normalized, timestamped telemetry record.

    Attributes:
        at_s: campaign time in seconds.
        kind: the originating event kind.
        fields: numeric payload entries (bools become 0/1, lists and
            dicts become their length).
        tags: string payload entries.
    """

    at_s: float
    kind: str
    fields: Dict[str, float] = field(default_factory=dict)
    tags: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"at_s": self.at_s, "kind": self.kind,
                "fields": dict(self.fields), "tags": dict(self.tags)}


def normalize_event(event: Event) -> TelemetryRecord:
    """Flatten one event's payload into numeric fields and tags."""
    fields: Dict[str, float] = {}
    tags: Dict[str, str] = {}
    for key, value in event.data.items():
        if isinstance(value, bool):
            fields[key] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            fields[key] = float(value)
        elif isinstance(value, str):
            tags[key] = value
        elif isinstance(value, (list, tuple, dict, set)):
            fields[f"{key}_count"] = float(len(value))
        # Anything else (None, nested objects) is dropped: telemetry
        # keeps only what aggregates.
    return TelemetryRecord(at_s=event.at_s, kind=event.kind,
                           fields=fields, tags=tags)


def normalize_log(log: Union[EventLog, Iterable[Event]]
                  ) -> List[TelemetryRecord]:
    """Normalize a whole log (or any event iterable), in order."""
    return [normalize_event(event) for event in log]


def feed_registry(log: Union[EventLog, Iterable[Event]],
                  registry: Optional[MetricsRegistry] = None,
                  prefix: str = "events") -> MetricsRegistry:
    """Fold a log into a registry; returns the registry used.

    Produces ``{prefix}.count`` (labelled by kind) and a
    ``{prefix}.{kind}.{field}`` histogram per numeric field.
    """
    registry = registry if registry is not None else default_registry()
    count = registry.counter(
        f"{prefix}.count", "events recorded, by kind")
    for record in normalize_log(log):
        count.inc(kind=record.kind)
        for name, value in record.fields.items():
            registry.histogram(
                f"{prefix}.{record.kind}.{name}",
                f"distribution of {name!r} on {record.kind!r} events",
            ).observe(value)
    return registry


class TelemetryLogger:
    """An event log that mirrors appends into a metrics registry.

    Drop-in for :class:`EventLog` where only ``append`` is used; the
    underlying log stays available as :attr:`log` for replay/analytics.
    """

    def __init__(self, log: Optional[EventLog] = None,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "events") -> None:
        self.log = log if log is not None else EventLog()
        self.registry = (registry if registry is not None
                         else default_registry())
        self.prefix = prefix
        self._count = self.registry.counter(
            f"{prefix}.count", "events recorded, by kind")

    def append(self, at_s: float, kind: str, **data: Any) -> Event:
        event = self.log.append(at_s, kind, **data)
        record = normalize_event(event)
        self._count.inc(kind=kind)
        for name, value in record.fields.items():
            self.registry.histogram(
                f"{self.prefix}.{kind}.{name}",
                f"distribution of {name!r} on {kind!r} events",
            ).observe(value)
        return event

    def __len__(self) -> int:
        return len(self.log)

    def __iter__(self):
        return iter(self.log)
