"""Exposition formats for a metrics snapshot.

Two renderings of the same :meth:`MetricsRegistry.snapshot`:

- **JSON** — the snapshot itself, the native format of the service's
  ``GET /metrics`` endpoint and the ``repro metrics`` CLI.
- **Prometheus text** (version 0.0.4) — ``name{label="v"} value``
  lines with ``# HELP`` / ``# TYPE`` headers, counters suffixed
  ``_total`` and histograms exposed as summaries (``_count``, ``_sum``,
  ``{quantile="0.5"}`` ...), so any Prometheus-compatible scraper can
  poll the endpoint unmodified.

:func:`negotiate` picks the format from an explicit ``?format=`` query
parameter (which wins) or the request's ``Accept`` header.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: Mapping[str, str],
                 extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{prometheus_name(k)}="{_escape_label(str(v))}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """The JSON exposition: the registry snapshot."""
    return registry.snapshot()


def render_prometheus_snapshot(
        snapshot: Mapping[str, Any],
        extra_labels: Optional[Mapping[str, str]] = None) -> str:
    """A snapshot document as Prometheus 0.0.4 text exposition.

    Works from the plain :meth:`MetricsRegistry.snapshot` dict rather
    than a live registry so federators can render snapshots fetched
    from other processes; ``extra_labels`` (e.g. ``node="node-0"``)
    are merged into every series, which is how the cluster router
    keeps per-node provenance in its federated ``/metrics``.
    """
    metrics = snapshot.get("metrics", {})
    lines = []
    for name in sorted(metrics):
        metric = metrics[name]
        kind = metric["kind"]
        base = prometheus_name(name)
        prom_kind = {"counter": "counter", "gauge": "gauge",
                     "histogram": "summary"}.get(kind, "untyped")
        exposed = base + "_total" if kind == "counter" else base
        if metric.get("description"):
            lines.append(f"# HELP {exposed} {metric['description']}")
        lines.append(f"# TYPE {exposed} {prom_kind}")
        for series in metric["series"]:
            labels = dict(series.get("labels", {}))
            if extra_labels:
                labels.update(extra_labels)
            if kind in ("counter", "gauge"):
                lines.append(f"{exposed}{_labels_text(labels)} "
                             f"{_format_value(series['value'])}")
                continue
            # Histogram -> summary: quantiles + _count + _sum.
            for quantile, key in _QUANTILES:
                if key in series:
                    text = _labels_text(labels,
                                        {"quantile": quantile})
                    lines.append(f"{base}{text} "
                                 f"{_format_value(series[key])}")
            plain = _labels_text(labels)
            lines.append(f"{base}_count{plain} "
                         f"{_format_value(series.get('count', 0))}")
            lines.append(f"{base}_sum{plain} "
                         f"{_format_value(series.get('sum', 0.0))}")
            # Clamp flag: 1 when observations overflowed the bucket
            # range, i.e. the quantiles above are lower bounds.
            lines.append(f"{base}_saturated{plain} "
                         f"{1 if series.get('saturated') else 0}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's snapshot as Prometheus 0.0.4 text exposition."""
    return render_prometheus_snapshot(registry.snapshot())


def negotiate(accept: Optional[str] = None,
              fmt: Optional[str] = None) -> str:
    """Pick ``"json"`` or ``"prometheus"``.

    An explicit ``fmt`` ("json", "prometheus", "prom", "text") wins;
    otherwise an ``Accept`` header preferring ``text/plain`` selects
    Prometheus; JSON is the default — including for a missing,
    empty, wildcard-only, or outright garbage ``Accept`` header.
    Negotiation must never raise: a client sending nonsense gets the
    default rendering, not a 500.
    """
    if fmt is not None:
        try:
            lowered = str(fmt).strip().lower()
        except Exception:
            return "json"
        if lowered in ("prometheus", "prom", "text"):
            return "prometheus"
        return "json"
    if accept is not None and isinstance(accept, str):
        lowered = accept.lower()
        json_at = lowered.find("application/json")
        text_at = lowered.find("text/plain")
        if text_at != -1 and (json_at == -1 or text_at < json_at):
            return "prometheus"
    return "json"
