"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective ("99.9% of requests succeed",
"99% of requests finish under 250ms", "99% of durability checks find
the WAL backlog under its bound", "90% of throughput samples meet the
per-game floor").  The :class:`SloEngine` consumes a stream of
good/bad events per objective and evaluates the SRE-workbook
**multi-window burn-rate** rules:

    burn = bad_fraction / (1 - objective)

A burn of 1.0 spends the error budget exactly at the rate it refills;
a burn of 14.4 over an hour spends ~2% of a 30-day budget in that
hour.  Each :class:`BurnRule` pairs a short and a long window and
fires only when **both** exceed its factor — the long window proves
sustained damage, the short window proves it is still happening (and
clears the alert quickly once it stops).  The defaults are the
workbook's page (5m/1h at 14.4x) and ticket (30m/6h at 6x) rules.

``window_scale`` multiplies every window span so simulated-time tests
can compress hours into seconds without touching the rule math.
Alert transitions are appended to the platform event log as
``slo_alert`` events, and every snapshot refreshes the
``service.slo_burn_rate`` gauge from the latest evaluation, so
dashboards and offline replay see the same alert history.  The
request hot path feeds :meth:`SloEngine.record_requests` — a batched
single-lock entry point that scores availability and latency together
— keeping per-request cost to a few integer adds.

All timestamps are caller-supplied; the engine never reads a clock,
which keeps dashboard snapshots deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, default_registry

#: Alert severities, worst last.
SEVERITIES = ("ticket", "page")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.

    Attributes:
        name: stable identifier (appears in events, gauges, JSON).
        kind: which feed scores it — ``availability`` (request
            succeeded), ``latency`` (request under ``threshold``
            seconds), ``durability`` (WAL backlog under ``threshold``
            records), ``throughput`` (per-game rate at or above
            ``threshold`` outputs/hour).
        objective: target good fraction in (0, 1).
        threshold: the good/bad cut for kinds that need one.
        game: restrict a throughput SLO to one game (None = any).
    """

    name: str
    kind: str
    objective: float
    threshold: Optional[float] = None
    game: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ObservabilityError(
                f"objective must be in (0,1), got {self.objective}")
        if self.kind not in ("availability", "latency", "durability",
                             "throughput"):
            raise ObservabilityError(f"unknown SLO kind: {self.kind}")
        if self.kind != "availability" and self.threshold is None:
            raise ObservabilityError(
                f"SLO kind {self.kind!r} needs a threshold")


@dataclass(frozen=True)
class BurnRule:
    """Fire when burn >= ``factor`` in BOTH windows; clear when the
    short window drops back under."""

    name: str
    short_s: float
    long_s: float
    factor: float
    severity: str = "page"
    #: Below this many short-window samples the rule stays quiet — a
    #: single bad event in an idle window is not a 1000x burn.
    min_samples: int = 20


#: The SRE-workbook pair: fast page on a budget-torching burn, slow
#: ticket on a simmering one.
DEFAULT_RULES: Tuple[BurnRule, ...] = (
    BurnRule("fast", short_s=300.0, long_s=3600.0, factor=14.4,
             severity="page"),
    BurnRule("slow", short_s=1800.0, long_s=21600.0, factor=6.0,
             severity="ticket"),
)


def default_slos() -> List[SloSpec]:
    """The service's stock objectives."""
    return [
        SloSpec("availability", kind="availability", objective=0.999,
                description="99.9% of requests return non-5xx"),
        SloSpec("latency_p99", kind="latency", objective=0.99,
                threshold=0.250,
                description="99% of requests finish under 250ms"),
        SloSpec("durability_lag", kind="durability", objective=0.99,
                threshold=512.0,
                description="99% of durability checks find <=512 "
                            "uncheckpointed WAL records"),
        SloSpec("game_throughput", kind="throughput", objective=0.90,
                threshold=1.0,
                description="90% of throughput samples at >=1 "
                            "verified output per human-hour"),
    ]


class _GoodBadRing:
    """Fixed ring of (good, bad) buckets covering one window span."""

    __slots__ = ("bucket_s", "n_buckets", "_good", "_bad", "_head",
                 "_tg", "_tb")

    N_BUCKETS = 12

    def __init__(self, span_s: float) -> None:
        self.n_buckets = self.N_BUCKETS
        self.bucket_s = max(span_s / self.n_buckets, 1e-9)
        self._good = [0] * self.n_buckets
        self._bad = [0] * self.n_buckets
        self._head: Optional[int] = None
        self._tg = 0
        self._tb = 0

    def _advance(self, index: int) -> None:
        head = self._head
        if head is None or index - head >= self.n_buckets:
            self._good = [0] * self.n_buckets
            self._bad = [0] * self.n_buckets
            self._tg = self._tb = 0
        else:
            for stale in range(head + 1, index + 1):
                slot = stale % self.n_buckets
                self._tg -= self._good[slot]
                self._tb -= self._bad[slot]
                self._good[slot] = self._bad[slot] = 0
        self._head = index

    def add(self, at_s: float, good: bool) -> None:
        if good:
            self.add_counts(at_s, 1, 0)
        else:
            self.add_counts(at_s, 0, 1)

    def add_counts(self, at_s: float, n_good: int, n_bad: int) -> None:
        """Fold a pre-aggregated (good, bad) count pair into the
        bucket owning ``at_s`` — the batched feed's workhorse."""
        index = int(at_s // self.bucket_s)
        head = self._head
        if head is None or index > head:
            self._advance(index)
        elif index <= head - self.n_buckets:
            return
        slot = index % self.n_buckets
        self._good[slot] += n_good
        self._tg += n_good
        self._bad[slot] += n_bad
        self._tb += n_bad

    def totals(self, now_s: float) -> Tuple[int, int]:
        index = int(now_s // self.bucket_s)
        if self._head is not None and index > self._head:
            self._advance(index)
        return self._tg, self._tb


class _SloState:
    """Runtime state for one spec: rings per distinct window span plus
    per-rule alert latches."""

    __slots__ = ("spec", "rings", "firing", "last_burn", "events_seen")

    def __init__(self, spec: SloSpec, spans: List[float]) -> None:
        self.spec = spec
        self.rings: Dict[float, _GoodBadRing] = {
            span: _GoodBadRing(span) for span in spans}
        self.firing: Dict[str, bool] = {}
        self.last_burn: Dict[str, float] = {}
        self.events_seen = 0


@dataclass
class Alert:
    """One alert transition, as surfaced in snapshots and events."""

    slo: str
    rule: str
    severity: str
    state: str                      # "firing" | "resolved"
    at_s: float
    burn_short: float
    burn_long: float
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"slo": self.slo, "rule": self.rule,
                "severity": self.severity, "state": self.state,
                "at_s": self.at_s,
                "burn_short": self.burn_short,
                "burn_long": self.burn_long, **self.context}


class SloEngine:
    """Scores good/bad streams against every spec and runs the
    burn-rate state machines.

    O(1) per recorded event: each event lands in a handful of ring
    buckets and re-evaluates only the rules of the SLO it scored.
    """

    def __init__(self, slos: List[SloSpec],
                 rules: Tuple[BurnRule, ...] = DEFAULT_RULES,
                 window_scale: float = 1.0,
                 registry: Optional[MetricsRegistry] = None,
                 events: Any = None,
                 history_limit: int = 256) -> None:
        if window_scale <= 0.0:
            raise ObservabilityError(
                f"window_scale must be positive, got {window_scale}")
        self.rules = rules
        self.window_scale = window_scale
        self.events = events
        self.registry = (registry if registry is not None
                         else default_registry())
        self._lock = threading.Lock()
        spans = sorted({rule.short_s * window_scale
                        for rule in rules}
                       | {rule.long_s * window_scale
                          for rule in rules})
        self._spans = spans
        self._states: Dict[str, _SloState] = {}
        for spec in slos:
            if spec.name in self._states:
                raise ObservabilityError(
                    f"duplicate SLO name: {spec.name}")
            self._states[spec.name] = _SloState(spec, spans)
        self._history: List[Alert] = []
        self._history_limit = history_limit
        self._g_burn = self.registry.gauge(
            "service.slo_burn_rate",
            "error-budget burn rate, by slo/window")
        self._c_alerts = self.registry.counter(
            "service.slo_alerts",
            "SLO alert transitions, by slo/rule/state")

    @property
    def finest_bucket_s(self) -> float:
        """Width of the smallest ring bucket across every window span.

        Batched feeders group events no coarser than this, so a batch
        lands in the same buckets the per-event path would have used.
        """
        return max(min(self._spans) / _GoodBadRing.N_BUCKETS, 1e-9)

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------

    def latency_thresholds(self) -> List[float]:
        """Latency-SLO thresholds in state order — callers counting
        over-threshold requests themselves pass the parallel counts to
        :meth:`record_request_counts`."""
        return [float(state.spec.threshold or 0.0)
                for state in self._states.values()
                if state.spec.kind == "latency"]

    def record_requests(self, at_s: float, n: int, n_err: int,
                        latencies: Sequence[float]) -> None:
        """Score a micro-batch of requests in one lock acquisition.

        Feeds the availability SLOs with ``n - n_err`` good / ``n_err``
        bad and every latency SLO with per-threshold counts over
        ``latencies``, then evaluates each touched state once.  The
        caller groups requests no coarser than :attr:`finest_bucket_s`,
        so bucket placement matches the per-event feeds; alert
        transitions land at the batch boundary instead of mid-batch,
        which is at most one fine bucket late.
        """
        self.record_request_counts(
            at_s, n, n_err,
            [sum(1 for v in latencies if v > threshold)
             for threshold in self.latency_thresholds()])

    def record_request_counts(self, at_s: float, n: int, n_err: int,
                              slow_counts: Sequence[int]) -> None:
        """:meth:`record_requests` for callers that pre-counted the
        over-threshold requests (``slow_counts`` parallels
        :meth:`latency_thresholds`) — the all-integer fast path."""
        if n <= 0:
            return
        with self._lock:
            lat_i = 0
            for state in self._states.values():
                kind = state.spec.kind
                if kind == "availability":
                    n_bad = n_err
                elif kind == "latency":
                    n_bad = int(slow_counts[lat_i])
                    lat_i += 1
                else:
                    continue
                state.events_seen += n
                for ring in state.rings.values():
                    ring.add_counts(at_s, n - n_bad, n_bad)
                self._evaluate_locked(state, at_s)

    def record(self, kind: str, at_s: float, good: bool,
               game: Optional[str] = None) -> None:
        """Score one good/bad event against every SLO of ``kind``."""
        with self._lock:
            for state in self._states.values():
                spec = state.spec
                if spec.kind != kind:
                    continue
                if (spec.game is not None and game is not None
                        and spec.game != game):
                    continue
                state.events_seen += 1
                for ring in state.rings.values():
                    ring.add(at_s, good)
                self._evaluate_locked(state, at_s, game=game)

    def record_latency(self, at_s: float, elapsed_s: float) -> None:
        with self._lock:
            for state in self._states.values():
                if state.spec.kind != "latency":
                    continue
                good = elapsed_s <= float(state.spec.threshold or 0.0)
                state.events_seen += 1
                for ring in state.rings.values():
                    ring.add(at_s, good)
                self._evaluate_locked(state, at_s)

    def record_durability(self, at_s: float, backlog: int) -> None:
        with self._lock:
            for state in self._states.values():
                if state.spec.kind != "durability":
                    continue
                good = backlog <= float(state.spec.threshold or 0.0)
                state.events_seen += 1
                for ring in state.rings.values():
                    ring.add(at_s, good)
                self._evaluate_locked(state, at_s)

    def record_throughput(self, game: str, at_s: float,
                          per_hour: float) -> None:
        self.record("throughput", at_s,
                    good=per_hour >= self._throughput_floor(game),
                    game=game)

    def _throughput_floor(self, game: str) -> float:
        for state in self._states.values():
            spec = state.spec
            if spec.kind == "throughput" and (spec.game is None
                                              or spec.game == game):
                return float(spec.threshold or 0.0)
        return 0.0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _burn_locked(self, state: _SloState, span_s: float,
                     at_s: float) -> Tuple[float, int]:
        good, bad = state.rings[span_s].totals(at_s)
        total = good + bad
        if total == 0:
            return 0.0, 0
        bad_frac = bad / total
        budget = 1.0 - state.spec.objective
        return bad_frac / budget, total

    def _evaluate_locked(self, state: _SloState, at_s: float,
                         game: Optional[str] = None) -> None:
        spec = state.spec
        for rule in self.rules:
            short = rule.short_s * self.window_scale
            long_ = rule.long_s * self.window_scale
            burn_short, n_short = self._burn_locked(state, short, at_s)
            burn_long, _ = self._burn_locked(state, long_, at_s)
            state.last_burn[rule.name] = burn_short
            firing = state.firing.get(rule.name, False)
            if not firing:
                if (n_short >= rule.min_samples
                        and burn_short >= rule.factor
                        and burn_long >= rule.factor):
                    state.firing[rule.name] = True
                    self._transition_locked(
                        state, rule, "firing", at_s, burn_short,
                        burn_long, game)
            elif burn_short < rule.factor:
                state.firing[rule.name] = False
                self._transition_locked(
                    state, rule, "resolved", at_s, burn_short,
                    burn_long, game)

    def _transition_locked(self, state: _SloState, rule: BurnRule,
                           new_state: str, at_s: float,
                           burn_short: float, burn_long: float,
                           game: Optional[str]) -> None:
        context: Dict[str, Any] = {}
        if game is not None:
            context["game"] = game
        alert = Alert(slo=state.spec.name, rule=rule.name,
                      severity=rule.severity, state=new_state,
                      at_s=at_s, burn_short=round(burn_short, 4),
                      burn_long=round(burn_long, 4), context=context)
        self._history.append(alert)
        if len(self._history) > self._history_limit:
            del self._history[:len(self._history)
                              - self._history_limit]
        self._c_alerts.inc(slo=state.spec.name, rule=rule.name,
                           state=new_state)
        if self.events is not None:
            data = {k: v for k, v in alert.to_dict().items()
                    if k != "at_s"}
            self.events.append(at_s, "slo_alert", **data)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def active_alerts(self) -> List[Dict[str, Any]]:
        """Currently-firing (slo, rule) pairs with their last burn."""
        with self._lock:
            return self._active_locked()

    def _active_locked(self) -> List[Dict[str, Any]]:
        active = []
        for name in sorted(self._states):
            state = self._states[name]
            for rule in self.rules:
                if state.firing.get(rule.name):
                    active.append({
                        "slo": name, "rule": rule.name,
                        "severity": rule.severity,
                        "burn_short": round(
                            state.last_burn.get(rule.name, 0.0), 4)})
        return active

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able engine state: per-SLO status plus active alerts
        and the bounded transition history.  Also mirrors the latest
        short-window burns into the ``service.slo_burn_rate`` gauge —
        moved off the per-event path so the hot feeds stay cheap."""
        with self._lock:
            for state in self._states.values():
                for rule in self.rules:
                    self._g_burn.set(
                        state.last_burn.get(rule.name, 0.0),
                        slo=state.spec.name, window=rule.name)
            slos = {}
            for name in sorted(self._states):
                state = self._states[name]
                firing_rules = [rule.name for rule in self.rules
                                if state.firing.get(rule.name)]
                severity = None
                for rule in self.rules:
                    if state.firing.get(rule.name):
                        if (severity is None
                                or SEVERITIES.index(rule.severity)
                                > SEVERITIES.index(severity)):
                            severity = rule.severity
                slos[name] = {
                    "kind": state.spec.kind,
                    "objective": state.spec.objective,
                    "threshold": state.spec.threshold,
                    "description": state.spec.description,
                    "events": state.events_seen,
                    "state": ("firing" if firing_rules else "ok"),
                    "severity": severity,
                    "firing_rules": firing_rules,
                    "burn": {rule.name: round(
                        state.last_burn.get(rule.name, 0.0), 4)
                        for rule in self.rules},
                }
            return {
                "window_scale": self.window_scale,
                "rules": [{"name": rule.name,
                           "short_s": rule.short_s,
                           "long_s": rule.long_s,
                           "factor": rule.factor,
                           "severity": rule.severity}
                          for rule in self.rules],
                "slos": slos,
                "active_alerts": self._active_locked(),
                "transitions": [alert.to_dict()
                                for alert in self._history[-50:]],
            }
