"""Observability: metrics, tracing, and telemetry events.

The measurement substrate for the whole platform:

- :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` in a :class:`MetricsRegistry`,
  with a process-wide default registry.
- :mod:`repro.obs.tracing` — ``with span("name"):`` nesting spans into
  exportable trace trees, with trace ids, parent links, and head/tail
  sampling.
- :mod:`repro.obs.propagation` — W3C-style ``traceparent`` context
  carried across the HTTP boundary.
- :mod:`repro.obs.recorder` — the bounded flight recorder behind the
  ``/debug/*`` endpoints (recent traces, slow requests, errors).
- :mod:`repro.obs.events` — :class:`~repro.core.events.EventLog`
  payloads normalized into flat telemetry records and folded into the
  registry.
- :mod:`repro.obs.exposition` — JSON and Prometheus text renderings
  (served by ``GET /metrics``).
- :mod:`repro.obs.bridge` — :class:`MonitorBridge` mirroring
  :class:`~repro.quality.monitoring.CampaignMonitor` alerts into
  counters.
- :mod:`repro.obs.sketch` — :class:`QuantileSketch`, a mergeable
  Greenwald-Khanna summary for accurate tail latency percentiles.
- :mod:`repro.obs.slo` — declarative :class:`SloSpec` objectives
  evaluated by an :class:`SloEngine` with multi-window burn-rate
  alerting.
- :mod:`repro.obs.anomaly` — EWMA z-score :class:`AnomalyMonitor`
  for latency/error/agreement regressions.
- :mod:`repro.obs.live` — :class:`LiveAnalytics`, the streaming
  engine behind ``GET /dashboard`` and ``repro top``.
- :mod:`repro.obs.stitch` — cross-process trace reassembly behind
  the cluster-merged ``GET /debug/traces``.
- :mod:`repro.obs.profiler` — :class:`SamplingProfiler`, the
  wall-clock sampling profiler behind ``GET /debug/profile``.

See ``docs/observability.md`` for a cookbook.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, default_registry,
                               set_default_registry)
from repro.obs.tracing import (Span, Tracer, default_tracer, span)
from repro.obs.propagation import (TraceContext, format_traceparent,
                                   head_sampled, new_span_id,
                                   new_trace_id, parse_traceparent)
from repro.obs.recorder import FlightRecorder
from repro.obs.events import (TelemetryLogger, TelemetryRecord,
                              feed_registry, normalize_event,
                              normalize_log)
from repro.obs.exposition import (PROMETHEUS_CONTENT_TYPE, negotiate,
                                  render_json, render_prometheus,
                                  render_prometheus_snapshot)
from repro.obs.bridge import MonitorBridge
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (Alert, BurnRule, SloEngine, SloSpec,
                           default_slos)
from repro.obs.anomaly import AnomalyMonitor, EwmaDetector
from repro.obs.live import LiveAnalytics, WindowRing
from repro.obs.stitch import stitch_traces, stitched_jsonl
from repro.obs.profiler import (SamplingProfiler, collapsed_text,
                                merge_profiles)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "default_registry", "set_default_registry",
    "Span", "Tracer", "default_tracer", "span",
    "TraceContext", "format_traceparent", "head_sampled",
    "new_span_id", "new_trace_id", "parse_traceparent",
    "FlightRecorder",
    "TelemetryLogger", "TelemetryRecord", "feed_registry",
    "normalize_event", "normalize_log",
    "PROMETHEUS_CONTENT_TYPE", "negotiate", "render_json",
    "render_prometheus", "render_prometheus_snapshot",
    "MonitorBridge",
    "QuantileSketch",
    "Alert", "BurnRule", "SloEngine", "SloSpec", "default_slos",
    "AnomalyMonitor", "EwmaDetector",
    "LiveAnalytics", "WindowRing",
    "stitch_traces", "stitched_jsonl",
    "SamplingProfiler", "collapsed_text", "merge_profiles",
]
