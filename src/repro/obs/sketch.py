"""Mergeable streaming quantile sketch (Greenwald-Khanna).

The bucketed :class:`~repro.obs.metrics.Histogram` answers "roughly
where is p99?" with O(buckets) memory but interpolates inside fixed
bucket bounds — a tail that lands past the last bound is invisible.
:class:`QuantileSketch` complements it: a Greenwald-Khanna summary
holding O(1/eps * log(eps * n)) tuples whose rank error is bounded by
``eps * n``, so tail percentiles stay accurate whatever the value
range, with no buckets to pick.

Properties the test suite leans on:

- **Rank error bound** — ``quantile(q)`` returns a value whose rank in
  the observed stream is within ``eps * n`` of ``q * n``, on any input
  ordering (sorted, reversed, adversarial).
- **Mergeable** — ``merge`` folds another sketch in; the merged error
  is bounded by the sum of the operands' errors, so any merge tree
  over per-thread sketches stays within ``2 * eps * n`` of truth.
- **Exact count/sum/min/max** — only the quantiles are estimates.
- **Thread-safe** — every mutation holds the sketch's lock; concurrent
  observers reconcile counts exactly.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default rank-error budget: p99 of a 10k-observation stream is off
#: by at most ~50 ranks — tighter than any realistic bucket scheme.
DEFAULT_EPSILON = 0.005

#: The percentiles a summary reports, with their JSON keys.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99),
    ("p999", 0.999))


class QuantileSketch:
    """A Greenwald-Khanna epsilon-approximate quantile summary.

    Args:
        epsilon: rank-error budget as a fraction of the stream length.
            Smaller is more accurate and keeps more tuples (the tuple
            count grows as ``O(1/epsilon * log(epsilon * n))``).
    """

    __slots__ = ("epsilon", "_lock", "_tuples", "_count", "_sum",
                 "_min", "_max", "_since_compress")

    def __init__(self, epsilon: float = DEFAULT_EPSILON) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ObservabilityError(
                f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = epsilon
        self._lock = threading.Lock()
        # GK tuples (value, g, delta), sorted by value:
        #   rank_min(i) = g[0] + ... + g[i]
        #   rank_max(i) = rank_min(i) + delta[i]
        self._tuples: List[Tuple[float, int, int]] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._since_compress = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self._observe_locked(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch under one lock acquisition.

        The batch is sorted once (in C) and merged into the summary in
        a single pass — the classic GK batch insert.  A sorted batch is
        itself an exact summary (every element ``(v, 1, 0)``), so the
        merge adds no rank error beyond what compression already
        allows, and the amortized cost per value is far below a one-by
        -one ``observe`` loop.
        """
        vals = sorted(float(v) for v in values)
        if not vals:
            return
        with self._lock:
            self._count += len(vals)
            self._sum += math.fsum(vals)
            if vals[0] < self._min:
                self._min = vals[0]
            if vals[-1] > self._max:
                self._max = vals[-1]
            tuples = self._tuples
            if not tuples:
                self._tuples = [(v, 1, 0) for v in vals]
            else:
                merged: List[Tuple[float, int, int]] = []
                append = merged.append
                i = j = 0
                n_old, n_new = len(tuples), len(vals)
                while i < n_old and j < n_new:
                    if tuples[i][0] <= vals[j]:
                        append(tuples[i])
                        i += 1
                    else:
                        append((vals[j], 1, 0))
                        j += 1
                while i < n_old:
                    append(tuples[i])
                    i += 1
                while j < n_new:
                    append((vals[j], 1, 0))
                    j += 1
                self._tuples = merged
            self._compress_locked()
            self._since_compress = 0

    def _observe_locked(self, value: float) -> None:
        tuples = self._tuples
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # Binary search for the insertion point (first tuple > value).
        lo, hi = 0, len(tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if tuples[mid][0] <= value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0 or lo == len(tuples):
            # New global min/max: its rank is exact, delta = 0.
            tuples.insert(lo, (value, 1, 0))
        else:
            delta = max(0,
                        int(math.floor(2.0 * self.epsilon
                                       * self._count)) - 1)
            tuples.insert(lo, (value, 1, delta))
        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0
                                              / (2.0 * self.epsilon))):
            self._compress_locked()
            self._since_compress = 0

    def _compress_locked(self) -> None:
        """Merge adjacent tuples whose combined uncertainty still fits
        the ``2 * eps * n`` band — the GK space bound."""
        tuples = self._tuples
        if len(tuples) < 3:
            return
        cap = 2.0 * self.epsilon * self._count
        out = [tuples[-1]]
        # Sweep right-to-left, folding a tuple into its right neighbor
        # when g_i + g_{i+1} + delta_{i+1} < cap.  The first and last
        # tuples are exact ends and never absorbed.
        for i in range(len(tuples) - 2, 0, -1):
            value, g, delta = tuples[i]
            nvalue, ng, ndelta = out[-1]
            if g + ng + ndelta < cap:
                out[-1] = (nvalue, g + ng, ndelta)
            else:
                out.append((value, g, delta))
        out.append(tuples[0])
        out.reverse()
        self._tuples = out

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (returns self).

        The merged summary's rank error is bounded by the sum of the
        two operands' error budgets, so merging N per-thread sketches
        built with ``epsilon`` stays within ``2 * epsilon * n_total``.
        """
        if other is self:
            raise ObservabilityError(
                "cannot merge a sketch into itself")
        # Lock ordering by id() keeps concurrent cross-merges
        # deadlock-free.
        first, second = ((self, other) if id(self) < id(other)
                         else (other, self))
        with first._lock, second._lock:
            merged: List[Tuple[float, int, int]] = []
            a, b = self._tuples, other._tuples
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i][0] <= b[j][0]:
                    merged.append(a[i])
                    i += 1
                else:
                    merged.append(b[j])
                    j += 1
            merged.extend(a[i:])
            merged.extend(b[j:])
            self._tuples = merged
            self._count += other._count
            self._sum += other._sum
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
            self._compress_locked()
            self._since_compress = 0
        return self

    def merged(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch summarizing both operands; neither is changed."""
        out = QuantileSketch(epsilon=self.epsilon)
        with self._lock:
            out._tuples = list(self._tuples)
            out._count = self._count
            out._sum = self._sum
            out._min = self._min
            out._max = self._max
        return out.merge(other)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """The eps-approximate ``q``-quantile (``q`` in [0, 1]); None
        for an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0,1]: {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> Optional[float]:
        if self._count == 0:
            return None
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        target = math.ceil(q * self._count)
        slack = self.epsilon * self._count
        rank_min = 0
        previous = self._tuples[0][0]
        for value, g, delta in self._tuples:
            rank_min += g
            if rank_min + delta > target + slack:
                return previous
            previous = value
        return previous

    def summary(self) -> Dict[str, Any]:
        """count/sum/mean/min/max plus the standard percentiles, as a
        plain JSON-able dict (zeros when empty)."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
            doc: Dict[str, Any] = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
            }
            for key, q in SUMMARY_QUANTILES:
                doc[key] = self._quantile_locked(q)
            return doc

    def tuple_count(self) -> int:
        """Summary size, in GK tuples (the memory bound under test)."""
        with self._lock:
            return len(self._tuples)

    def to_dict(self) -> Dict[str, Any]:
        """Serializable state: enough to reconstruct via
        :meth:`from_dict` (tests and cross-process merging)."""
        with self._lock:
            return {"epsilon": self.epsilon, "count": self._count,
                    "sum": self._sum,
                    "min": None if self._count == 0 else self._min,
                    "max": None if self._count == 0 else self._max,
                    "tuples": [list(t) for t in self._tuples]}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(epsilon=doc["epsilon"])
        sketch._tuples = [(float(v), int(g), int(d))
                          for v, g, d in doc["tuples"]]
        sketch._count = int(doc["count"])
        sketch._sum = float(doc["sum"])
        sketch._min = (math.inf if doc["min"] is None
                       else float(doc["min"]))
        sketch._max = (-math.inf if doc["max"] is None
                       else float(doc["max"]))
        return sketch
