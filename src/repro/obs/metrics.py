"""Thread-safe in-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` names and owns metrics; instrumented code
calls ``registry.counter("service.requests").inc(route="/health")`` on
its hot path and readers take a :meth:`MetricsRegistry.snapshot` (a
plain JSON-able dict) whenever they like.  Every mutation is guarded by
a per-metric lock, so the registry can be shared by the threaded HTTP
server, the simulator, and a reader thread without coordination.

All three metric kinds are label-aware: each distinct label set is an
independent series inside the metric (``requests{route="/jobs"}`` vs
``requests{route="/health"}``).  Histograms use fixed buckets and
estimate percentiles by linear interpolation within a bucket, bounded
by the observed min/max — the standard Prometheus-style tradeoff of a
little accuracy for O(1) memory per series.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency-oriented buckets (seconds), roughly geometric.
#: The sub-millisecond range matters: WAL fsyncs, stripe-lock waits
#: and heap operations routinely land in tens of microseconds, and a
#: first bound of 1 ms would collapse them all into one bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    # The 0- and 1-label shapes cover nearly every hot-path series
    # (request counters, per-stripe lock timings); skipping the
    # sort + genexpr there is measurable at T9 request rates.
    if not labels:
        return ()
    if len(labels) == 1:
        [(k, v)] = labels.items()
        return ((k if type(k) is str else str(k),
                 v if type(v) is str else str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> Dict[str, str]:
    return {k: v for k, v in key}


def _percentile_from_counts(buckets: Tuple[float, ...],
                            counts: Sequence[int], total: int,
                            min_v: float, max_v: float,
                            q: float) -> Tuple[float, bool]:
    """(estimate, saturated) for one quantile over raw bucket counts.

    The interpolation shared by live :class:`Histogram` series and
    cross-process merges (:func:`merged_histogram_snapshot`):
    ``saturated`` means the target rank landed in the overflow (+Inf)
    bucket, where there is no finite upper bound to interpolate
    against, so the estimate clamps to the last finite bucket bound.
    """
    target = q * total
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= target:
            if i >= len(buckets):
                return buckets[-1], True
            lower = buckets[i - 1] if i > 0 else min(0.0, min_v)
            upper = buckets[i]
            frac = (target - cumulative) / n
            estimate = lower + frac * (upper - lower)
            return min(max(estimate, min_v), max_v), False
        cumulative += n
    return max_v, counts[-1] > 0


def _summary_from_counts(buckets: Tuple[float, ...],
                         counts: Sequence[int], total: int,
                         total_sum: float, min_v: float,
                         max_v: float) -> Dict[str, Any]:
    """The standard summary doc (count/sum/mean/min/max/p50/p95/p99,
    plus ``saturated`` when any reported quantile hit the overflow
    bucket) computed from raw state."""
    p50, sat50 = _percentile_from_counts(buckets, counts, total,
                                         min_v, max_v, 0.50)
    p95, sat95 = _percentile_from_counts(buckets, counts, total,
                                         min_v, max_v, 0.95)
    p99, sat99 = _percentile_from_counts(buckets, counts, total,
                                         min_v, max_v, 0.99)
    doc: Dict[str, Any] = {
        "count": total,
        "sum": total_sum,
        "mean": total_sum / total,
        "min": min_v,
        "max": max_v,
        "p50": p50,
        "p95": p95,
        "p99": p99,
    }
    if sat50 or sat95 or sat99:
        doc["saturated"] = True
    return doc


class Metric:
    """Base class: a named, described, lock-guarded metric."""

    kind = "metric"

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ObservabilityError("metric needs a non-empty name")
        self.name = name
        self.description = description
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to this label set's series."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value for one label set (0.0 if never incremented)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = [{"labels": _labels_dict(key), "value": value}
                      for key, value in sorted(self._values.items())]
        return {"kind": self.kind, "description": self.description,
                "series": series}


class Gauge(Metric):
    """A value that can go up and down, per label set."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = [{"labels": _labels_dict(key), "value": value}
                      for key, value in sorted(self._values.items())]
        return {"kind": self.kind, "description": self.description,
                "series": series}


class _HistogramSeries:
    """Mutable per-label-set histogram state."""

    __slots__ = ("counts", "count", "sum", "min", "max", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        # counts[i] observations in (bucket[i-1], bucket[i]];
        # counts[-1] is the overflow bucket (> last bound).
        self.counts = [0] * (n_buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # bucket index -> (trace_id, value) of the latest exemplar
        # observed into that bucket.  Lazily created: series that never
        # see an exemplar pay nothing.
        self.exemplars: Optional[Dict[int, Tuple[str, float]]] = None


class Histogram(Metric):
    """Fixed-bucket distribution with interpolated percentiles."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, description)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} needs strictly increasing buckets")
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, exemplar: Optional[str] = None,
                **labels: Any) -> None:
        """Record one observation into this label set's distribution.

        ``exemplar`` optionally attaches a trace id to the bucket the
        observation lands in (newest wins), linking the metric back to
        a concrete trace: a latency histogram's p99 bucket then names
        a trace you can pull from ``GET /debug/traces``.
        """
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets))
            # First bound >= value; len(buckets) is the overflow slot.
            idx = bisect_left(self.buckets, value)
            series.counts[idx] += 1
            series.count += 1
            series.sum += value
            series.min = min(series.min, value)
            series.max = max(series.max, value)
            if exemplar is not None:
                if series.exemplars is None:
                    series.exemplars = {}
                series.exemplars[idx] = (exemplar, value)

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def percentile(self, q: float, **labels: Any) -> Optional[float]:
        """Estimated ``q``-quantile (q in [0,1]) for one label set."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0,1]: {q}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            return self._percentile_locked(series, q)

    def _percentile_locked(self, series: _HistogramSeries,
                           q: float) -> float:
        return self._percentile_info_locked(series, q)[0]

    def _percentile_info_locked(self, series: _HistogramSeries,
                                q: float) -> Tuple[float, bool]:
        """(estimate, saturated) for one quantile.

        ``saturated`` means the target rank landed in the overflow
        (+Inf) bucket: there is no finite upper bound to interpolate
        against, so the estimate is clamped to the last finite bucket
        bound rather than fabricating a tail between it and the
        observed max.  Dashboards should treat a saturated value as
        "at least this much" and widen the buckets.
        """
        return _percentile_from_counts(self.buckets, series.counts,
                                       series.count, series.min,
                                       series.max, q)

    def summary(self, **labels: Any) -> Dict[str, float]:
        """count/sum/mean/min/max/p50/p95/p99 for one label set."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return {"count": 0, "sum": 0.0}
            return self._summary_locked(series)

    def _summary_locked(self, series: _HistogramSeries
                        ) -> Dict[str, float]:
        return _summary_from_counts(self.buckets, series.counts,
                                    series.count, series.sum,
                                    series.min, series.max)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = []
            for key, state in sorted(self._series.items()):
                doc: Dict[str, Any] = {"labels": _labels_dict(key)}
                if state.count:
                    doc.update(self._summary_locked(state))
                    # Raw per-bucket counts make the series exactly
                    # mergeable across processes (the router's
                    # metrics federation re-derives percentiles from
                    # the summed counts instead of averaging
                    # estimates).
                    doc["counts"] = list(state.counts)
                else:
                    doc.update({"count": 0, "sum": 0.0})
                if state.exemplars:
                    doc["exemplars"] = {
                        self._bucket_name(idx): {
                            "trace_id": trace_id, "value": value}
                        for idx, (trace_id, value)
                        in sorted(state.exemplars.items())}
                series.append(doc)
        return {"kind": self.kind, "description": self.description,
                "buckets": list(self.buckets), "series": series}

    def _bucket_name(self, idx: int) -> str:
        """JSON key for a bucket: its upper bound, "+Inf" for
        overflow (the Prometheus ``le`` convention)."""
        if idx >= len(self.buckets):
            return "+Inf"
        return f"{self.buckets[idx]:g}"


def merged_histogram_snapshot(docs: Sequence[Dict[str, Any]]
                              ) -> Optional[Dict[str, Any]]:
    """Merge several histogram snapshot docs (one metric, many
    processes) into one, exactly.

    Each input is a :meth:`Histogram.snapshot` document.  Series merge
    per label set: raw bucket ``counts`` sum, count/sum add, min/max
    combine, and the percentiles are re-derived from the merged counts
    — identical to what a single process observing the union stream
    would report.  A series arriving without raw counts (an older
    snapshot shape) degrades to count/sum/min/max only.  Returns None
    when the docs disagree on buckets (nothing exact can be said) or
    no histogram docs were given.
    """
    docs = [d for d in docs
            if isinstance(d, dict) and d.get("kind") == "histogram"]
    if not docs:
        return None
    buckets = docs[0].get("buckets")
    if not buckets or any(d.get("buckets") != buckets
                          for d in docs[1:]):
        return None
    bounds = tuple(float(b) for b in buckets)
    acc: Dict[LabelKey, Dict[str, Any]] = {}
    for doc in docs:
        for series in doc.get("series", ()):
            labels = series.get("labels", {})
            key = _label_key(labels)
            state = acc.get(key)
            if state is None:
                state = acc[key] = {
                    "labels": _labels_dict(key),
                    "counts": [0] * (len(bounds) + 1),
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"),
                    "exact": True}
            n = int(series.get("count", 0))
            if n == 0:
                continue
            state["count"] += n
            state["sum"] += float(series.get("sum", 0.0))
            if "min" in series:
                state["min"] = min(state["min"], float(series["min"]))
            if "max" in series:
                state["max"] = max(state["max"], float(series["max"]))
            raw = series.get("counts")
            if (isinstance(raw, list)
                    and len(raw) == len(bounds) + 1):
                state["counts"] = [a + int(b) for a, b
                                   in zip(state["counts"], raw)]
            else:
                state["exact"] = False
    merged_series: List[Dict[str, Any]] = []
    for key in sorted(acc):
        state = acc[key]
        doc: Dict[str, Any] = {"labels": state["labels"]}
        if state["count"] == 0:
            doc.update({"count": 0, "sum": 0.0})
        elif state["exact"]:
            doc.update(_summary_from_counts(
                bounds, state["counts"], state["count"],
                state["sum"], state["min"], state["max"]))
            doc["counts"] = list(state["counts"])
        else:
            doc.update({"count": state["count"], "sum": state["sum"],
                        "mean": state["sum"] / state["count"],
                        "min": state["min"], "max": state["max"]})
        merged_series.append(doc)
    return {"kind": "histogram",
            "description": docs[0].get("description", ""),
            "buckets": list(buckets), "series": merged_series}


class MetricsRegistry:
    """Names and owns metrics; get-or-create by kind.

    Asking for an existing name with the same kind returns the existing
    metric (so instrumented modules need no shared setup); asking with
    a different kind raises :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, description: str,
                       **kwargs: Any) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, description, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        kwargs = {"buckets": buckets} if buckets is not None else {}
        return self._get_or_create(Histogram, name, description,
                                   **kwargs)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a JSON-able document."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {"metrics": {name: metric.snapshot()
                            for name, metric in sorted(metrics)}}

    def reset(self) -> None:
        """Drop every metric (tests and fresh campaigns)."""
        with self._lock:
            self._metrics.clear()


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code falls back to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
