"""Low-overhead wall-clock sampling profiler.

A :class:`SamplingProfiler` runs one daemon thread that periodically
snapshots every other thread's Python stack via
``sys._current_frames()`` and folds the collapsed stacks — root-first,
semicolon-joined frames, the classic ``flamegraph.pl`` input format —
into bounded counters.  Sampling is wall-clock (a thread blocked on a
lock, a socket, or an fsync is *sampled where it waits*), which is
exactly what a latency investigation needs and what CPU profilers
miss.

Design constraints, in order:

- **Overhead.**  One sample is one ``sys._current_frames()`` call plus
  a few string joins per live thread, every ``interval_s`` seconds.
  At the 10 ms default that is well under the 5% budget the benchmark
  gate enforces (``profiler_overhead`` in ``BENCH_service.json``).
- **Bounded memory.**  Samples land in ring-buffered time windows
  (``max_windows`` windows of ``window_s`` seconds) plus a lifetime
  total; each counter holds at most ``max_stacks`` distinct stacks,
  with the long tail folded into a ``<truncated>`` bucket rather than
  growing without bound.
- **Determinism for readers.**  :meth:`snapshot` and
  :meth:`collapsed` are pure functions of the samples folded so far —
  no clock reads — so two reads with no intervening samples are
  byte-identical (the property the cluster-merged ``/debug/profile``
  endpoint inherits).

The thread-based design (rather than ``signal.setitimer``) is
deliberate: signals only fire on the main thread, while the service
stack does its work on event-loop offload threads, router pools, and
node subprocesses — and a sampler thread needs no cooperation from
any of them.

Cross-process merging: :func:`merge_profiles` folds the ``stacks``
counters of several per-node snapshots into one cluster-wide view
(counts sum; sample rates are comparable because every node samples at
its own configured interval, reported per node in the merged doc).
"""

from __future__ import annotations

import os
import sys
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.errors import ObservabilityError

#: Default sampling interval: 100 Hz, the ecosystem-standard rate that
#: resolves millisecond-scale stalls while staying far under the
#: overhead gate.
DEFAULT_INTERVAL_S = 0.010

#: Stack-count overflow key: once a counter holds ``max_stacks``
#: distinct stacks, further new stacks aggregate here.
TRUNCATED_KEY = "<truncated>"


def _collapse(frame, max_depth: int) -> str:
    """One thread's stack as a collapsed flamegraph line (no count).

    Frames render innermost-last (``root;caller;leaf``) as
    ``file.py:function``, which keeps lines short, stable across
    machines (no absolute paths), and free of the spaces that would
    break the ``stack count`` collapsed format.
    """
    parts: List[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        parts.append(
            f"{os.path.basename(code.co_filename)}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Wall-clock sampling profiler with ring-buffered windows.

    Args:
        interval_s: seconds between samples (default 10 ms).
        window_s: width of one ring window; recent activity is
            readable per window while the lifetime totals accumulate.
        max_windows: windows retained (oldest evicted first).
        max_stacks: distinct stacks per counter before folding into
            ``<truncated>``.
        max_depth: frames kept per stack (deeper stacks truncate at
            the root end).
        clock: monotonic clock (injectable for tests).
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 window_s: float = 10.0, max_windows: int = 6,
                 max_stacks: int = 512, max_depth: int = 64,
                 clock=None) -> None:
        if interval_s <= 0:
            raise ObservabilityError(
                f"interval_s must be positive, got {interval_s}")
        if window_s <= 0 or max_windows <= 0:
            raise ObservabilityError(
                f"profiler needs positive window_s/max_windows, got "
                f"{window_s}/{max_windows}")
        if max_stacks <= 0 or max_depth <= 0:
            raise ObservabilityError(
                f"profiler needs positive max_stacks/max_depth, got "
                f"{max_stacks}/{max_depth}")
        self.interval_s = interval_s
        self.window_s = window_s
        self.max_windows = max_windows
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        if clock is None:
            import time
            clock = time.monotonic
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Ring of {"index", "samples", "stacks"} window docs, oldest
        # first; deque maxlen does the eviction.
        self._windows: Deque[Dict[str, Any]] = deque(
            maxlen=max_windows)
        self._totals: Dict[str, int] = {}
        self._samples = 0          # thread-stack samples folded
        self._ticks = 0            # sampler iterations

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent); returns self."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling; collected windows stay readable."""
        with self._lock:
            thread, self._thread = self._thread, None
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout=5.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _run(self) -> None:
        stop = self._stop
        while not stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:
                # The profiler must never take the process down; a
                # torn frame dict on a dying interpreter just skips
                # one sample.
                if stop.is_set():
                    return

    def sample_once(self) -> int:
        """Take one sample of every live thread (the sampler loop's
        body, callable directly in tests); returns the number of
        thread stacks folded."""
        me = threading.get_ident()
        frames = sys._current_frames()
        stacks = [_collapse(frame, self.max_depth)
                  for ident, frame in frames.items() if ident != me]
        del frames   # drop frame references promptly
        now = self._clock()
        with self._lock:
            self._fold_locked(now, stacks)
        return len(stacks)

    def _fold_locked(self, now: float, stacks: List[str]) -> None:
        self._ticks += 1
        if not stacks:
            return
        index = int(now // self.window_s)
        window = self._windows[-1] if self._windows else None
        if window is None or window["index"] != index:
            window = {"index": index, "samples": 0, "stacks": {}}
            self._windows.append(window)
        win_stacks = window["stacks"]
        totals = self._totals
        for stack in stacks:
            self._samples += 1
            window["samples"] += 1
            self._bump(win_stacks, stack)
            self._bump(totals, stack)

    def _bump(self, counts: Dict[str, int], stack: str) -> None:
        if stack in counts or len(counts) < self.max_stacks:
            counts[stack] = counts.get(stack, 0) + 1
        else:
            counts[TRUNCATED_KEY] = counts.get(TRUNCATED_KEY, 0) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The profile as a JSON-able document.

        A pure function of the samples folded so far: sorted stack
        keys, no clock reads — two snapshots with no intervening
        samples serialize byte-identically.
        """
        with self._lock:
            windows = [{"index": w["index"], "samples": w["samples"],
                        "stacks": dict(sorted(w["stacks"].items()))}
                       for w in self._windows]
            return {
                "running": self._thread is not None,
                "interval_s": self.interval_s,
                "window_s": self.window_s,
                "max_windows": self.max_windows,
                "samples": self._samples,
                "ticks": self._ticks,
                "windows": windows,
                "stacks": dict(sorted(self._totals.items())),
            }

    def collapsed(self) -> str:
        """Lifetime totals in collapsed-stack format: one
        ``stack count`` line per distinct stack, sorted — feed it
        straight to ``flamegraph.pl``."""
        with self._lock:
            items = sorted(self._totals.items())
        return "".join(f"{stack} {count}\n" for stack, count in items)

    def clear(self) -> None:
        with self._lock:
            self._windows.clear()
            self._totals = {}
            self._samples = 0
            self._ticks = 0


def merge_profiles(node_docs: Mapping[str, Optional[Dict[str, Any]]]
                   ) -> Dict[str, Any]:
    """Fold per-node :meth:`SamplingProfiler.snapshot` docs into one
    cluster-wide profile.

    ``node_docs`` maps node name → snapshot (or None for a node whose
    profile could not be fetched; it is reported but contributes no
    stacks).  Stack counts sum across nodes; the per-node docs ride
    along under ``nodes`` so a drill-down needs no second fetch.  The
    output is deterministic for given inputs: sorted node names,
    sorted stack keys.
    """
    merged: Dict[str, int] = {}
    samples = 0
    reachable = 0
    nodes: Dict[str, Any] = {}
    for name in sorted(node_docs):
        doc = node_docs[name]
        nodes[name] = doc
        if doc is None or not isinstance(doc, dict):
            continue
        reachable += 1
        samples += int(doc.get("samples", 0))
        for stack, count in (doc.get("stacks") or {}).items():
            merged[stack] = merged.get(stack, 0) + int(count)
    return {
        "cluster": {"n_nodes": len(node_docs),
                    "reachable_nodes": reachable,
                    "samples": samples},
        "nodes": nodes,
        "stacks": dict(sorted(merged.items())),
    }


def collapsed_text(doc: Dict[str, Any]) -> str:
    """The ``stacks`` counter of any profile doc (per-node or merged)
    rendered as collapsed-stack text."""
    stacks = doc.get("stacks") or {}
    return "".join(f"{stack} {count}\n"
                   for stack, count in sorted(stacks.items()))
