"""Bridge :class:`~repro.quality.monitoring.CampaignMonitor` to metrics.

The monitor raises typed alerts; dashboards want counters and gauges.
:class:`MonitorBridge` wraps a monitor with the same feeding interface
(``record_round`` / ``record_spam_flag``) and mirrors every observation
into a registry:

- ``quality.rounds`` / ``quality.spam_flags`` counters,
- ``quality.alerts`` counter labelled by alert kind,
- ``quality.agreement_rate`` / ``quality.rounds_per_second`` gauges
  (partial-window values, so early campaigns are visible too).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.quality.monitoring import Alert, CampaignMonitor


class MonitorBridge:
    """Feed a monitor and mirror its vitals into a registry.

    Args:
        monitor: the wrapped monitor (a default one if omitted).
        registry: target registry (the process default if omitted).
        live: optional :class:`~repro.obs.live.LiveAnalytics` engine;
            rounds and spam flags are forwarded into its sliding
            windows so the dashboard's agreement/spam signals track
            the monitor's feed.
        game: game label used when forwarding to ``live``.
    """

    def __init__(self, monitor: Optional[CampaignMonitor] = None,
                 registry: Optional[MetricsRegistry] = None,
                 live=None, game: str = "campaign") -> None:
        self.monitor = monitor if monitor is not None \
            else CampaignMonitor()
        self.registry = (registry if registry is not None
                         else default_registry())
        self.live = live
        self.game = game
        self._rounds = self.registry.counter(
            "quality.rounds", "rounds fed to the campaign monitor")
        self._flags = self.registry.counter(
            "quality.spam_flags", "spam flags fed to the monitor")
        self._alerts = self.registry.counter(
            "quality.alerts", "monitor alerts raised, by kind")
        self._agreement = self.registry.gauge(
            "quality.agreement_rate",
            "sliding-window agreement rate (partial windows included)")
        self._rate = self.registry.gauge(
            "quality.rounds_per_second",
            "sliding-window round rate (partial windows included)")

    def record_round(self, at_s: float, agreed: bool) -> List[Alert]:
        """Feed one round; returns every alert that fired."""
        alerts = self.monitor.observe_round(at_s, agreed)
        self._rounds.inc(agreed=str(agreed).lower())
        if self.live is not None:
            self.live.record_round(at_s, self.game, agreed)
        self._count_alerts(alerts)
        rate = self.monitor.agreement_rate(strict=False)
        if rate is not None:
            self._agreement.set(rate)
        rps = self.monitor.rounds_per_second(strict=False)
        if rps is not None:
            self._rate.set(rps)
        return alerts

    def record_spam_flag(self, at_s: float,
                         player_id: str) -> Optional[Alert]:
        """Feed one spam flag; returns the alert if one fired."""
        alert = self.monitor.record_spam_flag(at_s, player_id)
        self._flags.inc()
        if self.live is not None:
            self.live.record_spam_flag(at_s, self.game, player_id)
        self._count_alerts([alert] if alert else [])
        return alert

    def _count_alerts(self, alerts: List[Alert]) -> None:
        for alert in alerts:
            self._alerts.inc(kind=alert.kind.value)

    # -- proxied reporting ---------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        return self.monitor.alerts

    def healthy(self) -> bool:
        return self.monitor.healthy()
