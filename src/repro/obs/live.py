"""Streaming campaign analytics: the paper's metrics, live.

:class:`LiveAnalytics` consumes the platform/campaign event stream and
maintains — at O(1) cost per event and bounded memory — everything the
``GET /dashboard`` endpoint and ``repro top`` render:

- **Sliding time windows** (ring buffers at 10s / 1m / 5m / 1h) of
  per-game paper metrics: live throughput (verified outputs per
  human-hour), an ALP estimate from observed session durations,
  expected contribution = throughput x ALP, label coverage, gold
  accuracy, and the agreement/spam quality signals.
- **Per-verb latency sketches** — mergeable
  :class:`~repro.obs.sketch.QuantileSketch` per route, with the
  slowest request's trace id kept as an exemplar linking into the
  flight recorder.
- An **SLO engine** (:mod:`repro.obs.slo`) fed availability/latency
  good-bad events, and an **anomaly monitor**
  (:mod:`repro.obs.anomaly`) watching latency, error rate, and the
  agreement rate.

Metric definitions are shared with the offline analytics
(:mod:`repro.analytics.defs`), so the live lifetime numbers converge
to exactly what ``repro.analytics.gwap_metrics`` computes for the
finished campaign.

Two timelines coexist: campaign events carry their own ``at_s``
(simulated seconds), while service requests are stamped with the
monotonic clock.  Snapshots are a pure function of the events recorded
so far — no wall-clock reads — so two dashboard fetches with no
traffic in between are byte-identical.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.analytics.defs import (accuracy, alp_hours, coverage_rate,
                                  expected_contribution,
                                  throughput_per_hour)
from repro.errors import ObservabilityError
from repro.obs.anomaly import AnomalyMonitor
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import SloEngine, SloSpec, default_slos

#: The dashboard's window ladder: (name, span seconds, ring buckets).
#: Bucket widths start at 1s so the 10s window reacts within a second;
#: longer windows trade resolution for memory — every window is O(1).
WINDOWS: Tuple[Tuple[str, float, int], ...] = (
    ("10s", 10.0, 10), ("1m", 60.0, 12), ("5m", 300.0, 15),
    ("1h", 3600.0, 15))

#: Prefix of simulated recorded-partner ids; their "time" is replayed,
#: not human, so it never counts toward ALP or human-hours.
_RECORDED_PREFIX = "recorded:"

#: Request events drain through the full pipeline (sketches, SLO
#: rings, anomaly feeds) in micro-batches of this size — and at every
#: snapshot — so the request hot path is just a buffered append.
_DRAIN_BATCH = 256


class WindowRing:
    """A fixed ring of time buckets accumulating named float sums.

    ``add`` is O(1) amortized: the event's bucket index is derived from
    its timestamp, stale buckets are evicted from running totals as the
    ring advances, and fields accumulate into both the bucket and the
    totals.  ``totals`` is O(fields).  Events older than the whole ring
    are dropped (a late event cannot resurrect an evicted bucket).
    """

    __slots__ = ("span_s", "n_buckets", "bucket_s", "_buckets",
                 "_head", "_totals")

    def __init__(self, span_s: float, n_buckets: int) -> None:
        if span_s <= 0 or n_buckets <= 0:
            raise ObservabilityError(
                f"window needs positive span/buckets, got "
                f"{span_s}/{n_buckets}")
        self.span_s = span_s
        self.n_buckets = n_buckets
        self.bucket_s = span_s / n_buckets
        self._buckets: List[Optional[Dict[str, float]]] = \
            [None] * n_buckets
        self._head: Optional[int] = None   # newest absolute index
        self._totals: Dict[str, float] = {}

    def _advance(self, index: int) -> None:
        """Roll the ring forward to absolute bucket ``index``."""
        head = self._head
        if head is None or index - head >= self.n_buckets:
            self._buckets = [None] * self.n_buckets
            self._totals = {}
        else:
            for stale in range(head + 1, index + 1):
                slot = stale % self.n_buckets
                evicted = self._buckets[slot]
                if evicted:
                    for key, value in evicted.items():
                        remaining = self._totals.get(key, 0.0) - value
                        if remaining <= 0.0:
                            self._totals.pop(key, None)
                        else:
                            self._totals[key] = remaining
                self._buckets[slot] = None
        self._head = index

    def add(self, at_s: float, fields: Dict[str, float]) -> None:
        """Accumulate ``fields`` into the bucket owning ``at_s``."""
        index = int(at_s // self.bucket_s)
        head = self._head
        if head is None or index > head:
            self._advance(index)
        elif index <= head - self.n_buckets:
            return   # older than the whole ring: dropped
        bucket = self._buckets[index % self.n_buckets]
        if bucket is None:
            bucket = self._buckets[index % self.n_buckets] = {}
        for key, value in fields.items():
            bucket[key] = bucket.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0.0) + value

    def totals(self, now_s: Optional[float] = None) -> Dict[str, float]:
        """Sums over the buckets currently in the ring.

        ``now_s`` optionally rolls the ring forward first, so idle
        periods age data out even with no new events.
        """
        if now_s is not None and self._head is not None:
            index = int(now_s // self.bucket_s)
            if index > self._head:
                self._advance(index)
        return dict(self._totals)


class _GameState:
    """Everything tracked per game: windows plus lifetime totals."""

    __slots__ = ("windows", "life", "play_s", "items_labeled",
                 "items_total", "last_at_s")

    def __init__(self) -> None:
        self.windows: Dict[str, WindowRing] = {
            name: WindowRing(span, buckets)
            for name, span, buckets in WINDOWS}
        self.life: Dict[str, float] = {}
        # player -> lifetime play seconds (the live ALP numerator);
        # O(population), the one deliberately non-O(1) structure.
        self.play_s: Dict[str, float] = {}
        self.items_labeled: Dict[str, int] = {}
        self.items_total: Optional[int] = None
        self.last_at_s = 0.0

    def add(self, at_s: float, **fields: float) -> None:
        if at_s > self.last_at_s:
            self.last_at_s = at_s
        for ring in self.windows.values():
            ring.add(at_s, fields)
        life = self.life
        for key, value in fields.items():
            life[key] = life.get(key, 0.0) + value


def _metrics_from(totals: Dict[str, float],
                  alp: float) -> Dict[str, float]:
    """The paper-metric block computed from one totals dict."""
    throughput = throughput_per_hour(totals.get("outputs", 0.0),
                                     totals.get("human_s", 0.0))
    rounds = totals.get("rounds", 0.0)
    gold = totals.get("gold", 0.0)
    return {
        "throughput": throughput,
        "alp_hours": alp,
        "expected_contribution": expected_contribution(throughput,
                                                       alp),
        "outputs": totals.get("outputs", 0.0),
        "human_hours": totals.get("human_s", 0.0) / 3600.0,
        "sessions": totals.get("sessions", 0.0),
        "rounds": rounds,
        "agreement_rate": (totals.get("agreed", 0.0) / rounds
                           if rounds else 0.0),
        "gold_accuracy": accuracy(totals.get("gold_correct", 0.0),
                                  gold),
        "spam_flags": totals.get("spam_flags", 0.0),
    }


class LiveAnalytics:
    """The streaming analytics engine behind ``GET /dashboard``.

    Args:
        registry: metrics registry live gauges land in (the process
            default if omitted).
        slos: declarative objectives for the SLO engine
            (:func:`repro.obs.slo.default_slos` if omitted).
        window_scale: multiplies every SLO burn-rate window span —
            chaos tests compress hours into seconds with it.
        epsilon: rank-error budget for the per-verb latency sketches.
        top_k: slow verbs reported by the dashboard.
        events: optional :class:`~repro.core.events.EventLog`-style
            sink; SLO alert transitions and anomalies are appended to
            it, making alerting part of the platform event stream.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 slos: Optional[List[SloSpec]] = None,
                 window_scale: float = 1.0,
                 epsilon: float = 0.005,
                 top_k: int = 5,
                 events: Any = None) -> None:
        self.registry = (registry if registry is not None
                         else default_registry())
        self.events = events
        self.top_k = top_k
        self._lock = threading.Lock()
        self._games: Dict[str, _GameState] = {}
        self._epsilon = epsilon
        # Per-verb latency state: route -> (sketch, slowest value,
        # slowest trace id).  Route cardinality is the route table's,
        # so this stays bounded.
        self._verbs: Dict[str, Dict[str, Any]] = {}
        self._service_at_s = 0.0
        self._requests = 0
        self._errors = 0
        # Request events not yet folded into the sketches; per-route
        # pending latency lists live inside self._verbs entries.
        self._pending_n = 0
        # Buffered task completions (at_s, game) — the platform's
        # per-answer hook must stay as cheap as the request append.
        self._pending_completed: List[Tuple[float, str]] = []
        # Running aggregate for the current SLO fine bucket; flushed
        # to the SLO engine and anomaly detectors when the bucket
        # advances, at every drain, and at every snapshot.
        self._cur_index: Optional[int] = None
        self._cur_at = 0.0
        self._cur_n = 0
        self._cur_err = 0
        self._cur_lat_sum = 0.0
        self.slo = SloEngine(slos if slos is not None
                             else default_slos(),
                             window_scale=window_scale,
                             registry=self.registry,
                             events=events)
        # Micro-batches split on the SLO engine's finest ring bucket,
        # so batching never moves an event into a different bucket.
        self._slo_gran = self.slo.finest_bucket_s
        self._lat_thresholds = self.slo.latency_thresholds()
        self._cur_slow = [0] * len(self._lat_thresholds)
        self.anomaly = AnomalyMonitor(registry=self.registry,
                                      events=events)
        self.anomaly.watch("latency_s", direction="high")
        self.anomaly.watch("error_rate", direction="high",
                           alpha=0.05)
        self.anomaly.watch("agreement_rate", direction="low",
                           alpha=0.05)
        self._m_events = self.registry.counter(
            "live.events", "events consumed by live analytics, by kind")
        self._g_throughput = self.registry.gauge(
            "live.throughput_per_hour",
            "live verified outputs per human-hour, by game/window")

    # ------------------------------------------------------------------
    # Campaign-side feed (simulated/campaign time)
    # ------------------------------------------------------------------

    def record_session(self, at_s: float, game: str,
                       duration_s: float,
                       players: Tuple[str, ...] = (),
                       outputs: int = 0) -> None:
        """One finished session: play time, participants, verified
        outputs.  Recorded partners contribute no human time."""
        live_players = [p for p in players
                        if not p.startswith(_RECORDED_PREFIX)]
        human_s = duration_s * len(live_players)
        with self._lock:
            state = self._game(game)
            state.add(at_s, sessions=1.0, human_s=human_s,
                      outputs=float(outputs))
            for player in live_players:
                state.play_s[player] = (state.play_s.get(player, 0.0)
                                        + duration_s)
        self._m_events.inc(kind="session")
        self._feed_throughput_slo(game, at_s)

    def record_label(self, at_s: float, game: str,
                     item: Optional[str] = None,
                     verified: bool = True) -> None:
        """One collected label; ``item`` feeds the coverage rate."""
        with self._lock:
            state = self._game(game)
            state.add(at_s, labels=1.0,
                      outputs=1.0 if verified else 0.0)
            if item is not None:
                state.items_labeled[item] = \
                    state.items_labeled.get(item, 0) + 1
        self._m_events.inc(kind="label")

    def record_round(self, at_s: float, game: str,
                     agreed: bool) -> None:
        """One game round; feeds the agreement rate and its anomaly
        detector (sudden collapse = collusion/spam surge precursor)."""
        with self._lock:
            state = self._game(game)
            state.add(at_s, rounds=1.0,
                      agreed=1.0 if agreed else 0.0)
            totals = state.windows["1m"].totals(at_s)
            rounds = totals.get("rounds", 0.0)
            rate = totals.get("agreed", 0.0) / rounds if rounds else 1.0
        self._m_events.inc(kind="round")
        self.anomaly.observe("agreement_rate", at_s, rate)

    def record_gold(self, at_s: float, game: str,
                    correct: bool) -> None:
        """One graded gold answer; feeds live gold accuracy."""
        with self._lock:
            self._game(game).add(
                at_s, gold=1.0, gold_correct=1.0 if correct else 0.0)
        self._m_events.inc(kind="gold")

    def record_spam_flag(self, at_s: float, game: str,
                         player_id: str = "") -> None:
        with self._lock:
            self._game(game).add(at_s, spam_flags=1.0)
        self._m_events.inc(kind="spam_flag")

    def record_task_added(self, at_s: float, game: str,
                          n: int = 1) -> None:
        """Platform-side: tasks entering a job grow the coverage
        denominator."""
        with self._lock:
            state = self._game(game)
            state.items_total = (state.items_total or 0) + n
        self._m_events.inc(kind="task_added")

    def record_task_completed(self, at_s: float, game: str) -> None:
        """Platform-side: a task crossed its redundancy bar — one
        verified output.

        Buffered like request events: the submit-answer hot path only
        appends; completions fold into the game windows and the
        throughput SLO at the next drain.
        """
        with self._lock:
            pending = self._pending_completed
            pending.append((at_s, game))
            if len(pending) >= _DRAIN_BATCH:
                self._drain_locked()

    def set_item_universe(self, game: str, total: int) -> None:
        """Pin the coverage denominator (corpus size) for a game."""
        with self._lock:
            self._game(game).items_total = total

    def append(self, at_s: float, kind: str, **data: Any) -> None:
        """:class:`~repro.core.events.EventLog`-compatible feed.

        Lets the existing event-log plumbing (games, the telemetry
        bridge) stream straight into live analytics: ``session``,
        ``label``, ``flag`` and ``*_round`` events are folded into the
        right window aggregates; unknown kinds are counted and
        otherwise ignored.
        """
        game = data.get("game", "campaign")
        if kind == "session":
            self.record_session(
                at_s, game,
                duration_s=float(data.get("duration_s", 0.0)),
                players=tuple(data.get("players", ())),
                outputs=int(data.get("outputs", 0)))
        elif kind in ("label", "promotion"):
            self.record_label(at_s, game, item=data.get("item"))
        elif kind == "flag":
            self.record_spam_flag(at_s, game,
                                  data.get("player", ""))
        elif kind.endswith("_round") and "agreed" in data:
            self.record_round(at_s, game, bool(data["agreed"]))
        else:
            self._m_events.inc(kind=f"other:{kind}")

    # ------------------------------------------------------------------
    # Service-side feed (monotonic time)
    # ------------------------------------------------------------------

    def observe_request(self, route: str, method: str, status: int,
                        elapsed_s: float, at_s: float,
                        trace_id: Optional[str] = None) -> None:
        """One handled request.  ``at_s`` is the caller's monotonic
        timestamp.

        The hot path is counters, compares and one list append: the
        latency value queues for a batched sketch insert, and the
        SLO/anomaly feeds accumulate into the current fine-bucket
        aggregate.  The heavy folding happens every ``_DRAIN_BATCH``
        requests, whenever the fine bucket advances, and at every
        snapshot — still O(1) amortized per event.
        """
        error = status >= 500
        with self._lock:
            verb = self._verbs.get(route)
            if verb is None:
                verb = self._verbs[route] = {
                    "sketch": QuantileSketch(epsilon=self._epsilon),
                    "slowest_s": -1.0, "slowest_trace": None,
                    "pending": []}
            verb["pending"].append(elapsed_s)
            if elapsed_s > verb["slowest_s"]:
                verb["slowest_s"] = elapsed_s
                verb["slowest_trace"] = trace_id
            if at_s > self._service_at_s:
                self._service_at_s = at_s
            self._requests += 1
            if error:
                self._errors += 1
            index = int(at_s // self._slo_gran)
            if index != self._cur_index:
                if self._cur_n:
                    self._flush_slo_locked()
                self._cur_index = index
            self._cur_at = at_s
            self._cur_n += 1
            if error:
                self._cur_err += 1
            self._cur_lat_sum += elapsed_s
            slow = self._cur_slow
            for i, threshold in enumerate(self._lat_thresholds):
                if elapsed_s > threshold:
                    slow[i] += 1
            self._pending_n += 1
            if self._pending_n >= _DRAIN_BATCH:
                self._drain_locked()

    def _flush_slo_locked(self) -> None:
        """Ship the current fine-bucket aggregate: one counted SLO
        feed plus batch mean latency / error rate for the anomaly
        detectors.  Matches what per-event feeds would have put in the
        same ring buckets; alert transitions land at the bucket (or
        drain) boundary."""
        n = self._cur_n
        if not n:
            return
        at_s = self._cur_at
        self.slo.record_request_counts(at_s, n, self._cur_err,
                                       self._cur_slow)
        self.anomaly.observe("latency_s", at_s,
                             self._cur_lat_sum / n)
        self.anomaly.observe("error_rate", at_s, self._cur_err / n)
        self._cur_n = 0
        self._cur_err = 0
        self._cur_lat_sum = 0.0
        self._cur_slow = [0] * len(self._lat_thresholds)

    def _drain_locked(self) -> None:
        """Fold everything buffered into the pipeline: pending task
        completions, the open SLO aggregate, and one batched sketch
        insert per route with queued latencies."""
        completed = self._pending_completed
        if completed:
            self._pending_completed = []
            games_touched: Dict[str, float] = {}
            for at_s, game in completed:
                self._game(game).add(at_s, outputs=1.0, completed=1.0)
                if at_s >= games_touched.get(game, -1.0):
                    games_touched[game] = at_s
            self._m_events.inc(len(completed), kind="task_completed")
            # One throughput-SLO sample per game per drain — the
            # sampling cadence, not the counted outputs, is what
            # coarsens.
            for game, at_s in games_touched.items():
                rate = self._throughput_rate_locked(game, at_s)
                self.slo.record_throughput(game, at_s, rate)
        self._flush_slo_locked()
        if not self._pending_n:
            return
        self._pending_n = 0
        for verb in self._verbs.values():
            pending = verb["pending"]
            if pending:
                verb["pending"] = []
                verb["sketch"].observe_many(pending)

    def observe_durability(self, at_s: float, backlog: int) -> None:
        """Feed the acked-write durability-lag SLO: ``backlog`` is the
        WAL records not yet covered by a checkpoint."""
        self.slo.record_durability(at_s, backlog)

    def _feed_throughput_slo(self, game: str, at_s: float) -> None:
        with self._lock:
            if self._games.get(game) is None:
                return
            rate = self._throughput_rate_locked(game, at_s)
        self.slo.record_throughput(game, at_s, rate)

    def _throughput_rate_locked(self, game: str,
                                at_s: float) -> float:
        """Outputs-per-hour over the last minute, the throughput-SLO
        sample."""
        totals = self._game(game).windows["1m"].totals(at_s)
        return totals.get("outputs", 0.0) * 60.0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _game(self, game: str) -> _GameState:
        state = self._games.get(game)
        if state is None:
            state = self._games[game] = _GameState()
        return state

    def game_metrics(self, game: str) -> Dict[str, Any]:
        """Lifetime + windowed paper metrics for one game."""
        with self._lock:
            self._drain_locked()
            state = self._games.get(game)
            if state is None:
                return {}
            return self._game_doc(state)

    def _game_doc(self, state: _GameState) -> Dict[str, Any]:
        alp = alp_hours(sum(state.play_s.values()),
                        len(state.play_s))
        lifetime = _metrics_from(state.life, alp)
        lifetime["players"] = float(len(state.play_s))
        # Covered items: distinct labeled items (campaign feed) or
        # completed tasks (platform feed), whichever signal is richer.
        covered = max(
            float(sum(1 for count in state.items_labeled.values()
                      if count > 0)),
            state.life.get("completed", 0.0))
        lifetime["coverage"] = coverage_rate(
            covered, float(state.items_total or 0))
        windows = {}
        for name, ring in state.windows.items():
            windows[name] = _metrics_from(
                ring.totals(state.last_at_s), alp)
        return {"lifetime": lifetime, "windows": windows,
                "at_s": state.last_at_s}

    def snapshot(self, include_sketches: bool = False
                 ) -> Dict[str, Any]:
        """The full dashboard document.

        A pure function of the events consumed so far: no clock reads,
        so repeated snapshots with no intervening traffic are
        identical — which is what makes ``repro top --once --json``
        byte-identical to the endpoint.

        ``include_sketches`` attaches each verb's raw GK sketch state
        (:meth:`~repro.obs.sketch.QuantileSketch.to_dict`) under
        ``latency.verbs[route]["sketch"]`` — the mergeable form the
        cluster router federates into cluster-wide percentiles.
        """
        with self._lock:
            self._drain_locked()
            games = {name: self._game_doc(state)
                     for name, state in sorted(self._games.items())}
            verbs = {}
            for route, verb in self._verbs.items():
                doc = verb["sketch"].summary()
                if verb["slowest_trace"] is not None:
                    doc["slowest_trace_id"] = verb["slowest_trace"]
                if include_sketches:
                    doc["sketch"] = verb["sketch"].to_dict()
                verbs[route] = doc
            slow = sorted(
                ((route, doc) for route, doc in verbs.items()
                 if doc.get("count")),
                key=lambda pair: -pair[1].get("p99", 0.0))
            top = [{"route": route,
                    "p99_s": doc.get("p99"),
                    "max_s": doc.get("max"),
                    "count": doc.get("count"),
                    "trace_id": doc.get("slowest_trace_id")}
                   for route, doc in slow[:self.top_k]]
            service = {"at_s": self._service_at_s,
                       "requests": self._requests,
                       "errors": self._errors}
            at_s = max([self._service_at_s]
                       + [state.last_at_s
                          for state in self._games.values()])
        self._mirror_gauges(games)
        return {
            "at_s": at_s,
            "service": service,
            "games": games,
            "latency": {"verbs": dict(sorted(verbs.items())),
                        "slow_verbs": top},
            "slo": self.slo.snapshot(),
            "anomalies": self.anomaly.snapshot(),
        }

    def _mirror_gauges(self, games: Dict[str, Any]) -> None:
        for game, doc in games.items():
            for window, metrics in doc["windows"].items():
                self._g_throughput.set(metrics["throughput"],
                                       game=game, window=window)
