"""Cross-process trace stitching: one trace id, many flight recorders.

A clustered request leaves span fragments in several processes: the
router records a ``router.*`` root (plus scatter-leg fragments from
its pool threads), and every node it touched records a ``service.*``
tree whose ``parent_id`` points back — via the ``traceparent`` header
the router forwarded — at the router span that sent it.  Each process
only ever sees its own fragments; :func:`stitch_traces` reassembles
them into whole trees by trace id.

Two realities shape the algorithm:

- **Span ids are only process-unique.**  Every process mints span ids
  from its own counter starting at 1, so ``span_id`` collides freely
  across sources.  Fragments are therefore keyed by *(source,
  span_id)*; a ``parent_id`` is resolved against all sources but
  prefers a parent in a *different* source (the cross-process link a
  ``traceparent`` hop creates) before falling back to the same
  source, with deterministic tie-breaks.
- **Fragments arrive as whole trees.**  In-process nesting is already
  correct inside each recorder; only fragment *roots* need
  re-parenting.  A root whose parent cannot be found (evicted from a
  ring buffer, sampled out, still open) stays a top-level root of the
  stitched trace rather than being dropped.

The output is deterministic for a given set of recorder states:
sources, roots, attached children and traces all sort on stable keys,
so the cluster-merged ``GET /debug/traces?format=jsonl`` endpoint is
byte-identical across fetches — the same contract the per-node
endpoint has always had.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple


def _annotate(node: Dict[str, Any], source: str) -> Dict[str, Any]:
    """A deep copy of one span dict with ``source`` stamped on every
    span (the original is never mutated — it may be a live recorder
    record)."""
    doc = dict(node)
    doc["source"] = source
    children = node.get("children")
    if children:
        doc["children"] = [_annotate(child, source)
                           for child in children]
    return doc


def _walk(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def _span_order(node: Dict[str, Any]) -> Tuple[float, str, str]:
    return (float(node.get("started_at") or 0.0),
            str(node.get("source") or ""),
            str(node.get("span_id") or ""))


def stitch_traces(sources: Mapping[str, Sequence[Dict[str, Any]]]
                  ) -> List[Dict[str, Any]]:
    """Reassemble flight-recorder records from many processes.

    Args:
        sources: source name (``"router"``, ``"node-0"``, ...) → that
            process's trace records, each shaped like
            :meth:`repro.obs.recorder.FlightRecorder.trace_records`
            output (``{"trace_id", ..., "root": <span tree>}``).

    Returns:
        One stitched document per distinct trace id, ordered by
        (earliest span start, trace id):
        ``{"trace_id", "name", "started_at", "duration_s", "status",
        "n_spans", "sources", "roots"}`` where ``roots`` holds the
        reassembled span trees (usually one; orphaned fragments stay
        as extra roots) and every span carries its ``source``.
    """
    by_trace: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
    for source in sorted(sources):
        for record in sources[source]:
            root = record.get("root")
            if not isinstance(root, dict):
                continue
            trace_id = record.get("trace_id") or root.get("trace_id")
            if not trace_id:
                continue
            by_trace.setdefault(str(trace_id), []).append(
                (source, root))
    stitched = [_stitch_one(trace_id, trees)
                for trace_id, trees in by_trace.items()]
    stitched.sort(key=lambda t: (t["started_at"], t["trace_id"]))
    return stitched


def _stitch_one(trace_id: str,
                trees: List[Tuple[str, Dict[str, Any]]]
                ) -> Dict[str, Any]:
    # Annotated copies of every fragment, plus a span-id index that
    # remembers which fragment each span lives in (for the
    # same-source exclusion and the cycle guard).
    fragments: List[Dict[str, Any]] = []
    frag_sources: List[str] = []
    index: Dict[str, List[Tuple[str, int, Dict[str, Any]]]] = {}
    for frag_i, (source, root) in enumerate(trees):
        copy = _annotate(root, source)
        fragments.append(copy)
        frag_sources.append(source)
        for node in _walk(copy):
            span_id = node.get("span_id")
            if span_id is not None:
                index.setdefault(str(span_id), []).append(
                    (source, frag_i, node))

    # Resolve each fragment root's parent.  frag_parent[i] is the
    # fragment whose tree fragment i attaches into (or None); walking
    # it detects the (pathological) mutual-parent cycle a span-id
    # collision could fabricate, in which case the fragment stays a
    # top-level root.
    frag_parent: List[Optional[int]] = [None] * len(fragments)
    attach_to: List[Optional[Dict[str, Any]]] = [None] * len(fragments)
    for frag_i, copy in enumerate(fragments):
        parent_id = copy.get("parent_id")
        if parent_id is None:
            continue
        candidates = [(src, fi, node)
                      for src, fi, node in index.get(str(parent_id), ())
                      if fi != frag_i]
        if not candidates:
            continue
        source = frag_sources[frag_i]
        cross = [c for c in candidates if c[0] != source]
        pool = cross if cross else candidates
        pool.sort(key=lambda c: (c[0], _span_order(c[2])))
        src, parent_frag, parent_node = pool[0]
        # Cycle guard: refuse an attachment that would make this
        # fragment its own ancestor.
        seen = {frag_i}
        walk: Optional[int] = parent_frag
        cyclic = False
        while walk is not None:
            if walk in seen:
                cyclic = True
                break
            seen.add(walk)
            walk = frag_parent[walk]
        if cyclic:
            continue
        frag_parent[frag_i] = parent_frag
        attach_to[frag_i] = parent_node

    # Attach, deterministically: children destined for one parent
    # append in span order after the parent's in-process children.
    pending: Dict[int, Tuple[Dict[str, Any], List[Dict[str, Any]]]] = {}
    roots: List[Dict[str, Any]] = []
    for frag_i, copy in enumerate(fragments):
        parent_node = attach_to[frag_i]
        if parent_node is None:
            roots.append(copy)
        else:
            pending.setdefault(id(parent_node),
                               (parent_node, []))[1].append(copy)
    for parent_node, kids in pending.values():
        kids.sort(key=_span_order)
        parent_node.setdefault("children", []).extend(kids)
    roots.sort(key=_span_order)

    # Walk the stitched roots, not the fragment list: an attached
    # fragment now also lives inside its parent's tree and would be
    # counted twice.
    all_spans = [node for root in roots for node in _walk(root)]
    started = min((float(n.get("started_at") or 0.0)
                   for n in all_spans), default=0.0)
    status = ("error" if any(n.get("status") == "error"
                             for n in all_spans) else "ok")
    head = roots[0] if roots else None
    return {
        "trace_id": trace_id,
        "name": head.get("name") if head else None,
        "started_at": started,
        "duration_s": head.get("duration_s") if head else None,
        "status": status,
        "n_spans": len(all_spans),
        "sources": sorted({frag_sources[i]
                           for i in range(len(fragments))}),
        "roots": roots,
    }


def stitched_jsonl(traces: Sequence[Dict[str, Any]]) -> str:
    """Stitched traces as newline-delimited JSON, one trace per line —
    the cluster-merged analogue of
    :meth:`~repro.obs.recorder.FlightRecorder.to_jsonl` (sorted keys,
    byte-deterministic for a given input)."""
    return "\n".join(json.dumps(trace, sort_keys=True, default=str)
                     for trace in traces)
