"""The flight recorder: bounded buffers of recently finished traces.

Metrics answer "how slow, on average"; the flight recorder answers
"show me the last slow one".  A :class:`FlightRecorder` keeps three
ring buffers:

- **traces** — the most recent completed (sampled) root spans,
- **slow requests** — roots whose duration crossed a configurable
  threshold,
- **recent errors** — roots that finished in error (or contain an
  errored descendant).

Everything is bounded (``collections.deque`` with ``maxlen``), so the
recorder's memory footprint is a hard constant no matter how long the
process runs or how many threads feed it — the 16-thread stress test
in ``tests/test_obs_recorder.py`` holds it to that.  Recording is
O(1): the finished span *tree* is referenced, not serialized; JSON
materialization happens only when a reader asks (the ``/debug/*``
endpoints and the ``repro trace`` CLI).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: Default latency threshold for the slow-request log (seconds).
DEFAULT_SLOW_THRESHOLD_S = 0.5


class FlightRecorder:
    """Bounded in-memory store of recently completed trace trees.

    Args:
        max_traces: completed traces retained (oldest evicted first).
        slow_threshold_s: duration at or above which a trace also
            lands in the slow-request log.
        max_slow: slow-log capacity.
        max_errors: recent-errors capacity.
    """

    def __init__(self, max_traces: int = 256,
                 slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
                 max_slow: int = 128, max_errors: int = 128) -> None:
        self.slow_threshold_s = slow_threshold_s
        self._traces: Deque = deque(maxlen=max_traces)
        self._slow: Deque = deque(maxlen=max_slow)
        self._errors: Deque = deque(maxlen=max_errors)
        self._lock = threading.Lock()
        self._recorded = 0

    # ------------------------------------------------------------------
    # Write side (hot path)
    # ------------------------------------------------------------------

    def record(self, root) -> None:
        """Admit one finished root span (a
        :class:`~repro.obs.tracing.Span` whose subtree is complete).

        O(1): the tree is referenced as-is.  Finished spans are never
        mutated again, so readers can serialize them lazily without a
        copy.
        """
        errored = (root.status == "error"
                   or getattr(root, "child_error", False))
        with self._lock:
            self._traces.append(root)
            self._recorded += 1
            if (root.duration_s is not None
                    and root.duration_s >= self.slow_threshold_s):
                self._slow.append(root)
            if errored:
                self._errors.append(root)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @staticmethod
    def _trace_record(root) -> Dict[str, Any]:
        """One trace as a flat JSON-able record around its span tree."""
        return {
            "trace_id": getattr(root, "trace_id", None),
            "name": root.name,
            "started_at": root.started_at,
            "duration_s": root.duration_s,
            "status": ("error" if root.status == "error"
                       or getattr(root, "child_error", False)
                       else root.status),
            "root": root.to_dict(),
        }

    def trace_records(self, limit: Optional[int] = None
                      ) -> List[Dict[str, Any]]:
        """Recent traces as JSON-able records, oldest first."""
        with self._lock:
            roots = list(self._traces)
        if limit is not None and limit >= 0:
            roots = roots[-limit:]
        return [self._trace_record(root) for root in roots]

    def slow_requests(self, limit: Optional[int] = None
                      ) -> List[Dict[str, Any]]:
        """Recent slow traces as JSON-able records, oldest first."""
        with self._lock:
            roots = list(self._slow)
        if limit is not None and limit >= 0:
            roots = roots[-limit:]
        return [self._trace_record(root) for root in roots]

    def recent_errors(self, limit: Optional[int] = None
                      ) -> List[Dict[str, Any]]:
        """Recent errored traces as JSON-able records, oldest first."""
        with self._lock:
            roots = list(self._errors)
        if limit is not None and limit >= 0:
            roots = roots[-limit:]
        return [self._trace_record(root) for root in roots]

    def to_jsonl(self, limit: Optional[int] = None) -> str:
        """The trace buffer as newline-delimited JSON, oldest first.

        This is the canonical offline-analysis format: the
        ``GET /debug/traces?format=jsonl`` endpoint and the
        ``repro trace --jsonl`` CLI both emit exactly this text.
        """
        return "\n".join(
            json.dumps(record, sort_keys=True, default=str)
            for record in self.trace_records(limit))

    def occupancy(self) -> Dict[str, Any]:
        """Buffer fill levels and capacities (the ``/healthz`` view)."""
        with self._lock:
            return {
                "traces": len(self._traces),
                "traces_capacity": self._traces.maxlen,
                "slow": len(self._slow),
                "slow_capacity": self._slow.maxlen,
                "errors": len(self._errors),
                "errors_capacity": self._errors.maxlen,
                "recorded_total": self._recorded,
                "slow_threshold_s": self.slow_threshold_s,
            }

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._slow.clear()
            self._errors.clear()
