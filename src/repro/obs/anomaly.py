"""EWMA z-score anomaly detection for live telemetry signals.

Each watched signal keeps an exponentially-weighted moving mean and
variance (West's update).  An observation is scored **before** it
updates the model — ``z = (x - mean) / sqrt(var)`` — so a spike is
judged against history it has not yet contaminated.  A detection fires
when ``|z|`` crosses the threshold in the watched direction, subject
to a warmup count (no verdicts from a cold model) and a cooldown (one
sustained regression is one anomaly, not a thousand).

The monitor is O(1) per observation and O(watched signals + bounded
recent list) in memory.  Detections are appended to the platform event
log as ``anomaly`` events and counted in ``live.anomalies`` — the
dashboard shows the recent list with each signal's current model.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Deque, Dict, List, Optional

from collections import deque

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, default_registry

#: Observations a detector must see before it may fire.
DEFAULT_WARMUP = 30

#: z-score magnitude that counts as anomalous.
DEFAULT_Z = 4.0

#: Seconds a detector stays quiet after firing.
DEFAULT_COOLDOWN_S = 30.0


class EwmaDetector:
    """One signal's model: EWMA mean/variance plus the firing latch.

    Args:
        name: signal name (appears in events and snapshots).
        alpha: EWMA weight of the newest observation; smaller adapts
            slower and flags sustained shifts longer.
        direction: ``"high"`` fires on positive z only, ``"low"`` on
            negative only, ``"both"`` on either.
        z_threshold: |z| needed to fire.
        warmup: observations before the model may fire.
        cooldown_s: quiet period after a firing.
    """

    __slots__ = ("name", "alpha", "direction", "z_threshold",
                 "warmup", "cooldown_s", "count", "mean", "var",
                 "last_z", "last_value", "last_fired_at")

    def __init__(self, name: str, alpha: float = 0.1,
                 direction: str = "high",
                 z_threshold: float = DEFAULT_Z,
                 warmup: int = DEFAULT_WARMUP,
                 cooldown_s: float = DEFAULT_COOLDOWN_S) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ObservabilityError(
                f"alpha must be in (0,1], got {alpha}")
        if direction not in ("high", "low", "both"):
            raise ObservabilityError(
                f"direction must be high/low/both: {direction}")
        self.name = name
        self.alpha = alpha
        self.direction = direction
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.cooldown_s = cooldown_s
        self.count = 0
        self.mean = 0.0
        self.var = 0.0
        self.last_z = 0.0
        self.last_value = 0.0
        self.last_fired_at = -math.inf

    def score(self, at_s: float, value: float) -> Optional[float]:
        """Score ``value`` against the current model, then fold it in.
        Returns the z-score when this observation fires, else None."""
        fired: Optional[float] = None
        if self.count >= self.warmup:
            std = math.sqrt(self.var)
            z = (value - self.mean) / std if std > 1e-12 else (
                0.0 if value == self.mean else math.copysign(
                    math.inf, value - self.mean))
            self.last_z = z
            breaches = (abs(z) >= self.z_threshold
                        and (self.direction == "both"
                             or (self.direction == "high" and z > 0)
                             or (self.direction == "low" and z < 0)))
            if breaches and (at_s - self.last_fired_at
                             >= self.cooldown_s):
                self.last_fired_at = at_s
                fired = z
        # West's EWMA update for mean and variance.
        diff = value - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)
        self.count += 1
        self.last_value = value
        return fired

    def to_dict(self) -> Dict[str, Any]:
        return {"alpha": self.alpha, "direction": self.direction,
                "z_threshold": self.z_threshold, "count": self.count,
                "mean": self.mean, "var": self.var,
                "last_value": self.last_value,
                "last_z": (self.last_z
                           if math.isfinite(self.last_z) else None),
                "warmed_up": self.count >= self.warmup}


class AnomalyMonitor:
    """A set of named detectors plus the bounded recent-anomaly list."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 events: Any = None, recent_limit: int = 50) -> None:
        self.registry = (registry if registry is not None
                         else default_registry())
        self.events = events
        self._lock = threading.Lock()
        self._detectors: Dict[str, EwmaDetector] = {}
        self._recent: Deque[Dict[str, Any]] = deque(
            maxlen=recent_limit)
        self._c_anomalies = self.registry.counter(
            "live.anomalies", "anomaly detections, by signal")

    def watch(self, name: str, **kwargs: Any) -> EwmaDetector:
        """Register a detector for ``name`` (idempotent by name)."""
        with self._lock:
            detector = self._detectors.get(name)
            if detector is None:
                detector = EwmaDetector(name, **kwargs)
                self._detectors[name] = detector
            return detector

    def observe(self, name: str, at_s: float,
                value: float) -> Optional[Dict[str, Any]]:
        """Feed one observation; returns the anomaly record if this
        observation fired, else None.  Unwatched names are ignored."""
        with self._lock:
            detector = self._detectors.get(name)
            if detector is None:
                return None
            z = detector.score(at_s, float(value))
            if z is None:
                return None
            record = {"signal": name, "at_s": at_s,
                      "value": float(value),
                      "z": z if math.isfinite(z) else None,
                      "mean": detector.mean,
                      "direction": detector.direction}
            self._recent.append(record)
        self._c_anomalies.inc(signal=name)
        if self.events is not None:
            data = {k: v for k, v in record.items() if k != "at_s"}
            self.events.append(at_s, "anomaly", **data)
        return record

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able monitor state: each detector's model plus the
        recent detections, newest last."""
        with self._lock:
            return {
                "signals": {name: det.to_dict()
                            for name, det in sorted(
                                self._detectors.items())},
                "recent": list(self._recent),
            }
