"""Lightweight request/round tracing with distributed context.

A :class:`Tracer` hands out ``with tracer.span("platform.submit_answer")``
context managers.  Spans nest per thread: a span opened while another is
active on the same thread becomes its child, so one HTTP request or one
simulated session exports as a single tree.  Finished root spans land in
a bounded in-memory ring buffer; :meth:`Tracer.export` returns them as
plain dicts and :meth:`Tracer.export_json` as a JSON document, newest
last.

Every span carries W3C-style identity (a 128-bit trace id shared by the
whole tree, a 64-bit span id, a parent link), so traces survive the
HTTP boundary: a server continues a client's trace by entering
:meth:`Tracer.continue_trace` with the parsed ``traceparent`` header,
and a client stamps outgoing requests with
:meth:`Tracer.current_traceparent`.

Sampling is two-stage:

- **Head** — when a root span opens without an inherited context, the
  trace id itself decides (:func:`repro.obs.propagation.head_sampled`):
  deterministic, coordination-free, and identical at every hop.
  ``sample_rate=1.0`` (the default) records everything;
  ``sample_rate=0.0`` makes :meth:`span` a near-zero-cost no-op.
- **Tail** — an *unsampled* trace that finishes in error is promoted
  and recorded anyway: the traces you most need are the ones something
  went wrong in.

Finished, kept roots also feed a
:class:`~repro.obs.recorder.FlightRecorder` (recent traces, slow
requests, recent errors) served by the ``/debug/*`` endpoints.

The implementation is deliberately cheap — one object allocation and
two ``perf_counter`` calls per span — so hot paths can stay instrumented
in production runs (see ``benchmarks/test_t9_service_throughput.py``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.obs.propagation import (TraceContext, format_traceparent,
                                   head_sampled, new_span_id,
                                   new_trace_id)
from repro.obs.recorder import FlightRecorder


class Span:
    """One timed operation, possibly with nested children."""

    __slots__ = ("span_id", "trace_id", "parent_id", "name",
                 "started_at", "duration_s", "status", "error",
                 "attributes", "children", "sampled", "child_error")

    def __init__(self, span_id: str, trace_id: str,
                 parent_id: Optional[str], name: str,
                 attributes: Dict[str, Any],
                 sampled: bool = True) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.started_at = time.time()
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attributes = attributes
        self.children: List["Span"] = []
        self.sampled = sampled
        # True when any descendant finished in error — the signal tail
        # sampling promotes on, bubbled up as children close.
        self.child_error = False

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "span_id": self.span_id, "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s, "status": self.status,
        }
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.error is not None:
            doc["error"] = self.error
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NoopHandle:
    """Context manager for a span that will never exist.

    A shared singleton: tracing disabled (or head-sampled off at rate
    0.0) costs one method call and zero allocations per ``span()``.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_HANDLE = _NoopHandle()


class _SpanHandle:
    """Hand-rolled context manager for one open span.

    ``@contextmanager`` generators cost several times more than a
    plain object with ``__enter__``/``__exit__`` — and four spans open
    per traced request, so the difference shows up directly in the
    T9/T10 throughput tables.

    Span construction happens in :meth:`__enter__`, not at
    :meth:`Tracer.span` call time: callers build the handle *before*
    entering it (``with remote_cm, tracer.span(...)``), and the parent
    lookup must see whatever context the surrounding managers
    installed.
    """

    __slots__ = ("_tracer", "_name", "_attributes", "_stack", "_span",
                 "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            parent = stack[-1]
            span = Span(new_span_id(), parent.trace_id,
                        parent.span_id, self._name, self._attributes,
                        sampled=parent.sampled)
        else:
            remote: Optional[TraceContext] = getattr(
                tracer._local, "remote", None)
            if remote is not None:
                span = Span(new_span_id(), remote.trace_id,
                            remote.span_id, self._name,
                            self._attributes, sampled=remote.sampled)
            else:
                trace_id = new_trace_id()
                span = Span(new_span_id(), trace_id, None, self._name,
                            self._attributes,
                            sampled=head_sampled(trace_id,
                                                 tracer.sample_rate))
        self._stack = stack
        self._span = span
        stack.append(span)
        self._start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - self._start
        stack = self._stack
        stack.pop()
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        errored = span.status == "error" or span.child_error
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            if errored:
                parent.child_error = True
        else:
            self._tracer._finish_root(span, errored)
        return False


class _RemoteHandle:
    """Context manager installing an inherited trace context."""

    __slots__ = ("_local", "_ctx", "_previous")

    def __init__(self, local, ctx: "TraceContext") -> None:
        self._local = local
        self._ctx = ctx

    def __enter__(self) -> None:
        self._previous = getattr(self._local, "remote", None)
        self._local.remote = self._ctx
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._local.remote = self._previous
        return False


class Tracer:
    """Per-thread span nesting over a bounded root-span buffer.

    Args:
        max_spans: root spans retained (oldest evicted first).
        enabled: when False, :meth:`span` is a no-op context manager
            (for overhead-sensitive callers).
        sample_rate: head-sampling probability in [0, 1].  ``1.0``
            (the default) records every trace — the historical
            behavior.  ``0.0`` is a pure fast-path no-op: no span
            objects, no buffers, no error promotion.  In between,
            spans are built but an unsampled trace is discarded when
            its root closes — unless it errored, in which case tail
            sampling promotes it.
        recorder: the flight recorder finished roots feed (a private
            :class:`~repro.obs.recorder.FlightRecorder` if omitted).
    """

    def __init__(self, max_spans: int = 1000,
                 enabled: bool = True,
                 sample_rate: float = 1.0,
                 recorder: Optional[FlightRecorder] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0,1], got {sample_rate}")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.recorder = (recorder if recorder is not None
                         else FlightRecorder())
        self._roots: Deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sampled_total = 0
        self._promoted_total = 0
        self._dropped_total = 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Distributed context
    # ------------------------------------------------------------------

    def continue_trace(self, ctx: Optional[TraceContext]):
        """Adopt an inherited trace context for this thread's next root.

        The server half of propagation: ``with
        tracer.continue_trace(parse_traceparent(header)):`` makes the
        next root span opened on this thread a *child* of the sender's
        span — same trace id, ``parent_id`` linking back, and the
        sender's sampling verdict honored instead of a fresh head
        decision.  ``ctx=None`` (missing or malformed header) is a
        no-op: the next root starts a fresh trace.
        """
        if ctx is None:
            return _NOOP_HANDLE
        return _RemoteHandle(self._local, ctx)

    def current_traceparent(self) -> Optional[str]:
        """The ``traceparent`` header for the innermost open span on
        this thread, or None when no span is open (or tracing is
        off).  The client half of propagation."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        span = stack[-1]
        return format_traceparent(TraceContext(
            trace_id=span.trace_id, span_id=span.span_id,
            sampled=span.sampled))

    def current_trace_id(self) -> Optional[str]:
        """Trace id of the innermost open span on this thread, if any.

        The exemplar hook: histograms stash this next to a bucket so a
        latency outlier links back to the trace that caused it.
        """
        stack = getattr(self._local, "stack", None)
        return stack[-1].trace_id if stack else None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span; the context manager yields the :class:`Span`
        (or None if disabled or head-sampled out)."""
        if not self.enabled or self.sample_rate <= 0.0:
            # sample_rate 0.0 is a strict off switch, even against an
            # inherited sampled=1 verdict: a disabled process never
            # allocates spans, fills buffers, or lets callers opt it
            # back in — the T9/T10 bench fast path.  (No root ever
            # opens at rate 0, so no child can need this stack.)
            return _NOOP_HANDLE
        return _SpanHandle(self, name, attributes)

    def _finish_root(self, span: Span, errored: bool) -> None:
        """Keep or drop one finished trace (tail sampling)."""
        if not span.sampled and not errored:
            with self._lock:
                self._dropped_total += 1
            return
        with self._lock:
            self._roots.append(span)
            self._sampled_total += 1
            if errored and not span.sampled:
                self._promoted_total += 1
        # Promotion makes the verdict visible to exporters.
        span.sampled = True
        self.recorder.record(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> List[Span]:
        """All finished spans (any depth) with this name."""
        return [span for root in self.roots()
                for span in root.walk() if span.name == name]

    def export(self) -> List[Dict[str, Any]]:
        """Finished root spans as JSON-able dicts, oldest first."""
        return [root.to_dict() for root in self.roots()]

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({"spans": self.export()}, indent=indent,
                          sort_keys=True, default=str)

    def stats(self) -> Dict[str, Any]:
        """Sampling counters (the ``/healthz`` tracing payload)."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "sampled_total": self._sampled_total,
                "promoted_total": self._promoted_total,
                "dropped_total": self._dropped_total,
            }

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


_default_tracer = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer instrumented code falls back to."""
    return _default_tracer


def span(name: str, **attributes: Any):
    """``with span("name"):`` against the default tracer."""
    return _default_tracer.span(name, **attributes)
