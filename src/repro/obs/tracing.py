"""Lightweight request/round tracing.

A :class:`Tracer` hands out ``with tracer.span("platform.submit_answer")``
context managers.  Spans nest per thread: a span opened while another is
active on the same thread becomes its child, so one HTTP request or one
simulated session exports as a single tree.  Finished root spans land in
a bounded in-memory ring buffer; :meth:`Tracer.export` returns them as
plain dicts and :meth:`Tracer.export_json` as a JSON document, newest
last.

The implementation is deliberately cheap — one object allocation and
two ``perf_counter`` calls per span — so hot paths can stay instrumented
in production runs (see ``benchmarks/test_t9_service_throughput.py``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed operation, possibly with nested children."""

    __slots__ = ("span_id", "name", "started_at", "duration_s",
                 "status", "error", "attributes", "children")

    def __init__(self, span_id: int, name: str,
                 attributes: Dict[str, Any]) -> None:
        self.span_id = span_id
        self.name = name
        self.started_at = time.time()
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attributes = attributes
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "span_id": self.span_id, "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s, "status": self.status,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Per-thread span nesting over a bounded root-span buffer.

    Args:
        max_spans: root spans retained (oldest evicted first).
        enabled: when False, :meth:`span` is a no-op context manager
            (for overhead-sensitive callers).
    """

    def __init__(self, max_spans: int = 1000,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self._roots: Deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any):
        """Open a span; yields the :class:`Span` (or None if disabled)."""
        if not self.enabled:
            yield None
            return
        span = Span(next(self._ids), name, attributes)
        stack = self._stack()
        stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.duration_s = time.perf_counter() - start
            stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                with self._lock:
                    self._roots.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> List[Span]:
        """All finished spans (any depth) with this name."""
        return [span for root in self.roots()
                for span in root.walk() if span.name == name]

    def export(self) -> List[Dict[str, Any]]:
        """Finished root spans as JSON-able dicts, oldest first."""
        return [root.to_dict() for root in self.roots()]

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({"spans": self.export()}, indent=indent,
                          sort_keys=True, default=str)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


_default_tracer = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer instrumented code falls back to."""
    return _default_tracer


def span(name: str, **attributes: Any):
    """``with span("name"):`` against the default tracer."""
    return _default_tracer.span(name, **attributes)
