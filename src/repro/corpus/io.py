"""World serialization: save and load entire synthetic worlds.

Seeds make worlds reproducible *within* a library version, but a
released dataset must be stable across versions and shareable without
the generator.  This module round-trips every corpus type through a
versioned JSON document:

    save_world(path, vocabulary=v, images=c, layout=l, ...)
    world = load_world(path)
    world.vocabulary, world.images, world.layout, ...

Only the pieces you pass are stored; loading returns the same subset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.corpus.facts import Fact, FactBase, Relation
from repro.corpus.images import Image, ImageCorpus
from repro.corpus.music import MusicClip, MusicCorpus
from repro.corpus.objects import BoundingBox, ObjectLayout, SceneObject
from repro.corpus.ocr import OcrCorpus, ScannedWord
from repro.corpus.vocab import Vocabulary, Word
from repro.errors import CorpusError

FORMAT = "repro-world"
VERSION = 1


# ---------------------------------------------------------------------
# Per-type encoders
# ---------------------------------------------------------------------

def _vocabulary_doc(vocabulary: Vocabulary) -> Dict[str, Any]:
    return {
        "size": vocabulary.size,
        "categories": vocabulary.categories,
        "exponent": vocabulary.exponent,
        "words": [{"text": w.text, "rank": w.rank,
                   "frequency": w.frequency, "category": w.category}
                  for w in vocabulary.words],
    }


def _vocabulary_from(doc: Dict[str, Any]) -> Vocabulary:
    vocabulary = Vocabulary.__new__(Vocabulary)
    vocabulary.size = doc["size"]
    vocabulary.categories = doc["categories"]
    vocabulary.exponent = doc["exponent"]
    words = [Word(text=w["text"], rank=w["rank"],
                  frequency=w["frequency"], category=w["category"])
             for w in doc["words"]]
    vocabulary._words = words
    vocabulary._by_text = {w.text: w for w in words}
    vocabulary._by_category = {}
    for word in words:
        vocabulary._by_category.setdefault(word.category,
                                           []).append(word)
    return vocabulary


def _images_doc(corpus: ImageCorpus) -> List[Dict[str, Any]]:
    return [{"image_id": image.image_id, "theme": image.theme,
             "salience": image.salience, "width": image.width,
             "height": image.height}
            for image in corpus.images]


def _images_from(doc: List[Dict[str, Any]],
                 vocabulary: Vocabulary) -> ImageCorpus:
    corpus = ImageCorpus.__new__(ImageCorpus)
    corpus.vocabulary = vocabulary
    corpus._images = [Image(image_id=i["image_id"], theme=i["theme"],
                            salience=dict(i["salience"]),
                            width=i.get("width", 640),
                            height=i.get("height", 480))
                      for i in doc]
    corpus._by_id = {img.image_id: img for img in corpus._images}
    return corpus


def _layout_doc(layout: ObjectLayout) -> List[Dict[str, Any]]:
    return [{"image_id": obj.image_id, "word": obj.word,
             "salience": obj.salience,
             "box": {"x": obj.box.x, "y": obj.box.y,
                     "w": obj.box.w, "h": obj.box.h}}
            for obj in layout.all_objects()]


def _layout_from(doc: List[Dict[str, Any]],
                 corpus: ImageCorpus) -> ObjectLayout:
    layout = ObjectLayout.__new__(ObjectLayout)
    layout.corpus = corpus
    layout._objects = {}
    layout._by_image = {image.image_id: [] for image in corpus}
    for raw in doc:
        box = BoundingBox(raw["box"]["x"], raw["box"]["y"],
                          raw["box"]["w"], raw["box"]["h"])
        obj = SceneObject(image_id=raw["image_id"], word=raw["word"],
                          box=box, salience=raw["salience"])
        layout._objects[(obj.image_id, obj.word)] = obj
        layout._by_image.setdefault(obj.image_id, []).append(obj)
    return layout


def _facts_doc(facts: FactBase) -> List[Dict[str, Any]]:
    return [{"subject": f.subject, "relation": f.relation.value,
             "object": f.obj, "true": f.true}
            for f in facts.all_facts()]


def _relation_from(value: str) -> Relation:
    for relation in Relation:
        if relation.value == value:
            return relation
    raise CorpusError(f"unknown relation: {value!r}")


def _facts_from(doc: List[Dict[str, Any]],
                vocabulary: Vocabulary) -> FactBase:
    base = FactBase.__new__(FactBase)
    base.vocabulary = vocabulary
    base._facts = {}
    base._true_by_subject = {w.text: [] for w in vocabulary}
    base._false_by_subject = {w.text: [] for w in vocabulary}
    for raw in doc:
        fact = Fact(subject=raw["subject"],
                    relation=_relation_from(raw["relation"]),
                    obj=raw["object"], true=raw["true"])
        base._facts[fact.key] = fact
        bucket = (base._true_by_subject if fact.true
                  else base._false_by_subject)
        bucket.setdefault(fact.subject, []).append(fact)
    return base


def _ocr_doc(corpus: OcrCorpus) -> List[Dict[str, Any]]:
    return [{"word_id": w.word_id, "truth": w.truth,
             "legibility": w.legibility, "page": w.page}
            for w in corpus.words]


def _ocr_from(doc: List[Dict[str, Any]]) -> OcrCorpus:
    corpus = OcrCorpus.__new__(OcrCorpus)
    corpus._words = [ScannedWord(word_id=w["word_id"],
                                 truth=w["truth"],
                                 legibility=w["legibility"],
                                 page=w["page"]) for w in doc]
    corpus._by_id = {w.word_id: w for w in corpus._words}
    return corpus


def _music_doc(corpus: MusicCorpus) -> List[Dict[str, Any]]:
    return [{"clip_id": c.clip_id, "genre": c.genre,
             "salience": c.salience, "duration_s": c.duration_s}
            for c in corpus.clips]


def _music_from(doc: List[Dict[str, Any]],
                vocabulary: Vocabulary) -> MusicCorpus:
    corpus = MusicCorpus.__new__(MusicCorpus)
    corpus.vocabulary = vocabulary
    corpus._clips = [MusicClip(clip_id=c["clip_id"], genre=c["genre"],
                               salience=dict(c["salience"]),
                               duration_s=c["duration_s"])
                     for c in doc]
    corpus._by_id = {c.clip_id: c for c in corpus._clips}
    return corpus


# ---------------------------------------------------------------------
# The bundle
# ---------------------------------------------------------------------

@dataclass
class World:
    """A loaded world bundle; absent pieces are None."""

    vocabulary: Optional[Vocabulary] = None
    images: Optional[ImageCorpus] = None
    layout: Optional[ObjectLayout] = None
    facts: Optional[FactBase] = None
    ocr: Optional[OcrCorpus] = None
    music: Optional[MusicCorpus] = None


def world_to_document(vocabulary: Optional[Vocabulary] = None,
                      images: Optional[ImageCorpus] = None,
                      layout: Optional[ObjectLayout] = None,
                      facts: Optional[FactBase] = None,
                      ocr: Optional[OcrCorpus] = None,
                      music: Optional[MusicCorpus] = None
                      ) -> Dict[str, Any]:
    """Encode the given world pieces into one document.

    Pieces that reference the vocabulary (images, layout, facts, music)
    require it to be included too.
    """
    needs_vocab = [images, facts, music]
    if any(piece is not None for piece in needs_vocab) \
            and vocabulary is None:
        raise CorpusError(
            "images/facts/music require the vocabulary in the bundle")
    if layout is not None and images is None:
        raise CorpusError("layout requires its image corpus")
    document: Dict[str, Any] = {"format": FORMAT, "version": VERSION}
    if vocabulary is not None:
        document["vocabulary"] = _vocabulary_doc(vocabulary)
    if images is not None:
        document["images"] = _images_doc(images)
    if layout is not None:
        document["layout"] = _layout_doc(layout)
    if facts is not None:
        document["facts"] = _facts_doc(facts)
    if ocr is not None:
        document["ocr"] = _ocr_doc(ocr)
    if music is not None:
        document["music"] = _music_doc(music)
    return document


def document_to_world(document: Dict[str, Any]) -> World:
    """Decode a :func:`world_to_document` document."""
    if document.get("format") != FORMAT:
        raise CorpusError(
            f"not a {FORMAT} document: {document.get('format')!r}")
    if document.get("version") != VERSION:
        raise CorpusError(
            f"unsupported world version: {document.get('version')!r}")
    world = World()
    if "vocabulary" in document:
        world.vocabulary = _vocabulary_from(document["vocabulary"])
    if "images" in document:
        if world.vocabulary is None:
            raise CorpusError("images present without vocabulary")
        world.images = _images_from(document["images"],
                                    world.vocabulary)
    if "layout" in document:
        if world.images is None:
            raise CorpusError("layout present without images")
        world.layout = _layout_from(document["layout"], world.images)
    if "facts" in document:
        if world.vocabulary is None:
            raise CorpusError("facts present without vocabulary")
        world.facts = _facts_from(document["facts"], world.vocabulary)
    if "ocr" in document:
        world.ocr = _ocr_from(document["ocr"])
    if "music" in document:
        if world.vocabulary is None:
            raise CorpusError("music present without vocabulary")
        world.music = _music_from(document["music"], world.vocabulary)
    return world


def save_world(path: Union[str, Path], **pieces: Any) -> None:
    """Write a world bundle to a JSON file (see
    :func:`world_to_document` for accepted keywords)."""
    document = world_to_document(**pieces)
    Path(path).write_text(json.dumps(document, sort_keys=True))


def load_world(path: Union[str, Path]) -> World:
    """Read a world bundle back from :func:`save_world` output."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise CorpusError(f"malformed world file: {exc}") from None
    return document_to_world(document)
