"""Synthetic corpora with known ground truth.

The original GWAP systems ran over real images, music clips and scanned
book pages.  This package replaces them with deterministic synthetic
corpora that expose the *ground truth* each game is trying to recover, so
that label quality can be measured exactly:

- :mod:`repro.corpus.vocab` — a Zipfian synthetic vocabulary with semantic
  categories and word-relatedness structure.
- :mod:`repro.corpus.images` — images carrying a ground-truth tag salience
  distribution (for ESP, Peekaboom, Matchin, Squigl).
- :mod:`repro.corpus.objects` — objects with bounding boxes inside images
  (for Peekaboom and Squigl).
- :mod:`repro.corpus.facts` — a common-sense fact base (for Verbosity).
- :mod:`repro.corpus.ocr` — scanned-word corpus with per-word legibility
  (for CAPTCHA / reCAPTCHA).
- :mod:`repro.corpus.music` — music clips with tag distributions (for
  TagATune's input-agreement game).
"""

from repro.corpus.vocab import Vocabulary, Word
from repro.corpus.images import Image, ImageCorpus
from repro.corpus.objects import BoundingBox, SceneObject
from repro.corpus.facts import Fact, FactBase
from repro.corpus.ocr import ScannedWord, OcrCorpus
from repro.corpus.music import MusicClip, MusicCorpus
from repro.corpus.io import (World, load_world, save_world,
                             document_to_world, world_to_document)

__all__ = [
    "World", "load_world", "save_world",
    "document_to_world", "world_to_document",
    "Vocabulary", "Word",
    "Image", "ImageCorpus",
    "BoundingBox", "SceneObject",
    "Fact", "FactBase",
    "ScannedWord", "OcrCorpus",
    "MusicClip", "MusicCorpus",
]
