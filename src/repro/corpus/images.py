"""Synthetic image corpus with ground-truth tag salience.

Each :class:`Image` carries a *salience distribution* over vocabulary
words: the probability that a human looking at the image would think of
each word.  This is the ground truth ESP-style games try to recover, and
it is what lets the reproduction measure label precision exactly.

Salience is built from the image's semantic *theme* (a vocabulary
category): theme words get high salience, a few cross-category
"background" words get low salience, and salience within the image is
itself Zipfian — matching the empirical observation that a few labels per
image dominate human agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro import rng as _rng
from repro.corpus.vocab import Vocabulary
from repro.errors import CorpusError


@dataclass(frozen=True)
class Image:
    """A synthetic image.

    Attributes:
        image_id: unique id within its corpus.
        theme: the dominant vocabulary category.
        salience: mapping word text -> probability a viewer thinks of it.
            Values sum to 1 across the image's tag support.
        width, height: pixel dimensions (used by Peekaboom boxes).
    """

    image_id: str
    theme: int
    salience: Dict[str, float]
    width: int = 640
    height: int = 480

    def top_tags(self, k: int = 5) -> List[str]:
        """The ``k`` most salient ground-truth tags."""
        ranked = sorted(self.salience.items(), key=lambda kv: -kv[1])
        return [text for text, _ in ranked[:k]]

    def tag_salience(self, text: str) -> float:
        """Salience of ``text`` in this image (0 if absent)."""
        return self.salience.get(text, 0.0)

    def is_relevant(self, text: str, threshold: float = 0.0) -> bool:
        """Whether ``text`` is a ground-truth tag above ``threshold``."""
        return self.salience.get(text, 0.0) > threshold


class ImageCorpus:
    """A deterministic corpus of synthetic images.

    Args:
        vocabulary: shared vocabulary the images are about.
        size: number of images.
        tags_per_image: size of each image's tag support.
        background_tags: how many of those come from outside the theme.
        salience_exponent: Zipf exponent of within-image tag salience.
        seed: RNG seed.
    """

    def __init__(self, vocabulary: Vocabulary, size: int = 500,
                 tags_per_image: int = 12, background_tags: int = 3,
                 salience_exponent: float = 1.2,
                 seed: _rng.SeedLike = 0) -> None:
        if size <= 0:
            raise CorpusError(f"corpus size must be >= 1, got {size}")
        if tags_per_image <= background_tags:
            raise CorpusError(
                "tags_per_image must exceed background_tags "
                f"({tags_per_image} <= {background_tags})")
        self.vocabulary = vocabulary
        rng = _rng.make_rng(seed)
        self._images: List[Image] = []
        for index in range(size):
            theme = rng.randrange(vocabulary.categories)
            image = self._make_image(f"img-{index:05d}", theme,
                                     tags_per_image, background_tags,
                                     salience_exponent, rng)
            self._images.append(image)
        self._by_id = {img.image_id: img for img in self._images}

    def _make_image(self, image_id: str, theme: int, tags_per_image: int,
                    background_tags: int, salience_exponent: float,
                    rng) -> Image:
        theme_words = list(self.vocabulary.category_words(theme))
        theme_count = min(tags_per_image - background_tags,
                          len(theme_words))
        weights = [w.frequency for w in theme_words]
        chosen = _rng.weighted_sample_without_replacement(
            rng, theme_words, weights, theme_count)
        # Background tags: frequent words from other categories.
        pool = [w for w in self.vocabulary.words if w.category != theme]
        bg_weights = [w.frequency for w in pool]
        chosen += _rng.weighted_sample_without_replacement(
            rng, pool, bg_weights, background_tags)
        # Within-image salience is Zipfian over a random ordering biased
        # toward theme words first (theme words occupy the top ranks).
        zipf = _rng.zipf_weights(len(chosen), salience_exponent)
        salience = {word.text: zipf[pos] for pos, word in enumerate(chosen)}
        return Image(image_id=image_id, theme=theme, salience=salience)

    def __len__(self) -> int:
        return len(self._images)

    def __iter__(self):
        return iter(self._images)

    @property
    def images(self) -> Sequence[Image]:
        return tuple(self._images)

    def image(self, image_id: str) -> Image:
        """Look up an image by id."""
        try:
            return self._by_id[image_id]
        except KeyError:
            raise CorpusError(f"unknown image: {image_id!r}") from None

    def sample(self, rng, k: int = 1) -> List[Image]:
        """Sample ``k`` distinct images uniformly."""
        return rng.sample(self._images, min(k, len(self._images)))

    def relevance(self, image_id: str, label: str,
                  threshold: float = 0.0) -> bool:
        """Whether ``label`` is ground-truth relevant to ``image_id``."""
        return self.image(image_id).is_relevant(label, threshold)
