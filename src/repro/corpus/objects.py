"""Objects with bounding boxes inside synthetic images (for Peekaboom).

Peekaboom's output is *where* in an image a word's referent is.  Each
salient tag of an image is given a ground-truth :class:`BoundingBox`; the
consensus of simulated players' reveals/clicks is evaluated against it by
intersection-over-union in :mod:`repro.aggregation.boxes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import rng as _rng
from repro.corpus.images import Image, ImageCorpus
from repro.errors import CorpusError


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box in image pixel coordinates."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise CorpusError(
                f"box must have positive size, got w={self.w}, h={self.h}")

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    def contains(self, px: float, py: float) -> bool:
        """Whether the point lies inside (inclusive) the box."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def intersection(self, other: "BoundingBox") -> float:
        """Intersection area with ``other``."""
        ix = max(0.0, min(self.x2, other.x2) - max(self.x, other.x))
        iy = max(0.0, min(self.y2, other.y2) - max(self.y, other.y))
        return ix * iy

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over union with ``other`` (0..1)."""
        inter = self.intersection(other)
        union = self.area + other.area - inter
        if union <= 0:
            return 0.0
        return inter / union

    def clipped(self, width: float, height: float) -> "BoundingBox":
        """Return this box clipped to the image bounds."""
        x1 = min(max(self.x, 0.0), width - 1.0)
        y1 = min(max(self.y, 0.0), height - 1.0)
        x2 = min(max(self.x2, x1 + 1.0), width)
        y2 = min(max(self.y2, y1 + 1.0), height)
        return BoundingBox(x1, y1, x2 - x1, y2 - y1)


@dataclass(frozen=True)
class SceneObject:
    """A ground-truth object: a word's referent located in an image."""

    image_id: str
    word: str
    box: BoundingBox
    salience: float


class ObjectLayout:
    """Assigns ground-truth bounding boxes to images' salient tags.

    Box size scales with salience — more salient referents tend to occupy
    more of the frame — which gives Peekaboom the property the paper
    relies on: prominent objects are located faster and more precisely.

    Args:
        corpus: the image corpus to lay out.
        objects_per_image: number of top tags given referent boxes.
        seed: RNG seed.
    """

    def __init__(self, corpus: ImageCorpus, objects_per_image: int = 4,
                 seed: _rng.SeedLike = 0) -> None:
        if objects_per_image <= 0:
            raise CorpusError(
                f"objects_per_image must be >= 1, got {objects_per_image}")
        self.corpus = corpus
        rng = _rng.make_rng(seed)
        self._objects: Dict[Tuple[str, str], SceneObject] = {}
        self._by_image: Dict[str, List[SceneObject]] = {}
        for image in corpus:
            placed: List[SceneObject] = []
            for word in image.top_tags(objects_per_image):
                salience = image.tag_salience(word)
                box = self._place_box(image, salience, rng)
                obj = SceneObject(image_id=image.image_id, word=word,
                                  box=box, salience=salience)
                self._objects[(image.image_id, word)] = obj
                placed.append(obj)
            self._by_image[image.image_id] = placed

    @staticmethod
    def _place_box(image: Image, salience: float, rng) -> BoundingBox:
        # Fractional footprint grows with salience: ~12%..55% of each axis.
        frac = 0.12 + 0.43 * min(1.0, salience * 2.5)
        w = max(8.0, image.width * frac * rng.uniform(0.7, 1.3))
        h = max(8.0, image.height * frac * rng.uniform(0.7, 1.3))
        w = min(w, image.width * 0.9)
        h = min(h, image.height * 0.9)
        x = rng.uniform(0, image.width - w)
        y = rng.uniform(0, image.height - h)
        return BoundingBox(x, y, w, h)

    def object_for(self, image_id: str, word: str) -> SceneObject:
        """Ground-truth object for (image, word)."""
        try:
            return self._objects[(image_id, word)]
        except KeyError:
            raise CorpusError(
                f"no object for word {word!r} in image {image_id!r}"
            ) from None

    def has_object(self, image_id: str, word: str) -> bool:
        return (image_id, word) in self._objects

    def objects_in(self, image_id: str) -> Sequence[SceneObject]:
        """All ground-truth objects in an image."""
        if image_id not in self._by_image:
            raise CorpusError(f"unknown image: {image_id!r}")
        return tuple(self._by_image[image_id])

    def all_objects(self) -> Sequence[SceneObject]:
        return tuple(self._objects.values())
