"""Music-clip corpus for TagATune's input-agreement game.

TagATune shows two players a music clip each (same clip or different
clips) and asks them to decide, from each other's typed descriptions,
whether the inputs match.  The synthetic clip carries a tag distribution
exactly like an image; what matters for input-agreement is the *overlap
structure*: clips from the same genre share tags, so the simulated
same/different decision gets genuinely harder for related clips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import rng as _rng
from repro.corpus.vocab import Vocabulary
from repro.errors import CorpusError


@dataclass(frozen=True)
class MusicClip:
    """A synthetic music clip.

    Attributes:
        clip_id: unique id.
        genre: vocabulary category acting as the clip's genre.
        salience: word -> probability a listener mentions it.
        duration_s: clip length in seconds (affects round timing).
    """

    clip_id: str
    genre: int
    salience: Dict[str, float]
    duration_s: float = 30.0

    def top_tags(self, k: int = 5) -> List[str]:
        ranked = sorted(self.salience.items(), key=lambda kv: -kv[1])
        return [text for text, _ in ranked[:k]]

    def tag_salience(self, text: str) -> float:
        return self.salience.get(text, 0.0)


class MusicCorpus:
    """A deterministic corpus of synthetic music clips.

    Args:
        vocabulary: shared vocabulary (categories act as genres).
        size: number of clips.
        tags_per_clip: tag support size per clip.
        seed: RNG seed.
    """

    def __init__(self, vocabulary: Vocabulary, size: int = 300,
                 tags_per_clip: int = 8, seed: _rng.SeedLike = 0) -> None:
        if size <= 0:
            raise CorpusError(f"corpus size must be >= 1, got {size}")
        self.vocabulary = vocabulary
        rng = _rng.make_rng(seed)
        self._clips: List[MusicClip] = []
        for index in range(size):
            genre = rng.randrange(vocabulary.categories)
            members = list(vocabulary.category_words(genre))
            count = min(tags_per_clip, len(members))
            weights = [w.frequency for w in members]
            chosen = _rng.weighted_sample_without_replacement(
                rng, members, weights, count)
            zipf = _rng.zipf_weights(len(chosen), 1.1)
            salience = {w.text: zipf[pos] for pos, w in enumerate(chosen)}
            self._clips.append(MusicClip(
                clip_id=f"clip-{index:05d}", genre=genre,
                salience=salience,
                duration_s=rng.uniform(15.0, 45.0)))
        self._by_id = {c.clip_id: c for c in self._clips}

    def __len__(self) -> int:
        return len(self._clips)

    def __iter__(self):
        return iter(self._clips)

    @property
    def clips(self) -> Sequence[MusicClip]:
        return tuple(self._clips)

    def clip(self, clip_id: str) -> MusicClip:
        """Look up a clip by id."""
        try:
            return self._by_id[clip_id]
        except KeyError:
            raise CorpusError(f"unknown clip: {clip_id!r}") from None

    def sample_pair(self, rng, same: bool) -> Tuple[MusicClip, MusicClip]:
        """Sample a round pair: identical clips or two distinct clips."""
        first = rng.choice(self._clips)
        if same:
            return first, first
        second = rng.choice(self._clips)
        attempts = 0
        while second.clip_id == first.clip_id and attempts < 50:
            second = rng.choice(self._clips)
            attempts += 1
        if second.clip_id == first.clip_id:
            raise CorpusError("corpus too small to sample distinct clips")
        return first, second

    def tag_overlap(self, a: MusicClip, b: MusicClip) -> float:
        """Jaccard overlap of two clips' tag supports (difficulty proxy)."""
        sa, sb = set(a.salience), set(b.salience)
        union = sa | sb
        if not union:
            return 0.0
        return len(sa & sb) / len(union)
