"""Synthetic vocabulary with Zipfian frequencies and category structure.

The vocabulary is the shared substrate of the simulated world: images are
"about" words, players "know" subsets of words, and agreement in
output-agreement games emerges exactly as in the real ESP Game — two
players agree when the word is salient in the item and present in both
vocabularies.

Words are organized into semantic categories; each category has a set of
member words plus *related* words (for Verbosity-style facts and for
near-miss labels).  Word surface forms are pronounceable synthetic strings
so transcription games (reCAPTCHA) get realistic length variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro import rng as _rng
from repro.errors import CorpusError

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def synth_word(rng, min_syllables: int = 1, max_syllables: int = 4) -> str:
    """Generate a pronounceable synthetic word (CV syllables)."""
    count = rng.randint(min_syllables, max_syllables)
    parts = []
    for _ in range(count):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
        if rng.random() < 0.25:
            parts.append(rng.choice(_CONSONANTS))
    return "".join(parts)


@dataclass(frozen=True)
class Word:
    """A vocabulary entry.

    Attributes:
        text: surface form (unique within a vocabulary).
        rank: global frequency rank (1 = most frequent).
        frequency: normalized Zipfian frequency of the word.
        category: id of the semantic category the word belongs to.
    """

    text: str
    rank: int
    frequency: float
    category: int

    def __str__(self) -> str:
        return self.text


class Vocabulary:
    """A closed synthetic vocabulary with Zipfian global frequencies.

    Args:
        size: number of words.
        categories: number of semantic categories words are spread over.
        exponent: Zipf exponent of the global frequency distribution.
        seed: RNG seed (or an existing ``random.Random``).
    """

    def __init__(self, size: int = 2000, categories: int = 40,
                 exponent: float = 1.05, seed: _rng.SeedLike = 0) -> None:
        if size <= 0:
            raise CorpusError(f"vocabulary size must be >= 1, got {size}")
        if categories <= 0:
            raise CorpusError(
                f"category count must be >= 1, got {categories}")
        rng = _rng.make_rng(seed)
        self.size = size
        self.categories = categories
        self.exponent = exponent
        weights = _rng.zipf_weights(size, exponent)
        seen: set = set()
        words: List[Word] = []
        for rank in range(1, size + 1):
            text = synth_word(rng)
            while text in seen:
                text = synth_word(rng)
            seen.add(text)
            category = rng.randrange(categories)
            words.append(Word(text=text, rank=rank,
                              frequency=weights[rank - 1],
                              category=category))
        self._words = words
        self._by_text: Dict[str, Word] = {w.text: w for w in words}
        self._by_category: Dict[int, List[Word]] = {}
        for word in words:
            self._by_category.setdefault(word.category, []).append(word)
        # Guarantee every category is non-empty by reassigning spares.
        empty = [c for c in range(categories) if c not in self._by_category]
        if empty:
            donors = sorted(self._by_category,
                            key=lambda c: -len(self._by_category[c]))
            rebuilt = list(words)
            for cat in empty:
                donor = donors[0]
                moved = self._by_category[donor].pop()
                idx = rebuilt.index(moved)
                replacement = Word(moved.text, moved.rank, moved.frequency,
                                   cat)
                rebuilt[idx] = replacement
                self._by_category[cat] = [replacement]
                donors.sort(key=lambda c: -len(self._by_category[c]))
            self._words = rebuilt
            self._by_text = {w.text: w for w in rebuilt}

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self._words)

    def __contains__(self, text: str) -> bool:
        return text in self._by_text

    @property
    def words(self) -> Sequence[Word]:
        """All words, ordered by rank."""
        return tuple(self._words)

    def word(self, text: str) -> Word:
        """Look up a word by surface form."""
        try:
            return self._by_text[text]
        except KeyError:
            raise CorpusError(f"unknown word: {text!r}") from None

    def by_rank(self, rank: int) -> Word:
        """Return the word at frequency ``rank`` (1-based)."""
        if not 1 <= rank <= self.size:
            raise CorpusError(
                f"rank {rank} out of range 1..{self.size}")
        return self._words[rank - 1]

    def category_words(self, category: int) -> Sequence[Word]:
        """All words in a semantic category."""
        if category not in self._by_category:
            raise CorpusError(f"unknown category: {category}")
        return tuple(self._by_category[category])

    def related(self, word: Word, limit: int = 10) -> List[Word]:
        """Words semantically related to ``word`` (same category).

        Related words are the most frequent other members of the word's
        category — the pool Verbosity facts and near-miss guesses draw
        from.
        """
        members = [w for w in self._by_category[word.category]
                   if w.text != word.text]
        members.sort(key=lambda w: w.rank)
        return members[:limit]

    def sample(self, rng, k: int = 1,
               by_frequency: bool = True) -> List[Word]:
        """Sample ``k`` distinct words, by global frequency or uniformly."""
        if by_frequency:
            weights = [w.frequency for w in self._words]
            return _rng.weighted_sample_without_replacement(
                rng, self._words, weights, k)
        return rng.sample(self._words, min(k, self.size))
